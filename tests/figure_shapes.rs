//! End-to-end reproduction checks: the qualitative shapes of every paper
//! figure must hold (DESIGN.md §4 "shape criteria"). Runs are smaller
//! than the paper's (300–800 packets) to keep CI fast, but every ordering
//! and monotonicity claim asserted here also holds at full scale (see
//! EXPERIMENTS.md).

use temporal_privacy::core::experiment::{
    adversary_panel_sweep, fig2_sweep, fig3_sweep, SweepParams,
};

fn quick(inv_lambdas: Vec<f64>, packets: u32) -> SweepParams {
    SweepParams {
        inv_lambdas,
        packets_per_source: packets,
        ..SweepParams::paper_default()
    }
}

#[test]
fn fig2a_privacy_ordering_at_high_traffic() {
    let rows = fig2_sweep(&quick(vec![2.0], 600));
    let fast = &rows[0];
    // No-delay leaks everything: MSE exactly 0 under the paper's
    // constant-tau link abstraction.
    assert!(fast.no_delay.mse < 1e-9, "{:?}", fast.no_delay);
    // Unlimited buffers: the adversary corrects for the known mean; MSE
    // equals the delay variance scale h/mu^2 ~ 13.5k, far below RCAD.
    assert!(fast.unlimited.mse > 5_000.0 && fast.unlimited.mse < 30_000.0);
    // RCAD at the highest rate: preemption wrecks the adversary's model.
    assert!(
        fast.rcad.mse > 3.0 * fast.unlimited.mse,
        "rcad {} vs unlimited {}",
        fast.rcad.mse,
        fast.unlimited.mse
    );
}

#[test]
fn fig2a_rcad_mse_decays_with_slower_traffic() {
    let rows = fig2_sweep(&quick(vec![2.0, 8.0, 20.0], 400));
    assert!(rows[0].rcad.mse > rows[1].rcad.mse);
    assert!(rows[1].rcad.mse > 0.5 * rows[0].rcad.mse || rows[1].rcad.mse > rows[2].rcad.mse);
    // At the slowest rate RCAD approaches the unlimited-buffer MSE
    // (preemption has almost vanished).
    let slow = &rows[2];
    assert!(
        slow.rcad.mse < 2.0 * slow.unlimited.mse,
        "rcad {} vs unlimited {}",
        slow.rcad.mse,
        slow.unlimited.mse
    );
}

#[test]
fn fig2b_latency_ordering_and_magnitudes() {
    let rows = fig2_sweep(&quick(vec![2.0, 20.0], 600));
    for row in &rows {
        // No-delay latency is exactly h*tau = 15 for flow S1.
        assert!((row.no_delay.mean_latency - 15.0).abs() < 1e-9);
        // Unlimited ~ h*(tau + 1/mu) = 465, flat across rates.
        assert!(
            (row.unlimited.mean_latency - 465.0).abs() < 30.0,
            "unlimited latency {}",
            row.unlimited.mean_latency
        );
        // RCAD sits strictly between.
        assert!(row.no_delay.mean_latency < row.rcad.mean_latency);
        assert!(row.rcad.mean_latency < row.unlimited.mean_latency);
    }
    // The paper's headline: a >= 2x latency reduction at 1/lambda = 2
    // (it reports ~2.5x on its testbed-calibrated topology).
    let fast = &rows[0];
    assert!(
        fast.unlimited.mean_latency / fast.rcad.mean_latency > 2.0,
        "reduction factor {}",
        fast.unlimited.mean_latency / fast.rcad.mean_latency
    );
    // And the reduction fades at the slowest rate.
    let slow = &rows[1];
    assert!(slow.unlimited.mean_latency / slow.rcad.mean_latency < 1.2);
}

#[test]
fn fig3_adaptive_adversary_gains_at_high_traffic_only() {
    let rows = fig3_sweep(&quick(vec![2.0, 20.0], 800));
    let fast = &rows[0];
    assert!(
        fast.adaptive_mse < 0.7 * fast.baseline_mse,
        "adaptive {} vs baseline {}",
        fast.adaptive_mse,
        fast.baseline_mse
    );
    // ...but cannot eliminate the error (the paper's emphasis).
    assert!(fast.adaptive_mse > 1_000.0);
    // At the slowest rate the Erlang-loss switch keeps it at baseline.
    let slow = &rows[1];
    assert!((slow.adaptive_mse - slow.baseline_mse).abs() < 1e-6);
}

#[test]
fn e1_adversary_hierarchy_is_ordered() {
    let rows = adversary_panel_sweep(&quick(vec![2.0, 8.0], 800));
    for row in &rows {
        assert!(row.adaptive_mse <= row.baseline_mse + 1e-9, "{row:?}");
        assert!(row.route_aware_mse <= row.adaptive_mse + 1e-9, "{row:?}");
        // The oracle is the constant-offset floor (tiny tolerance: the
        // route-aware estimate can tie it to within noise).
        assert!(row.oracle_mse <= row.route_aware_mse * 1.02, "{row:?}");
        assert!(row.oracle_mse > 0.0);
    }
}

//! The §3 information-theoretic claims, verified end to end against the
//! simulator (DESIGN.md V1 plus the MSE↔MI bridge).

use temporal_privacy::core::{
    evaluate_adversary, BaselineAdversary, BufferPolicy, DelayPlan, ExperimentConfig, LayoutSpec,
};
use temporal_privacy::infotheory::bounds::{btq_packet_bound_nats, btq_stream_bound_nats};
use temporal_privacy::infotheory::distributions::{ContinuousDist, ErlangDist, Exponential};
use temporal_privacy::infotheory::estimators::{mi_from_samples_nats, mse_lower_bound_from_mi};
use temporal_privacy::infotheory::mutual_information::{epi_lower_bound_nats, mi_additive_nats};
use temporal_privacy::net::{FlowId, TrafficModel};

#[test]
fn btq_bound_dominates_numeric_mi() {
    let (lambda, mu) = (0.5, 1.0 / 30.0);
    for j in [1u32, 2, 5, 10] {
        let x = ErlangDist::new(j, lambda);
        let y = Exponential::new(mu);
        let numeric = mi_additive_nats(&x, &y, 3_000);
        let bound = btq_packet_bound_nats(u64::from(j), mu, lambda);
        assert!(
            numeric <= bound + 1e-2,
            "j = {j}: numeric {numeric} vs bound {bound}"
        );
    }
}

#[test]
fn epi_bound_sandwiches_numeric_mi() {
    let x = ErlangDist::new(3, 0.5);
    let y = Exponential::with_mean(30.0);
    let numeric = mi_additive_nats(&x, &y, 4_000);
    let epi = epi_lower_bound_nats(x.entropy_nats(), y.entropy_nats());
    let btq = btq_packet_bound_nats(3, 1.0 / 30.0, 0.5);
    assert!(epi <= numeric + 1e-2, "EPI {epi} vs numeric {numeric}");
    assert!(numeric <= btq + 1e-2, "numeric {numeric} vs BTQ {btq}");
}

#[test]
fn stream_bound_controls_empirical_leakage_of_simulated_network() {
    // Simulate one flow with a Poisson source through an exponential
    // buffering hop; the empirical MI between creation and arrival times
    // must respect the first-packet scale of the stream bound.
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 1 },
        traffic: TrafficModel::poisson(0.5),
        packets_per_source: 20_000,
        delay: DelayPlan::shared_exponential(30.0),
        buffer: BufferPolicy::Unlimited,
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed: 5,
    };
    let outcome = cfg.build().unwrap().run();
    let (xs, zs) = outcome.creation_arrival_pairs(FlowId(0));
    // Stationarized leakage: per-packet MI of (X mod window) would be
    // ideal; here we check the coarse ordering — the sequence-level MI of
    // raw times is dominated by the deterministic trend, so instead test
    // the *residual* pairs (z - x = latency vs x): creation times tell
    // you (almost) nothing about the sampled delay.
    let latencies: Vec<f64> = xs.iter().zip(&zs).map(|(x, z)| z - x).collect();
    let mi = mi_from_samples_nats(&xs, &latencies, 16).unwrap();
    assert!(mi < 0.05, "delay leaks about creation time: {mi}");
    // And the eq.-4 bound is finite and increasing, as the analysis says.
    let b10 = btq_stream_bound_nats(10, 1.0 / 30.0, 0.5);
    let b100 = btq_stream_bound_nats(100, 1.0 / 30.0, 0.5);
    assert!(b10 > 0.0 && b100 > b10);
}

#[test]
fn mse_mi_bridge_is_consistent_with_measured_mse() {
    // For the unlimited-buffer network the adversary's best estimator is
    // bias-free; its measured MSE must sit above the rate-distortion
    // floor implied by the (tiny) residual leakage.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 800;
    cfg.buffer = BufferPolicy::Unlimited;
    let sim = cfg.build().unwrap();
    let outcome = sim.run();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
    let mse = report.mse(FlowId(0));
    // h * Var(Y) = 15 * 900 = 13.5k: the theoretical MSE of the
    // mean-correcting estimator on an unlimited-buffer path.
    assert!((mse - 13_500.0).abs() < 2_500.0, "MSE {mse}");
    // If the adversary had extracted even 0.5 nats per packet, it could
    // have pushed MSE down to Var X * e^{-1}; check the bridge math runs
    // in the right direction.
    let (xs, _) = outcome.creation_arrival_pairs(FlowId(0));
    let mean_x = xs.iter().sum::<f64>() / xs.len() as f64;
    let var_x = xs.iter().map(|x| (x - mean_x).powi(2)).sum::<f64>() / xs.len() as f64;
    let floor = mse_lower_bound_from_mi(var_x, 0.5);
    assert!(floor < var_x);
    assert!(mse < floor, "the adversary is far below the 0.5-nat floor");
}

#[test]
fn exponential_delay_maximizes_entropy_among_shipped_delays() {
    use temporal_privacy::infotheory::distributions::{Degenerate, Uniform};
    let mean = 30.0;
    let exp = Exponential::with_mean(mean).entropy_nats();
    let uni = Uniform::with_mean(mean).entropy_nats();
    let con = Degenerate::new(mean).entropy_nats();
    assert!(exp > uni && uni > con);
    // And the closed form is h = 1 + ln(mean).
    assert!((exp - (1.0 + mean.ln())).abs() < 1e-12);
}

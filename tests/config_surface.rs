//! The serialized-config surface: every mechanism shipped by the library
//! must be reachable from a JSON `ExperimentConfig` (what the CLI and any
//! external tooling drive), and round-trip faithfully.

use temporal_privacy::core::{
    BufferPolicy, DelayPlan, DelayStrategy, ExperimentConfig, LayoutSpec, VictimPolicy,
};
use temporal_privacy::net::TrafficModel;

fn run_roundtrip(cfg: &ExperimentConfig) -> temporal_privacy::core::SimOutcome {
    let json = serde_json::to_string_pretty(cfg).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, cfg, "config must round-trip through JSON");
    let a = cfg.build().unwrap().run();
    let b = back.build().unwrap().run();
    assert_eq!(a, b, "rebuilt config must reproduce the run");
    a
}

#[test]
fn per_node_delay_plans_are_configurable_from_json() {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 4 },
        traffic: TrafficModel::periodic(5.0),
        packets_per_source: 120,
        delay: DelayPlan::PerNode {
            strategies: vec![
                DelayStrategy::None,
                DelayStrategy::exponential(5.0),
                DelayStrategy::uniform(10.0),
                DelayStrategy::constant(2.0),
                DelayStrategy::exponential(20.0),
            ],
            fallback: DelayStrategy::None,
        },
        buffer: BufferPolicy::Unlimited,
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed: 11,
    };
    let out = run_roundtrip(&cfg);
    // Expected latency: 4*tau + (5 + 10 + 2 + 20) per-node means along
    // the path (the source is node 4, sink node 0 does not delay).
    let expected = 4.0 + 37.0;
    assert!(
        (out.flows[0].latency.mean() - expected).abs() < 6.0,
        "latency {}",
        out.flows[0].latency.mean()
    );
}

#[test]
fn threshold_mix_is_configurable_from_json() {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 2 },
        traffic: TrafficModel::periodic(3.0),
        packets_per_source: 90,
        delay: DelayPlan::no_delay(),
        buffer: BufferPolicy::ThresholdMix { threshold: 9 },
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed: 13,
    };
    let out = run_roundtrip(&cfg);
    assert!(out.total_flushes() > 0);
    assert_eq!(out.total_delivered() + out.total_stranded(), 90);
}

#[test]
fn on_off_traffic_is_configurable_from_json() {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::PaperFigure1,
        traffic: TrafficModel::on_off(2.0, 30, 300.0),
        packets_per_source: 120,
        delay: DelayPlan::shared_exponential(30.0),
        buffer: BufferPolicy::paper_rcad(),
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed: 17,
    };
    let out = run_roundtrip(&cfg);
    assert_eq!(out.total_delivered(), 480);
}

#[test]
fn every_victim_policy_is_configurable_from_json() {
    for victim in [
        VictimPolicy::ShortestRemaining,
        VictimPolicy::LongestRemaining,
        VictimPolicy::Random,
        VictimPolicy::Oldest,
    ] {
        let cfg = ExperimentConfig {
            layout: LayoutSpec::Line { hops: 6 },
            traffic: TrafficModel::periodic(2.0),
            packets_per_source: 150,
            delay: DelayPlan::shared_exponential(30.0),
            buffer: BufferPolicy::Rcad {
                capacity: 5,
                victim,
            },
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed: 19,
        };
        let out = run_roundtrip(&cfg);
        assert_eq!(out.total_delivered(), 150, "{victim:?}");
        assert!(out.total_preemptions() > 0, "{victim:?}");
    }
}

#[test]
fn jitter_and_loss_are_configurable_from_json() {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 8 },
        traffic: TrafficModel::periodic(4.0),
        packets_per_source: 300,
        delay: DelayPlan::no_delay(),
        buffer: BufferPolicy::Unlimited,
        link_delay: 1.0,
        link_loss: 0.03,
        link_jitter: 0.4,
        seed: 23,
    };
    let out = run_roundtrip(&cfg);
    assert!(out.link_losses > 0);
    // Mean per-hop time 1.2: latency ~ 9.6 for survivors.
    assert!((out.flows[0].latency.mean() - 9.6).abs() < 0.3);
}

#[test]
fn legacy_configs_without_new_fields_still_parse() {
    // link_jitter was added after 0.1.0-dev configs were written; serde
    // defaults keep old JSON working.
    let legacy = r#"{
        "layout": "PaperFigure1",
        "traffic": { "Periodic": { "interval": 4.0 } },
        "packets_per_source": 50,
        "delay": { "Shared": { "Exponential": { "mean": 30.0 } } },
        "buffer": { "Rcad": { "capacity": 10, "victim": "ShortestRemaining" } },
        "link_delay": 1.0,
        "link_loss": 0.0,
        "seed": 7
    }"#;
    let cfg: ExperimentConfig = serde_json::from_str(legacy).unwrap();
    assert_eq!(cfg.link_jitter, 0.0);
    let out = cfg.build().unwrap().run();
    assert_eq!(out.total_delivered(), 200);
}

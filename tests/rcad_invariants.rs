//! Cross-crate invariants of the RCAD mechanism: conservation, capacity,
//! determinism, and threat-model enforcement.

use temporal_privacy::core::{
    BufferPolicy, DelayPlan, ExperimentConfig, LayoutSpec, NetworkSimulation, VictimPolicy,
};
use temporal_privacy::net::convergecast::Convergecast;
use temporal_privacy::net::{LinkModel, TrafficModel};
use temporal_privacy::sim::time::SimDuration;

fn paper_sim(inv_lambda: f64, packets: u32, buffer: BufferPolicy, seed: u64) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(buffer)
        .seed(seed)
        .build()
        .expect("valid simulation")
}

#[test]
fn rcad_conserves_every_packet() {
    for &inv_lambda in &[2.0, 6.0, 20.0] {
        let out = paper_sim(inv_lambda, 400, BufferPolicy::paper_rcad(), 61).run();
        for flow in &out.flows {
            assert_eq!(flow.created, 400);
            assert_eq!(
                flow.delivered, 400,
                "flow {} at 1/lambda {inv_lambda}",
                flow.flow
            );
        }
        assert_eq!(out.total_drops(), 0);
        assert_eq!(out.link_losses, 0);
        assert_eq!(out.observations.len(), 1600);
        assert_eq!(out.truth.len(), 1600);
    }
}

#[test]
fn drop_tail_conserves_as_delivered_plus_dropped() {
    let out = paper_sim(2.0, 400, BufferPolicy::DropTail { capacity: 10 }, 63).run();
    let created: u64 = out.flows.iter().map(|f| f.created).sum();
    assert_eq!(out.total_delivered() + out.total_drops(), created);
    assert!(out.total_drops() > 0, "rho = 15 must overflow 10 slots");
}

#[test]
fn occupancy_never_exceeds_capacity() {
    for victim in [
        VictimPolicy::ShortestRemaining,
        VictimPolicy::LongestRemaining,
        VictimPolicy::Random,
        VictimPolicy::Oldest,
    ] {
        let out = paper_sim(
            2.0,
            300,
            BufferPolicy::Rcad {
                capacity: 10,
                victim,
            },
            65,
        )
        .run();
        for node in &out.nodes {
            assert!(
                node.peak_occupancy <= 10,
                "{victim:?}: node {} peaked at {}",
                node.node,
                node.peak_occupancy
            );
            for &(state, _) in &node.occupancy_pmf {
                assert!(state <= 10);
            }
        }
    }
}

#[test]
fn preemptions_increase_with_traffic_rate() {
    let fast = paper_sim(2.0, 400, BufferPolicy::paper_rcad(), 67).run();
    let slow = paper_sim(20.0, 400, BufferPolicy::paper_rcad(), 67).run();
    assert!(
        fast.total_preemptions() > 5 * slow.total_preemptions().max(1),
        "fast {} vs slow {}",
        fast.total_preemptions(),
        slow.total_preemptions()
    );
}

#[test]
fn victim_policy_changes_departure_pattern_deterministically() {
    let short = paper_sim(
        2.0,
        300,
        BufferPolicy::Rcad {
            capacity: 10,
            victim: VictimPolicy::ShortestRemaining,
        },
        69,
    )
    .run();
    let long = paper_sim(
        2.0,
        300,
        BufferPolicy::Rcad {
            capacity: 10,
            victim: VictimPolicy::LongestRemaining,
        },
        69,
    )
    .run();
    assert_ne!(short.observations, long.observations);
    // Preempting the longest-remaining packet truncates more of each
    // delay, so mean latency drops below the shortest-remaining rule's.
    assert!(long.overall_mean_latency() < short.overall_mean_latency());
}

#[test]
fn end_to_end_determinism_across_full_stack() {
    let a = paper_sim(4.0, 500, BufferPolicy::paper_rcad(), 71).run();
    let b = paper_sim(4.0, 500, BufferPolicy::paper_rcad(), 71).run();
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    let c = paper_sim(4.0, 500, BufferPolicy::paper_rcad(), 72).run();
    assert_ne!(a.digest(), c.digest());
}

#[test]
fn lossy_links_account_for_every_packet() {
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(4.0))
        .packets_per_source(300)
        .link(LinkModel::constant(SimDuration::from_units(1.0)).with_loss(0.02))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(73)
        .build()
        .unwrap();
    let out = sim.run();
    let created: u64 = out.flows.iter().map(|f| f.created).sum();
    assert_eq!(out.total_delivered() + out.link_losses, created);
    assert!(out.link_losses > 0);
}

#[test]
fn hop_counts_in_observations_match_deployment() {
    let out = paper_sim(6.0, 100, BufferPolicy::paper_rcad(), 75).run();
    let expected = [15u32, 22, 9, 11];
    for obs in &out.observations {
        assert_eq!(obs.hop_count, expected[obs.flow.index()]);
    }
}

#[test]
fn config_json_round_trip_reproduces_runs() {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::PaperFigure1,
        traffic: TrafficModel::periodic(4.0),
        packets_per_source: 200,
        delay: DelayPlan::shared_exponential(30.0),
        buffer: BufferPolicy::paper_rcad(),
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed: 99,
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
    let a = cfg.build().unwrap().run();
    let b = back.build().unwrap().run();
    assert_eq!(a, b);
    // Outcomes themselves serialize (checkpointing / offline analysis).
    let dump = serde_json::to_string(&a).unwrap();
    assert!(dump.len() > 1000);
}

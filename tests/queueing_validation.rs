//! Simulator-vs-theory cross checks (DESIGN.md V2–V4): the event-driven
//! simulator must reproduce the §4 queueing laws before the privacy
//! results mean anything.

use temporal_privacy::core::{BufferPolicy, DelayPlan, ExperimentConfig, LayoutSpec};
use temporal_privacy::net::TrafficModel;
use temporal_privacy::queueing::erlang::erlang_b;
use temporal_privacy::queueing::goodness::{cv_squared, ks_critical_5pct, ks_exponential};
use temporal_privacy::queueing::poisson::total_variation_vs_poisson;

fn one_hop_config(
    traffic: TrafficModel,
    delay_mean: f64,
    buffer: BufferPolicy,
    packets: u32,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        layout: LayoutSpec::Line { hops: 1 },
        traffic,
        packets_per_source: packets,
        delay: DelayPlan::shared_exponential(delay_mean),
        buffer,
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed,
    }
}

#[test]
fn mm_inf_occupancy_is_poisson() {
    // lambda = 0.5, 1/mu = 20 => rho = 10.
    let cfg = one_hop_config(
        TrafficModel::poisson(0.5),
        20.0,
        BufferPolicy::Unlimited,
        30_000,
        41,
    );
    let outcome = cfg.build().unwrap().run();
    let node = &outcome.nodes[1];
    assert!(
        (node.mean_occupancy - 10.0).abs() < 0.4,
        "mean {}",
        node.mean_occupancy
    );
    let tv = total_variation_vs_poisson(&node.occupancy_pmf, 10.0);
    assert!(tv < 0.06, "TV distance {tv}");
}

#[test]
fn mm_inf_mean_scales_with_rho() {
    for &(lambda, mean, rho) in &[(0.2f64, 10.0f64, 2.0f64), (0.5, 30.0, 15.0)] {
        let cfg = one_hop_config(
            TrafficModel::poisson(lambda),
            mean,
            BufferPolicy::Unlimited,
            30_000,
            43,
        );
        let outcome = cfg.build().unwrap().run();
        let measured = outcome.nodes[1].mean_occupancy;
        assert!(
            (measured - rho).abs() < 0.05 * rho + 0.3,
            "rho {rho}: measured {measured}"
        );
    }
}

#[test]
fn drop_tail_loss_matches_erlang_formula() {
    for &rho in &[2.0, 8.0, 15.0] {
        let lambda = rho / 10.0;
        let cfg = one_hop_config(
            TrafficModel::poisson(lambda),
            10.0,
            BufferPolicy::DropTail { capacity: 10 },
            25_000,
            47,
        );
        let outcome = cfg.build().unwrap().run();
        let measured = outcome.total_drops() as f64 / outcome.flows[0].created as f64;
        let analytic = erlang_b(rho, 10);
        assert!(
            (measured - analytic).abs() < 0.02,
            "rho {rho}: measured {measured} vs Erlang {analytic}"
        );
    }
}

#[test]
fn burke_departures_are_poisson() {
    // Departures of an M/M/inf stage observed at the sink (shifted by
    // the constant link delay) must be Poisson at the arrival rate.
    let cfg = one_hop_config(
        TrafficModel::poisson(0.5),
        10.0,
        BufferPolicy::Unlimited,
        30_000,
        53,
    );
    let outcome = cfg.build().unwrap().run();
    let arrivals: Vec<f64> = outcome
        .observations
        .iter()
        .map(|o| o.arrival.as_units())
        .collect();
    let lo = arrivals.len() / 5;
    let hi = arrivals.len() * 4 / 5;
    let gaps: Vec<f64> = arrivals[lo..hi].windows(2).map(|w| w[1] - w[0]).collect();
    let cv2 = cv_squared(&gaps);
    assert!((cv2 - 1.0).abs() < 0.1, "CV^2 {cv2}");
    let d = ks_exponential(&gaps, 0.5);
    assert!(
        d < 2.5 * ks_critical_5pct(gaps.len()),
        "KS {d} vs critical {}",
        ks_critical_5pct(gaps.len())
    );
}

#[test]
fn periodic_source_is_not_poisson_but_becomes_smoother_after_delays() {
    // The paper notes realistic sensor traffic is periodic; after a stage
    // of heavy exponential buffering, departures look far more Poisson
    // (Kleinrock-style independence). CV^2: 0 at the source, near 1 after.
    let cfg = one_hop_config(
        TrafficModel::periodic(2.0),
        30.0,
        BufferPolicy::Unlimited,
        20_000,
        59,
    );
    let outcome = cfg.build().unwrap().run();
    let arrivals: Vec<f64> = outcome
        .observations
        .iter()
        .map(|o| o.arrival.as_units())
        .collect();
    let lo = arrivals.len() / 5;
    let hi = arrivals.len() * 4 / 5;
    let gaps: Vec<f64> = arrivals[lo..hi].windows(2).map(|w| w[1] - w[0]).collect();
    let cv2 = cv_squared(&gaps);
    assert!(cv2 > 0.7, "CV^2 after buffering {cv2}");
}

//! Generalization beyond the paper's evaluation topology: the privacy
//! mechanism and its invariants must hold on arbitrary deployments
//! (random geometric fields, grids), not just the calibrated
//! convergecast layout.

use temporal_privacy::core::{
    evaluate_adversary, BaselineAdversary, BufferPolicy, DelayPlan, NetworkSimulation,
};
use temporal_privacy::net::geometric::GeometricDeployment;
use temporal_privacy::net::routing::RoutingTree;
use temporal_privacy::net::{FlowId, NodeId, TrafficModel};
use temporal_privacy::sim::rng::RngFactory;

/// A connected random field with the sink at the corner and the three
/// deepest nodes as sources.
fn random_field(seed: u64) -> (RoutingTree, Vec<NodeId>) {
    let spec = GeometricDeployment::new(12.0, 12.0, 80, 2.8);
    let mut rng = RngFactory::new(seed).stream(0);
    let topo = spec
        .sample_connected(&mut rng, 50)
        .expect("dense field connects");
    let routing = RoutingTree::shortest_path(&topo, NodeId(0)).expect("connected");
    let mut by_depth: Vec<NodeId> = topo.nodes().filter(|&n| n != NodeId(0)).collect();
    by_depth.sort_by_key(|&n| std::cmp::Reverse(routing.hops(n).unwrap()));
    (routing.clone(), by_depth[..3].to_vec())
}

#[test]
fn privacy_ordering_holds_on_random_fields() {
    let (routing, sources) = random_field(1);
    let run = |delay: DelayPlan, buffer: BufferPolicy| {
        let sim = NetworkSimulation::builder(routing.clone(), sources.clone())
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(500)
            .delay_plan(delay)
            .buffer_policy(buffer)
            .seed(5)
            .build()
            .unwrap();
        let out = sim.run();
        let k = sim.adversary_knowledge();
        let mse = evaluate_adversary(&out, &BaselineAdversary, &k).mse(FlowId(0));
        (mse, out)
    };
    let (mse_none, _) = run(DelayPlan::no_delay(), BufferPolicy::Unlimited);
    let (mse_unlimited, _) = run(DelayPlan::shared_exponential(30.0), BufferPolicy::Unlimited);
    let (mse_rcad, out_rcad) = run(
        DelayPlan::shared_exponential(30.0),
        BufferPolicy::paper_rcad(),
    );
    assert!(mse_none < 1e-9);
    assert!(mse_unlimited > 1_000.0);
    assert!(
        mse_rcad > mse_unlimited,
        "rcad {mse_rcad} vs unlimited {mse_unlimited}"
    );
    assert!(out_rcad.total_preemptions() > 0);
    for f in &out_rcad.flows {
        assert_eq!(f.delivery_ratio(), 1.0);
    }
}

#[test]
fn reordering_grows_with_delay_randomness() {
    let (routing, sources) = random_field(2);
    let run = |delay: DelayPlan| {
        let sim = NetworkSimulation::builder(routing.clone(), sources.clone())
            .traffic(TrafficModel::periodic(4.0))
            .packets_per_source(400)
            .delay_plan(delay)
            .buffer_policy(BufferPolicy::Unlimited)
            .seed(9)
            .build()
            .unwrap();
        sim.run()
    };
    let ordered = run(DelayPlan::no_delay());
    let scrambled = run(DelayPlan::shared_exponential(30.0));
    for &flow in &[FlowId(0), FlowId(1), FlowId(2)] {
        assert_eq!(ordered.reordering_fraction(flow), 0.0, "{flow}");
        assert!(
            scrambled.reordering_fraction(flow) > 0.3,
            "{flow}: {}",
            scrambled.reordering_fraction(flow)
        );
    }
}

#[test]
fn deeper_sources_get_more_protection() {
    // MSE of the mean-correcting adversary on unlimited buffers scales
    // with hop count (Var = h * 900): verify across heterogeneous flows
    // of a random field.
    let (routing, sources) = random_field(3);
    let sim = NetworkSimulation::builder(routing.clone(), sources.clone())
        .traffic(TrafficModel::periodic(6.0))
        .packets_per_source(1500)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::Unlimited)
        .seed(13)
        .build()
        .unwrap();
    let out = sim.run();
    let k = sim.adversary_knowledge();
    let report = evaluate_adversary(&out, &BaselineAdversary, &k);
    for flow in &out.flows {
        let expected = f64::from(flow.hops) * 900.0;
        let measured = report.mse(flow.flow);
        assert!(
            (measured - expected).abs() / expected < 0.25,
            "flow {} (h={}): measured {measured} vs expected {expected}",
            flow.flow,
            flow.hops
        );
    }
}

#[test]
fn grid_deployment_with_multiple_sinks_of_traffic() {
    // A 9x9 grid, sink at the center, four corner sources: the BFS tree
    // splits traffic across four disjoint quadrant paths, so preemption
    // stays near each source's own path.
    let topo = temporal_privacy::net::topology::Topology::grid(9, 9);
    let center = NodeId(40); // (4, 4)
    let routing = RoutingTree::shortest_path(&topo, center).unwrap();
    let corners = vec![NodeId(0), NodeId(8), NodeId(72), NodeId(80)];
    let sim = NetworkSimulation::builder(routing, corners)
        .traffic(TrafficModel::periodic(2.0))
        .packets_per_source(400)
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(17)
        .build()
        .unwrap();
    let out = sim.run();
    assert_eq!(out.total_delivered(), 1600);
    for f in &out.flows {
        assert_eq!(f.hops, 8, "corner-to-center on a 9x9 grid");
    }
}

//! Integration of the §4 rate-controlled delay assignment with the full
//! simulator: does pinning the Erlang loss per node actually equalize
//! preemption pressure in a running network?

use temporal_privacy::core::adaptive_mu::{flows_per_node, rate_controlled_plan};
use temporal_privacy::core::{BufferPolicy, DelayPlan, NetworkSimulation};
use temporal_privacy::net::convergecast::Convergecast;
use temporal_privacy::net::TrafficModel;

fn run(plan: DelayPlan, inv_lambda: f64) -> temporal_privacy::core::SimOutcome {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(1500)
        .delay_plan(plan)
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(81)
        .build()
        .unwrap()
        .run()
}

#[test]
fn rate_controlled_plan_equalizes_preemption_pressure() {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 4.0;
    let counts = flows_per_node(layout.routing(), layout.sources());

    let uniform = run(DelayPlan::shared_exponential(30.0), inv_lambda);
    let controlled = run(
        rate_controlled_plan(
            layout.routing(),
            layout.sources(),
            1.0 / inv_lambda,
            10,
            0.05,
        ),
        inv_lambda,
    );

    // Per-node preemption fraction = preemptions / packets handled.
    let rates = |out: &temporal_privacy::core::SimOutcome| -> Vec<f64> {
        out.nodes
            .iter()
            .zip(&counts)
            .filter(|(_, &c)| c > 0)
            .map(|(n, &c)| n.preemptions as f64 / (1500.0 * f64::from(c)))
            .collect()
    };
    let spread = |v: &[f64]| {
        let max = v.iter().copied().fold(0.0f64, f64::max);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    };
    let uniform_rates = rates(&uniform);
    let controlled_rates = rates(&controlled);
    // Under the uniform plan, trunk nodes preempt far more than leaves;
    // the rate-controlled plan compresses that spread substantially.
    assert!(
        spread(&controlled_rates) < 0.5 * spread(&uniform_rates),
        "controlled spread {} vs uniform spread {}",
        spread(&controlled_rates),
        spread(&uniform_rates)
    );
    // And overall preemption volume drops (alpha = 0.05 target).
    assert!(controlled.total_preemptions() < uniform.total_preemptions() / 2);
}

#[test]
fn rate_controlled_latency_reflects_sharing_structure() {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 8.0;
    let plan = rate_controlled_plan(
        layout.routing(),
        layout.sources(),
        1.0 / inv_lambda,
        10,
        0.05,
    );
    let out = run(plan.clone(), inv_lambda);
    for flow in &out.flows {
        // Expected latency = h*tau + expected plan delay along the path,
        // within a few percent (little preemption at alpha = 0.05).
        let path = layout.routing().path(flow.source);
        let expected = f64::from(flow.hops) + plan.path_mean_delay(&path[..path.len() - 1]);
        let measured = flow.latency.mean();
        assert!(
            (measured - expected).abs() / expected < 0.1,
            "flow {}: measured {measured} vs expected {expected}",
            flow.flow
        );
    }
}

#[test]
fn tighter_loss_targets_cost_more_latency() {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 4.0;
    let loose = rate_controlled_plan(layout.routing(), layout.sources(), 0.25, 10, 0.2);
    let tight = rate_controlled_plan(layout.routing(), layout.sources(), 0.25, 10, 0.01);
    let out_loose = run(loose, inv_lambda);
    let out_tight = run(tight, inv_lambda);
    // A tighter loss target means shorter delays (smaller rho), hence
    // lower latency but also less privacy headroom.
    assert!(out_tight.overall_mean_latency() < out_loose.overall_mean_latency());
    assert!(out_tight.total_preemptions() < out_loose.total_preemptions());
}

//! Sensitivity of the headline conclusions to the paper's modelling
//! simplifications (S1 in EXPERIMENTS.md): the constant-τ MAC.

use temporal_privacy::core::{
    evaluate_adversary, BaselineAdversary, BufferPolicy, DelayPlan, ExperimentConfig,
};
use temporal_privacy::net::FlowId;

fn run_with_jitter(jitter: f64, delay: DelayPlan, buffer: BufferPolicy) -> (f64, f64) {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 600;
    cfg.link_jitter = jitter;
    cfg.delay = delay;
    cfg.buffer = buffer;
    let sim = cfg.build().unwrap();
    let outcome = sim.run();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
    (report.mse(FlowId(0)), outcome.flows[0].latency.mean())
}

#[test]
fn mac_jitter_gives_baseline_network_nonzero_mse() {
    // Under the paper's constant-tau abstraction the no-delay network has
    // exactly zero MSE; real MACs jitter, so the floor is small but
    // nonzero — and still orders of magnitude below RCAD's.
    let (mse_ideal, lat_ideal) =
        run_with_jitter(0.0, DelayPlan::no_delay(), BufferPolicy::Unlimited);
    let (mse_jittered, lat_jittered) =
        run_with_jitter(0.5, DelayPlan::no_delay(), BufferPolicy::Unlimited);
    assert!(mse_ideal < 1e-9);
    // 15 hops of Uniform[0, 0.5] noise: variance = 15 * 0.25/12 ~ 0.3.
    assert!(
        mse_jittered > 0.05 && mse_jittered < 2.0,
        "MSE {mse_jittered}"
    );
    assert!((lat_ideal - 15.0).abs() < 1e-9);
    // Mean latency grows by h * jitter/2 = 3.75, which the adversary's
    // tau = mean link delay already absorbs.
    assert!((lat_jittered - 18.75).abs() < 0.2, "latency {lat_jittered}");
}

#[test]
fn rcad_conclusions_survive_mac_jitter() {
    let (mse_smooth, lat_smooth) = run_with_jitter(
        0.0,
        DelayPlan::shared_exponential(30.0),
        BufferPolicy::paper_rcad(),
    );
    let (mse_jittered, lat_jittered) = run_with_jitter(
        0.5,
        DelayPlan::shared_exponential(30.0),
        BufferPolicy::paper_rcad(),
    );
    // The privacy signal dwarfs MAC noise: within 15% of the smooth MSE.
    assert!(
        (mse_jittered - mse_smooth).abs() < 0.15 * mse_smooth,
        "smooth {mse_smooth} vs jittered {mse_jittered}"
    );
    assert!((lat_jittered - lat_smooth).abs() < 20.0);
}

#[test]
fn adversary_tau_accounts_for_jitter_mean() {
    // The deployment-aware adversary's tau is the *mean* per-hop time, so
    // jitter adds variance, not bias, to its error.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 600;
    cfg.link_jitter = 1.0;
    cfg.delay = DelayPlan::no_delay();
    cfg.buffer = BufferPolicy::Unlimited;
    let sim = cfg.build().unwrap();
    assert!((sim.adversary_knowledge().tau - 1.5).abs() < 1e-12);
    let outcome = sim.run();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
    let flow0 = &report.per_flow[0];
    assert!(flow0.bias().abs() < 0.2, "bias {}", flow0.bias());
    // Variance = 15 * 1/12 = 1.25.
    assert!((flow0.mse() - 1.25).abs() < 0.3, "MSE {}", flow0.mse());
}

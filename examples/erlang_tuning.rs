//! Rate-controlled delay tuning (§4's "powerful observation").
//!
//! Traffic aggregates toward the sink, so a uniform 1/μ = 30 saturates
//! trunk buffers far harder than leaf buffers. The Erlang loss formula
//! can be inverted per node to hold every buffer at a target
//! drop/preemption probability α. This example walks the Figure-1
//! network, prints the per-node assignment, and compares the resulting
//! network against the uniform plan.
//!
//! ```text
//! cargo run --release --example erlang_tuning
//! ```

use temporal_privacy::core::adaptive_mu::{flows_per_node, rate_controlled_plan};
use temporal_privacy::core::{
    evaluate_adversary, BaselineAdversary, BufferPolicy, DelayPlan, NetworkSimulation,
};
use temporal_privacy::net::convergecast::Convergecast;
use temporal_privacy::net::{FlowId, NodeId, TrafficModel};
use temporal_privacy::queueing::erlang::erlang_b;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 4.0;
    let (k, alpha) = (10u32, 0.05);
    let per_flow_rate = 1.0 / inv_lambda;

    // The §4 design rule, node by node.
    let plan = rate_controlled_plan(layout.routing(), layout.sources(), per_flow_rate, k, alpha);
    let counts = flows_per_node(layout.routing(), layout.sources());

    println!("Per-node assignment for target loss alpha = {alpha} (1/lambda = {inv_lambda}):\n");
    println!(
        "{:<22} {:>6} {:>10} {:>12} {:>12}",
        "node class", "flows", "lambda", "1/mu", "E(rho,k)"
    );
    let mut seen = std::collections::BTreeSet::new();
    for (idx, &m) in counts.iter().enumerate().skip(1) {
        if idx >= layout.len() || m == 0 || !seen.insert(m) {
            continue; // one representative per traffic class
        }
        let strategy = plan.for_node(NodeId(idx as u32));
        let lambda = f64::from(m) * per_flow_rate;
        let loss = erlang_b(lambda * strategy.mean(), k);
        let class = match m {
            4 => "trunk (all flows)",
            1 => "private chain",
            _ => "partial merge",
        };
        println!(
            "{class:<22} {m:>6} {lambda:>10.3} {:>12.2} {loss:>12.4}",
            strategy.mean()
        );
    }

    // Head-to-head: uniform 30 vs rate-controlled, same buffers.
    println!(
        "\n{:<26} {:>12} {:>12} {:>13}",
        "plan", "MSE (S1)", "latency (S1)", "preemptions"
    );
    for (label, plan) in [
        ("uniform 1/mu = 30", DelayPlan::shared_exponential(30.0)),
        ("rate-controlled", plan),
    ] {
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::periodic(inv_lambda))
            .packets_per_source(1000)
            .delay_plan(plan)
            .buffer_policy(BufferPolicy::paper_rcad())
            .seed(11)
            .build()?;
        let outcome = sim.run();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
        println!(
            "{label:<26} {:>12.1} {:>12.1} {:>13}",
            report.mse(FlowId(0)),
            outcome.flows[0].latency.mean(),
            outcome.total_preemptions(),
        );
    }

    println!(
        "\nReading: the rate-controlled plan shortens delays exactly where \
         traffic\naggregates, holding every buffer at the same loss target \
         instead of letting\ntrunk nodes preempt constantly."
    );
    Ok(())
}

//! RCAD vs Chaum-style threshold mixes (the related-work comparison).
//!
//! The paper's §6 traces its mechanism to SG-Mixes (per-packet
//! exponential delay — exactly what an RCAD node does) and notes that
//! classical pool/threshold mixes "do not extend to networks of queues."
//! This example makes that concrete: against periodic sensor traffic a
//! batching mix is nearly transparent — its flush instants are
//! deterministic functions of the (publicly known) rates — while RCAD's
//! independent delays leave even an oracle-grade adversary with a large
//! irreducible error.
//!
//! ```text
//! cargo run --release --example mix_vs_rcad
//! ```

use temporal_privacy::core::experiment::{mix_comparison_sweep, SweepParams};
use temporal_privacy::core::{BufferPolicy, DelayPlan, ExperimentConfig};
use temporal_privacy::net::energy::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SweepParams {
        inv_lambdas: vec![2.0, 8.0, 20.0],
        ..SweepParams::paper_default()
    };
    println!("Privacy floor (oracle MSE), latency, reordering — flow S1\n");
    println!(
        "{:<20} {:>9} {:>14} {:>10} {:>12}",
        "mechanism", "1/lambda", "oracle MSE", "latency", "reordering"
    );
    for row in mix_comparison_sweep(&params) {
        println!(
            "{:<20} {:>9} {:>14.1} {:>10.1} {:>12.3}",
            format!("{:?}", row.mechanism),
            row.inv_lambda,
            row.oracle_mse,
            row.mean_latency,
            row.reordering,
        );
    }

    // The energy ledger: delaying is free, radios are not.
    let model = EnergyModel::mica2();
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 500;
    let rcad = cfg.build()?.run();
    cfg.delay = DelayPlan::no_delay();
    cfg.buffer = BufferPolicy::ThresholdMix { threshold: 10 };
    let mix = cfg.build()?.run();
    println!("\nradio energy per delivered packet (Mica-2-like costs):");
    println!(
        "    RCAD             : {:.1}",
        rcad.energy_per_delivered(&model)
    );
    println!(
        "    ThresholdMix(10) : {:.1}  ({} packets stranded in unfilled batches)",
        mix.energy_per_delivered(&model),
        mix.total_stranded(),
    );
    println!(
        "\nReading: at equal radio cost, RCAD's oracle floor is orders of \
         magnitude higher\n— random per-hop delay, not batching, is what \
         hides timing in convergecast networks."
    );
    Ok(())
}

//! The adversary hierarchy: how much does attacker sophistication buy?
//!
//! Runs the paper's RCAD network across the traffic sweep and scores all
//! four shipped adversaries: the §2.1 baseline, the §5.4 adaptive model,
//! the route-aware extension (per-node saturation on the known routing
//! tree), and the constant-offset oracle (the information-theoretic floor
//! for this estimator family).
//!
//! ```text
//! cargo run --release --example adversary_duel
//! ```

use temporal_privacy::core::experiment::{adversary_panel_sweep, SweepParams};

fn main() {
    let params = SweepParams {
        inv_lambdas: vec![2.0, 4.0, 8.0, 14.0, 20.0],
        ..SweepParams::paper_default()
    };
    println!(
        "Adversary MSE under RCAD (flow S1, {} packets/source)\n",
        params.packets_per_source
    );
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12}",
        "1/lambda", "baseline", "adaptive", "route-aware", "oracle"
    );
    for row in adversary_panel_sweep(&params) {
        println!(
            "{:>9} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            row.inv_lambda, row.baseline_mse, row.adaptive_mse, row.route_aware_mse, row.oracle_mse
        );
    }
    println!(
        "\nReading: each tier of deployment knowledge shrinks the error, but \
         even the\noracle cannot beat the latency variance RCAD injects — \
         that residual *is* the\ntemporal privacy the mechanism buys."
    );
}

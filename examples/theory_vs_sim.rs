//! Theory vs simulation: the §3 information-theoretic story, measured.
//!
//! Three checks in one binary:
//!
//! 1. the closed-form max-entropy argument — exponential vs uniform vs
//!    constant delay entropy at equal mean;
//! 2. the bits-through-queues bound `I(X_j; Z_j) ≤ ln(1 + jμ/λ)` against
//!    numeric mutual information of the additive-delay channel;
//! 3. an end-to-end simulated network, with the MSE→MI bridge: the
//!    adversary's measured MSE implies an upper bound on what it learned.
//!
//! ```text
//! cargo run --release --example theory_vs_sim
//! ```

use temporal_privacy::core::{evaluate_adversary, BaselineAdversary, ExperimentConfig};
use temporal_privacy::infotheory::bounds::btq_packet_bound_nats;
use temporal_privacy::infotheory::distributions::{
    ContinuousDist, Degenerate, ErlangDist, Exponential, Uniform,
};
use temporal_privacy::infotheory::estimators::mi_lower_bound_from_mse_nats;
use temporal_privacy::infotheory::mutual_information::mi_additive_nats;
use temporal_privacy::net::FlowId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (lambda, mean_delay) = (0.5, 30.0);
    let mu = 1.0 / mean_delay;

    // (1) Max-entropy: why the paper buffers with exponential delays.
    println!("(1) differential entropy at mean delay {mean_delay} (nats):");
    println!(
        "    exponential: {:+.3}",
        Exponential::with_mean(mean_delay).entropy_nats()
    );
    println!(
        "    uniform    : {:+.3}",
        Uniform::with_mean(mean_delay).entropy_nats()
    );
    println!(
        "    constant   : {:+.3}",
        Degenerate::new(mean_delay).entropy_nats()
    );

    // (2) Bits through queues (paper eq. 4 terms).
    println!("\n(2) leakage of the j-th packet, Poisson source lambda = {lambda}:");
    println!(
        "    {:>4} {:>18} {:>18}",
        "j", "numeric I(Xj;Zj)", "bound ln(1+j*mu/l)"
    );
    for j in [1u32, 2, 4, 8, 16] {
        let x = ErlangDist::new(j, lambda);
        let y = Exponential::new(mu);
        let mi = mi_additive_nats(&x, &y, 4_000);
        let bound = btq_packet_bound_nats(u64::from(j), mu, lambda);
        println!("    {j:>4} {mi:>18.4} {bound:>18.4}");
    }

    // (3) End to end: simulated MSE implies a leakage bound.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 1000;
    let sim = cfg.build()?;
    let outcome = sim.run();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
    let mse = report.mse(FlowId(0));
    // Creation times of a periodic source over the run: variance of a
    // uniform grid spread over the creation window.
    let (xs, _) = outcome.creation_arrival_pairs(FlowId(0));
    let mean_x = xs.iter().sum::<f64>() / xs.len() as f64;
    let var_x = xs.iter().map(|x| (x - mean_x).powi(2)).sum::<f64>() / xs.len() as f64;
    println!("\n(3) simulated RCAD network at 1/lambda = 2 (flow S1):");
    println!("    adversary MSE          : {mse:>12.1} time-units^2");
    println!("    creation-time variance : {var_x:>12.1} time-units^2");
    println!(
        "    => reaching this MSE requires only {:.3} nats of information \
         per creation time\n       (rate-distortion bound 0.5*ln(Var X / MSE); \
         0 means the adversary's accuracy\n       is consistent with having \
         learned nothing at all — the privacy goal)",
        mi_lower_bound_from_mse_nats(var_x, mse)
    );
    Ok(())
}

//! Habitat monitoring: the paper's motivating scenario, end to end.
//!
//! An animal (the paper's "asset") random-waypoints across a sensed
//! field. Whichever sensor detects it reports to the sink. An adversary
//! at the sink knows every sensor's position; if it can estimate packet
//! *creation* times, it can replay the animal's trajectory — the paper's
//! §2 hunter-vs-endangered-animal threat. This example measures how far
//! off (in field distance) the adversary's reconstructed trajectory is,
//! with and without RCAD buffering.
//!
//! ```text
//! cargo run --release --example habitat_monitoring
//! ```

use std::collections::BTreeMap;

use temporal_privacy::core::{
    evaluate_adversary, Adversary, BaselineAdversary, BufferPolicy, DelayPlan, NetworkSimulation,
};
use temporal_privacy::net::mobility::{detections, RandomWaypoint, TrackPoint};
use temporal_privacy::net::routing::RoutingTree;
use temporal_privacy::net::topology::Topology;
use temporal_privacy::net::NodeId;
use temporal_privacy::sim::rng::RngFactory;
use temporal_privacy::sim::time::SimTime;

/// Nearest track point to a timestamp — where the asset really was.
fn position_at(track: &[TrackPoint], t: f64) -> (f64, f64) {
    let p = track
        .iter()
        .min_by(|a, b| {
            let da = (a.time.as_units() - t).abs();
            let db = (b.time.as_units() - t).abs();
            da.partial_cmp(&db).expect("finite")
        })
        .expect("non-empty track");
    (p.x, p.y)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12x12 sensed grid; the sink sits at the corner (node 0).
    let field = Topology::grid(12, 12);
    let routing = RoutingTree::shortest_path(&field, NodeId(0))?;

    // The asset wanders for 2000 time units; a detection fires every 4
    // units at the nearest in-range sensor.
    let asset = RandomWaypoint::new(11.0, 11.0, 0.35);
    let mut rng = RngFactory::new(77).stream(0);
    let track = asset.trajectory(500, 4.0, &mut rng);
    let dets = detections(&field, &track, 1.2);
    println!(
        "asset wandered for {} units; {} detections across {} sensors",
        track.last().expect("non-empty").time.as_units(),
        dets.len(),
        dets.iter()
            .map(|d| d.node)
            .collect::<std::collections::HashSet<_>>()
            .len(),
    );

    // One flow per sensor that ever detected; its schedule is its
    // detection instants (trace-driven workload).
    let mut per_node: BTreeMap<NodeId, Vec<SimTime>> = BTreeMap::new();
    for d in &dets {
        if d.node != NodeId(0) {
            per_node.entry(d.node).or_default().push(d.time);
        }
    }
    let sources: Vec<NodeId> = per_node.keys().copied().collect();
    let schedules: Vec<Vec<SimTime>> = per_node.values().cloned().collect();

    let scenarios = [
        ("no delay", DelayPlan::no_delay(), BufferPolicy::Unlimited),
        (
            "RCAD, 1/mu = 30, k = 10",
            DelayPlan::shared_exponential(30.0),
            BufferPolicy::paper_rcad(),
        ),
    ];

    println!(
        "\n{:<24} {:>14} {:>22}",
        "scenario", "time MSE", "mean tracking error"
    );
    for (label, delay, buffer) in scenarios {
        let sim = NetworkSimulation::builder(routing.clone(), sources.clone())
            .schedules(schedules.clone())
            .delay_plan(delay)
            .buffer_policy(buffer)
            .seed(7)
            .build()?;
        let outcome = sim.run();
        let knowledge = sim.adversary_knowledge();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);

        // Spatio-temporal attack: for each observation the adversary
        // estimates the creation time, looks up the *reporting sensor's
        // position* (cleartext origin), and claims "the asset was near
        // (x, y) at time t̂". Its tracking error is the field distance
        // between the asset's true position at t̂ and its true position
        // at the actual creation time.
        let estimates =
            BaselineAdversary.estimate_creation_times(&outcome.observations, &knowledge);
        let mut err_sum = 0.0;
        for (obs, est) in outcome.observations.iter().zip(&estimates) {
            let truth = outcome.creation_time(obs.packet).as_units();
            let (tx, ty) = position_at(&track, truth);
            let (ex, ey) = position_at(&track, *est);
            err_sum += ((tx - ex).powi(2) + (ty - ey).powi(2)).sqrt();
        }
        let mean_err = err_sum / outcome.observations.len() as f64;
        println!(
            "{:<24} {:>14.1} {:>18.2} units",
            label,
            report.overall.mse(),
            mean_err
        );
    }

    println!(
        "\nReading: temporal ambiguity becomes spatial ambiguity — with \
         RCAD the\nadversary's reconstructed positions drift away from the \
         asset's true track."
    );
    Ok(())
}

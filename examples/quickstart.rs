//! Quickstart: reproduce the paper's headline comparison in one run.
//!
//! Builds the Figure 1 network at the highest traffic rate (1/λ = 2) and
//! compares the three §5.3 scenarios — no delay, exponential delay with
//! unlimited buffers, and exponential delay with 10-slot RCAD buffers —
//! on both axes the paper reports: adversary MSE (privacy, higher is
//! better) and mean delivery latency (overhead, lower is better).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use temporal_privacy::core::{
    evaluate_adversary, BaselineAdversary, BufferPolicy, DelayPlan, ExperimentConfig,
};
use temporal_privacy::net::FlowId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut base = ExperimentConfig::paper_default();
    base.packets_per_source = 1000;

    let scenarios = [
        ("no delay", DelayPlan::no_delay(), BufferPolicy::Unlimited),
        (
            "delay, unlimited buffers",
            DelayPlan::shared_exponential(30.0),
            BufferPolicy::Unlimited,
        ),
        (
            "delay, RCAD (10 slots)",
            DelayPlan::shared_exponential(30.0),
            BufferPolicy::paper_rcad(),
        ),
    ];

    println!("Temporal privacy on the paper's Figure-1 network, 1/lambda = 2");
    println!("(flow S1: 15 hops; adversary: baseline, Kerckhoff-aware)\n");
    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "scenario", "MSE (units^2)", "latency", "preemptions"
    );

    for (label, delay, buffer) in scenarios {
        let mut cfg = base.clone();
        cfg.delay = delay;
        cfg.buffer = buffer;
        let sim = cfg.build()?;
        let outcome = sim.run();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
        println!(
            "{:<28} {:>14.1} {:>12.1} {:>12}",
            label,
            report.mse(FlowId(0)),
            outcome.flows[0].latency.mean(),
            outcome.total_preemptions(),
        );
    }

    println!(
        "\nReading: RCAD's preemptions break the adversary's delay model \
         (large MSE)\nwhile keeping latency well below the unlimited-buffer \
         network."
    );
    Ok(())
}

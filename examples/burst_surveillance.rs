//! Bursty surveillance traffic vs an online adversary.
//!
//! Event-triggered sensors are quiet until something happens, then report
//! rapidly — 200-packet bursts with long silences here. The paper's
//! adaptive adversary (§5.4) estimates one arrival rate for the whole
//! trace, which averages bursts into the silence and learns nothing. An
//! online attacker with a sliding window re-estimates the rate packet by
//! packet and recovers most of what RCAD's preemptions were hiding.
//!
//! ```text
//! cargo run --release --example burst_surveillance
//! ```

use temporal_privacy::core::experiment::{burst_adversary_experiment, SweepParams};
use temporal_privacy::net::TrafficModel;

fn main() {
    let (burst, off, window) = (200u32, 2_000.0, 300.0);
    println!("On/off sources: {burst}-packet bursts, {off}-unit silences; RCAD k = 10, 1/mu = 30");
    let model = TrafficModel::on_off(2.0, burst, off);
    println!(
        "long-run rate at intra-burst interval 2: {:.4} packets/unit\n",
        model.mean_rate()
    );
    println!(
        "{:>16} {:>12} {:>16} {:>18} {:>10}",
        "burst interval", "baseline", "adaptive(batch)", "windowed(online)", "oracle"
    );
    let params = SweepParams {
        inv_lambdas: vec![1.0, 1.5, 2.0, 2.5, 3.0],
        ..SweepParams::paper_default()
    };
    for row in burst_adversary_experiment(&params, burst, off, window) {
        println!(
            "{:>16} {:>12.0} {:>16.0} {:>18.0} {:>10.0}",
            row.burst_interval,
            row.baseline_mse,
            row.adaptive_mse,
            row.windowed_mse,
            row.oracle_mse
        );
    }
    println!(
        "\nReading: whole-trace rate estimation (the paper's §5.4 model) is \
         blind to bursts;\na {window}-unit sliding window recovers ~70% of \
         the adversary's error at the burstiest\npoint. Privacy budgets \
         should assume windowed attackers."
    );
}

//! `tempriv serve` and `tempriv bench serve` — the service layer's CLI.

use std::io::Write;
use std::path::PathBuf;

use tempriv_serve::loadgen::{run_load, LoadParams};
use tempriv_serve::server::{ServeConfig, Server};

use crate::args::Args;
use crate::commands::io_err;

/// `tempriv serve`: run the simulation-as-a-service HTTP server until a
/// `POST /v1/shutdown` (or the process is killed — the journal resumes
/// the queue on the next start).
///
/// # Errors
///
/// Returns a message on bad flags or when the server cannot bind.
pub fn cmd_serve<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let cfg = ServeConfig {
        addr: args.option("addr").unwrap_or("127.0.0.1:7077").to_string(),
        workers: args.option_as("workers", 2usize)?.max(1),
        cache_dir: args.option("cache-dir").map(PathBuf::from),
        journal: args.option("manifest").map(PathBuf::from),
        max_queue: args.option_as("max-queue", 64usize)?,
        tenant_quota: args.option_as("tenant-quota", 16usize)?,
    };
    let workers = cfg.workers;
    let durable = cfg.journal.is_some();
    let server = Server::bind(cfg)?;
    let resumed = server.resumed_queue_len();
    writeln!(
        out,
        "tempriv serve listening on {} ({workers} workers{}{})",
        server.local_addr(),
        if durable { ", journaled" } else { "" },
        if resumed > 0 {
            format!(", resumed {resumed} queued jobs")
        } else {
            String::new()
        }
    )
    .map_err(io_err)?;
    out.flush().map_err(io_err)?;
    server.run();
    writeln!(out, "tempriv serve stopped").map_err(io_err)?;
    Ok(())
}

/// `tempriv bench <target>`: load benchmarks. Currently one target,
/// `serve`, which storms the HTTP API and writes a latency/throughput/
/// hit-rate report.
///
/// # Errors
///
/// Returns a message on an unknown target, bad flags, or a failed run.
pub fn cmd_bench<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    match args.positional(1) {
        Some("serve") => cmd_bench_serve(args, out),
        Some(other) => Err(format!("unknown bench target `{other}`; expected `serve`")),
        None => Err("usage: tempriv bench serve [--submissions N ...]".to_string()),
    }
}

fn cmd_bench_serve<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let params = LoadParams {
        submissions: args.option_as("submissions", 2000usize)?.max(1),
        concurrency: args.option_as("concurrency", 16usize)?.max(1),
        tenants: args.option_as("tenants", 4usize)?.max(1),
        distinct: args.option_as("distinct", 64usize)?.max(1),
        packets: args.option_as("packets", 60u32)?.max(1),
        experiment: args.option("experiment").unwrap_or("fig3").to_string(),
        addr: args.option("addr").map(String::from),
        server_workers: args.option_as("server-workers", 4usize)?.max(1),
    };
    writeln!(
        out,
        "bench serve: {} submissions, {} clients, {} tenants, {} distinct specs ({})",
        params.submissions, params.concurrency, params.tenants, params.distinct, params.experiment
    )
    .map_err(io_err)?;
    out.flush().map_err(io_err)?;

    let report = run_load(&params)?;
    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(path) = args.option("out") {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "report written to {path}").map_err(io_err)?;
    }
    writeln!(
        out,
        "done in {:.2}s: {:.0} req/s, submit p50/p90/p99 = {:.2}/{:.2}/{:.2} ms, \
         warm {} / cold {} (hit rate {:.2}), rejected-retries {}, failed {}, \
         warm bytes identical: {}",
        report.elapsed_s,
        report.throughput_rps,
        report.submit_latency_ms.p50,
        report.submit_latency_ms.p90,
        report.submit_latency_ms.p99,
        report.warm,
        report.cold,
        report.cache_hit_rate,
        report.rejected_retries,
        report.failed,
        report.warm_bytes_identical
    )
    .map_err(io_err)?;
    Ok(())
}

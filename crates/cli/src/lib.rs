//! # tempriv-cli — command-line front end
//!
//! The `tempriv` binary: run serialized experiment configs, sweep traffic
//! rates, and evaluate the paper's queueing/leakage formulas from the
//! shell. Logic lives in [`commands`] (unit-testable against in-memory
//! writers); [`args`] is a tiny dependency-free `--key value` parser.
//!
//! ```text
//! tempriv init-config cfg.json
//! tempriv run cfg.json --out outcome.json
//! tempriv sweep --points 2,10,20 --packets 500
//! tempriv calc erlang --rho 15 --slots 10
//! tempriv calc btq --lambda 0.5 --mu 0.0333 --j 4 --n 1000
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod audit_cmd;
pub mod commands;
pub mod serve_cmd;

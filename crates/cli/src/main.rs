//! `tempriv` — command-line front end for the temporal-privacy toolkit.

use std::process::ExitCode;

use tempriv_cli::args::Args;
use tempriv_cli::commands::dispatch;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match dispatch(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

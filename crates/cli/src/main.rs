//! `tempriv` — command-line front end for the temporal-privacy toolkit.

use std::process::ExitCode;

use tempriv_cli::args::Args;
use tempriv_cli::commands::{dispatch, CliError};

/// Counting allocator behind `--mem-profile`, `profile`, and the serve
/// memory gauges. Dormant (one relaxed atomic load per allocation)
/// until a command enables it.
#[global_allocator]
static ALLOC: tempriv_telemetry::CountingAlloc = tempriv_telemetry::CountingAlloc;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match dispatch(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            match &err {
                CliError::Error(msg) => eprintln!("error: {msg}"),
                CliError::Divergence(msg) => eprintln!("divergence: {msg}"),
            }
            ExitCode::from(err.exit_code())
        }
    }
}

//! CLI subcommand implementations.
//!
//! Each command takes parsed [`Args`] and a writer, returning an error
//! string on failure — keeping everything unit-testable without spawning
//! processes.

use std::io::Write;
use std::sync::Arc;

use tempriv_core::config::ExperimentConfig;
use tempriv_core::experiment::{
    adversary_panel_sweep_with, delay_ablation_sweep_with, fig2_sweep_with, fig3_sweep_with,
    mix_comparison_sweep_with, victim_ablation_sweep_with, SweepParams,
};
use tempriv_core::replication::{replicate, ReplicatedMetric};
use tempriv_core::report::PrivacyAssessment;
use tempriv_core::telemetry::{privacy_flow_configs, JobMem, JobSpans, JobTrace, TelemetryExport};
use tempriv_core::SimOutcome;
use tempriv_infotheory::bounds::{btq_packet_bound_nats, btq_stream_bound_nats};
use tempriv_infotheory::DEFAULT_STREAMING_BINS;
use tempriv_queueing::erlang::{erlang_b, min_servers_for_loss, service_rate_for_loss};
use tempriv_queueing::mm_inf::MmInf;
use tempriv_runtime::{ManifestReader, ResultCache, Runtime, StderrReporter, TelemetrySink};
use tempriv_telemetry::{
    chrome_span_events, memprof, wrap_chrome_events, DigestProbe, FlightRecorder,
    FlowPrivacySummary, LineageOutcome, MemBreakdown, PhaseBreakdown, PrivacyProbe, SimProbe,
    SpanRecord, TraceCtx, DEFAULT_DIGEST_WINDOW, DEFAULT_FLIGHT_CAPACITY, DEFAULT_PHASE_BATCH,
};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
tempriv — temporal privacy toolkit (ICDCS 2007 reproduction)

USAGE:
    tempriv <command> [args]

COMMANDS:
    run <config.json>        run one experiment config; print a summary
        [--out outcome.json] dump the full outcome as JSON
        [--seed N]           override the config's seed
    init-config <path>       write the paper-default config template
    assess <config.json>     replicate a config across seeds; print
        [--replications N]   mean +/- 95% CI per flow (default N = 5)
    sweep                    experiment sweep on the paper layout
        [--experiment E]     fig2 (default, table), or JSON-rows sweeps:
                             fig3, adversary-panel, victim-ablation,
                             delay-ablation, mix-comparison
        [--points 2,4,...]   inter-arrival times (default: 2..20)
        [--packets N]        packets per source (default 1000)
        [--seed N]
        [--workers N]        worker threads (default: all cores)
        [--cache-dir DIR]    persist results; warm reruns skip done work
        [--manifest PATH]    journal the run as JSONL (enables resume)
        [--telemetry PATH]   instrument the run; write the aggregated
                             telemetry export (occupancy, preemptions,
                             drops, theory cross-checks) as JSON
        [--trace-capacity N] also flight-record packet lifecycles into
                             a ring of N events per job (needs
                             --telemetry; blobs journal to --manifest)
        [--privacy-interval N]  also stream per-flow I(X;Z) estimates,
                             snapshotting every N deliveries (needs
                             --telemetry; blobs journal to --manifest)
        [--digest-window N]  also fold every scenario into windowed
                             determinism digests (needs --telemetry;
                             audit blobs journal to --manifest)
        [--mem-profile]      also count heap allocations per engine
                             phase via the counting allocator (needs
                             --telemetry; ledgers journal to --manifest)
        [--quiet]            suppress stderr progress
    resume <run.jsonl>       finish an interrupted sweep from its manifest
        [--workers N] [--telemetry PATH] [--trace-capacity N]
        [--privacy-interval N] [--digest-window N] [--quiet]
    report <run.jsonl|dir>   aggregate per-job telemetry from a manifest,
                             or from every *.jsonl manifest in a directory
        [--format F]         text (default), json, or prometheus
        [--bench DIR]        instead summarize the committed BENCH_*.json
                             benchmark reports in DIR: headline metric,
                             overhead figure, CI gate pass/fail
    trace [config.json]      flight-record one run (paper default config
                             when omitted) and dump packet lifecycles
        [--seed N] [--packets N]  override the config
        [--capacity N]       ring-buffer capacity (default 262144)
        [--flow F] [--node N] [--packet P]  keep matching events only
        [--format F]         text (default), jsonl, or chrome
                             (chrome loads in chrome://tracing / Perfetto)
        [--out PATH]         write the dump to a file instead of stdout
        [--expect-root HEX]  also digest the run and check its root;
                             with [--fail-on-divergence] a mismatch
                             exits with code 2
        [--digest-window N]  checkpoint window for --expect-root
    profile                  run a sweep under the engine self-profiler;
                             print the per-phase wall-time table
        [--experiment E]     sweep to profile (default fig2)
        [--points 2,4,...]   inter-arrival times (default: smoke points)
        [--packets N] [--seed N]
        [--batch N]          switches per clock read (default 64)
        [--json]             print the merged breakdown as JSON
                             (text mode adds the per-phase allocation
                             ledger and the process peak RSS)
        [--out PATH]         also write the merged Chrome trace (spans +
                             phase bands + packet residences; loads in
                             chrome://tracing / Perfetto)
    watch [run.jsonl]        live streaming-privacy view: tail a manifest
                             journaled with --privacy-interval, or (with
                             no argument) run the paper default config
                             in-process and watch per-flow MI converge
        [--poll-ms N]        manifest poll interval (default 250)
        [--once]             render the current state once and exit
        [--seed N] [--packets N]  one-shot run overrides
        [--interval N]       deliveries between snapshots (default 100)
        [--bins N]           streaming histogram resolution (default 32)
        [--out PATH]         write the final privacy series JSON
    serve                    run the simulation-as-a-service HTTP server
        [--addr A]           listen address (default 127.0.0.1:7077)
        [--workers N]        job worker threads (default 2)
        [--cache-dir DIR]    persist results; warm submissions answer
                             from the cache without re-simulating
        [--manifest PATH]    journal submissions as JSONL; a restarted
                             server resumes its queue exactly
        [--max-queue N]      bound on queued+running jobs (default 64)
        [--tenant-quota N]   per-tenant bound (default 16); overflow
                             returns 429 + Retry-After
    bench serve              load-drive the serve API; report latency
                             percentiles, throughput, and hit-rate
        [--submissions N]    total submissions (default 2000)
        [--concurrency N]    client threads (default 16)
        [--tenants N] [--distinct N] [--packets N] [--experiment E]
        [--addr A]           target an external server (default:
                             spawn one in-process)
        [--server-workers N] in-process server workers (default 4)
        [--out PATH]         write the JSON report (BENCH_serve.json)
    cache stats --cache-dir DIR    count cached results
    cache clear --cache-dir DIR    delete cached results
    calc erlang  --rho R --slots K          Erlang loss E(R, K)
    calc servers --rho R --alpha A          min slots for target loss
    calc mu      --lambda L --slots K --alpha A   rate-controlled mu
    calc mminf   --lambda L --mu M          M/M/inf occupancy stats
    calc btq     --lambda L --mu M [--j J] [--n N]  leakage bounds (nats)
    audit run [config.json]  digest one run: fold the packet event stream
                             into windowed checkpoints + a run root
        [--seed N] [--packets N]  override the config
        [--window N]         events per checkpoint (default 4096)
        [--out digest.json]  write the digest (stdout JSON otherwise)
    audit diff <a.json> <b.json>   compare two digests; name the first
                             divergent window
    audit bisect [config.json]     run two variants, then re-run the
                             first divergent window with full capture to
                             pinpoint the exact first divergent event
        (--against other.json | --against-seed M)
        [--seed N] [--packets N] [--window N]
    audit ledger (--check | --update)  verify or extend the committed
                             determinism ledger (results/LEDGER.json)
        [--ledger PATH] [--label L]
    help                     show this text

Exit codes: 0 success / 1 error / 2 divergence. `audit diff`, `audit
bisect`, `audit ledger --check`, and `trace --expect-root` report
divergences on stdout and exit 0 unless --fail-on-divergence is given,
which maps any detected divergence to exit code 2.
";

/// A command failure plus the process exit code it maps to: ordinary
/// errors exit 1, detected determinism divergences (under
/// `--fail-on-divergence`) exit 2, so scripts can tell "the runs
/// differ" from "the tool broke".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An ordinary failure (bad arguments, I/O, invalid config): exit 1.
    Error(String),
    /// A detected divergence escalated by `--fail-on-divergence`: exit 2.
    Divergence(String),
}

impl CliError {
    /// The human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            CliError::Error(msg) | CliError::Divergence(msg) => msg,
        }
    }

    /// The process exit code this failure maps to.
    #[must_use]
    pub const fn exit_code(&self) -> u8 {
        match self {
            CliError::Error(_) => 1,
            CliError::Divergence(_) => 2,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Error(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Error(msg.to_string())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a [`CliError`] carrying a human-readable message on any
/// failure (unknown command, bad arguments, I/O, invalid config) and
/// the exit code it maps to (1 for errors, 2 for divergences detected
/// under `--fail-on-divergence`).
pub fn dispatch<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    match args.positional(0) {
        None | Some("help") => {
            write!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        Some("run") => cmd_run(args, out).map_err(CliError::Error),
        Some("assess") => cmd_assess(args, out).map_err(CliError::Error),
        Some("init-config") => cmd_init_config(args, out).map_err(CliError::Error),
        Some("sweep") => cmd_sweep(args, out).map_err(CliError::Error),
        Some("resume") => cmd_resume(args, out).map_err(CliError::Error),
        Some("report") => cmd_report(args, out).map_err(CliError::Error),
        Some("trace") => cmd_trace(args, out),
        Some("profile") => cmd_profile(args, out).map_err(CliError::Error),
        Some("watch") => cmd_watch(args, out).map_err(CliError::Error),
        Some("cache") => cmd_cache(args, out).map_err(CliError::Error),
        Some("serve") => crate::serve_cmd::cmd_serve(args, out).map_err(CliError::Error),
        Some("bench") => crate::serve_cmd::cmd_bench(args, out).map_err(CliError::Error),
        Some("calc") => cmd_calc(args, out).map_err(CliError::Error),
        Some("audit") => crate::audit_cmd::cmd_audit(args, out),
        Some(other) => Err(format!("unknown command `{other}`; try `tempriv help`").into()),
    }
}

pub(crate) fn io_err(e: std::io::Error) -> String {
    format!("I/O error: {e}")
}

fn cmd_run<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args
        .positional(1)
        .ok_or("usage: tempriv run <config.json> [--out outcome.json] [--seed N]")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut cfg: ExperimentConfig =
        serde_json::from_str(&raw).map_err(|e| format!("invalid config {path}: {e}"))?;
    if let Some(seed) = args.option("seed") {
        cfg.seed = seed
            .parse()
            .map_err(|_| format!("invalid --seed `{seed}`"))?;
    }
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let shards: u32 = args.option_as("shards", 1)?;
    let workers: usize = args.option_as("workers", 1)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be positive".into());
    }
    let started = std::time::Instant::now();
    let outcome = if shards > 1 {
        sim.run_sharded(shards, workers)
    } else {
        sim.run()
    };
    let wall = started.elapsed().as_secs_f64();

    writeln!(out, "experiment: {path} (seed {})", cfg.seed).map_err(io_err)?;
    writeln!(
        out,
        "delivered {}/{} packets; {} preemptions, {} drops, {} link losses",
        outcome.total_delivered(),
        outcome.flows.iter().map(|f| f.created).sum::<u64>(),
        outcome.total_preemptions(),
        outcome.total_drops(),
        outcome.link_losses,
    )
    .map_err(io_err)?;
    let report = PrivacyAssessment::assess(&sim, &outcome);
    writeln!(
        out,
        "\n{:<6} {:>5} {:>10} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "flow", "hops", "latency", "p95", "baseline", "adaptive", "route-aware", "oracle"
    )
    .map_err(io_err)?;
    for f in &report.flows {
        writeln!(
            out,
            "{:<6} {:>5} {:>10.1} {:>9.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            f.flow.to_string(),
            f.hops,
            f.mean_latency,
            f.latency_p95.unwrap_or(f64::NAN),
            f.baseline_mse,
            f.adaptive_mse,
            f.route_aware_mse,
            f.oracle_mse,
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "\nradio energy per delivered packet: {:.1}",
        report.energy_per_delivered
    )
    .map_err(io_err)?;
    if !outcome.shards.is_empty() {
        write!(out, "{}", shard_table(&outcome, wall)).map_err(io_err)?;
    }
    if let Some(dump) = args.option("out") {
        let json = serde_json::to_string_pretty(&outcome)
            .map_err(|e| format!("serialize outcome: {e}"))?;
        std::fs::write(dump, json).map_err(|e| format!("cannot write {dump}: {e}"))?;
        writeln!(out, "\n[outcome written to {dump}]").map_err(io_err)?;
    }
    Ok(())
}

/// Renders the per-shard events/sec table of a sharded outcome:
/// partition size, events handled (with the shard's share of the
/// total), cross-shard handoffs shipped, peak future-event-set size,
/// and events per wall second attributed to the shard.
fn shard_table(outcome: &SimOutcome, wall_secs: f64) -> String {
    use std::fmt::Write as _;
    let total = outcome.events.max(1);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\n{:<6} {:>9} {:>12} {:>7} {:>10} {:>9} {:>12}",
        "shard", "nodes", "events", "share", "handoffs", "peak FES", "events/sec"
    );
    for st in &outcome.shards {
        let rate = if wall_secs > 0.0 {
            st.events as f64 / wall_secs
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "{:<6} {:>9} {:>12} {:>6.1}% {:>10} {:>9} {:>12.0}",
            st.shard,
            st.nodes,
            st.events,
            100.0 * st.events as f64 / total as f64,
            st.handoffs_out,
            st.peak_fes,
            rate,
        );
    }
    let _ = writeln!(
        s,
        "total  {:>9} {:>12} {:>6.0}% {:>10} {:>9} {:>12.0}",
        outcome.nodes.len(),
        outcome.events,
        100.0,
        outcome.shards.iter().map(|s| s.handoffs_out).sum::<u64>(),
        outcome.peak_fes,
        if wall_secs > 0.0 {
            outcome.events as f64 / wall_secs
        } else {
            0.0
        },
    );
    s
}

fn cmd_assess<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args
        .positional(1)
        .ok_or("usage: tempriv assess <config.json> [--replications N]")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cfg: ExperimentConfig =
        serde_json::from_str(&raw).map_err(|e| format!("invalid config {path}: {e}"))?;
    let replications: u32 = args.option_as("replications", 5)?;
    if replications == 0 {
        return Err("--replications must be positive".into());
    }
    // Validate once up front so workers cannot panic on a bad config.
    cfg.build().map_err(|e| e.to_string())?;
    let assessments = replicate(cfg.seed, replications, |seed| {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        let sim = cfg.build().expect("validated config");
        let outcome = sim.run();
        PrivacyAssessment::assess(&sim, &outcome)
    });
    writeln!(
        out,
        "{path}: {} replications (seeds derived from base {} via splitmix64)",
        replications, cfg.seed,
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "\n{:<6} {:>22} {:>22} {:>22}",
        "flow", "baseline MSE", "route-aware MSE", "latency"
    )
    .map_err(io_err)?;
    let flows = assessments[0].flows.len();
    for i in 0..flows {
        let stat = |f: &dyn Fn(&PrivacyAssessment) -> f64| {
            let values: Vec<f64> = assessments.iter().map(f).collect();
            ReplicatedMetric::from_values(&values)
        };
        let baseline = stat(&|a| a.flows[i].baseline_mse);
        let route = stat(&|a| a.flows[i].route_aware_mse);
        let latency = stat(&|a| a.flows[i].mean_latency);
        writeln!(
            out,
            "f{:<5} {:>12.0} ± {:<7.0} {:>12.0} ± {:<7.0} {:>12.1} ± {:<7.1}",
            i, baseline.mean, baseline.ci95, route.mean, route.ci95, latency.mean, latency.ci95
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn cmd_init_config<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args
        .positional(1)
        .ok_or("usage: tempriv init-config <path>")?;
    let cfg = ExperimentConfig::paper_default();
    let json = serde_json::to_string_pretty(&cfg).map_err(|e| format!("serialize config: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    writeln!(out, "paper-default config written to {path}").map_err(io_err)?;
    Ok(())
}

/// An active telemetry collection: the sink shared with the runtime and
/// the path the aggregated export will be written to.
type ActiveTelemetry = (Arc<TelemetrySink>, String);

/// Builds the experiment runtime from CLI flags. `fallback_cache_dir` and
/// `fallback_manifest` come from a manifest being resumed; explicit flags
/// win over them. When `--telemetry PATH` is given, a sink is wired into
/// the runtime and returned for export after the run.
fn build_runtime(
    args: &Args,
    fallback_cache_dir: Option<&str>,
    fallback_manifest: Option<&str>,
) -> Result<(Runtime, Option<ActiveTelemetry>), String> {
    let mut builder = Runtime::builder();
    if let Some(raw) = args.option("workers") {
        let workers: usize = raw
            .parse()
            .map_err(|_| format!("invalid value for --workers: `{raw}`"))?;
        if workers == 0 {
            return Err("--workers must be positive".into());
        }
        builder = builder.workers(workers);
    }
    if let Some(dir) = args.option("cache-dir").or(fallback_cache_dir) {
        builder = builder.cache_dir(dir);
    }
    if let Some(path) = args.option("manifest").or(fallback_manifest) {
        builder = builder.manifest_path(path);
    }
    if !args.flag("quiet") {
        builder = builder.observer(Arc::new(StderrReporter::new()));
    }
    let telemetry = args.option("telemetry").map(|path| {
        let sink = Arc::new(TelemetrySink::new());
        (sink, path.to_string())
    });
    if let Some((sink, _)) = &telemetry {
        builder = builder.telemetry_sink(Arc::clone(sink));
    }
    if let Some(raw) = args.option("trace-capacity") {
        let capacity: usize = raw
            .parse()
            .map_err(|_| format!("invalid value for --trace-capacity: `{raw}`"))?;
        if capacity == 0 {
            return Err("--trace-capacity must be positive".into());
        }
        let Some((sink, _)) = &telemetry else {
            return Err("--trace-capacity requires --telemetry".into());
        };
        sink.set_trace_capacity(capacity);
    }
    if let Some(raw) = args.option("privacy-interval") {
        let interval: usize = raw
            .parse()
            .map_err(|_| format!("invalid value for --privacy-interval: `{raw}`"))?;
        if interval == 0 {
            return Err("--privacy-interval must be positive".into());
        }
        let Some((sink, _)) = &telemetry else {
            return Err("--privacy-interval requires --telemetry".into());
        };
        sink.set_privacy_interval(interval);
    }
    if let Some(raw) = args.option("digest-window") {
        let window: usize = raw
            .parse()
            .map_err(|_| format!("invalid value for --digest-window: `{raw}`"))?;
        if window == 0 {
            return Err("--digest-window must be positive".into());
        }
        let Some((sink, _)) = &telemetry else {
            return Err("--digest-window requires --telemetry".into());
        };
        sink.set_digest_window(window);
    }
    if args.flag("mem-profile") {
        let Some((sink, _)) = &telemetry else {
            return Err("--mem-profile requires --telemetry".into());
        };
        sink.set_mem_profile(true);
        // The counting allocator is process-global; once any run wants
        // attribution it stays on (workers may still be counting).
        tempriv_telemetry::memprof::set_enabled(true);
    }
    Ok((builder.build()?, telemetry))
}

/// Drains the telemetry sink of a finished instrumented run, aggregates
/// it, and writes the export JSON. The summary goes to stderr so stdout
/// stays byte-identical with and without `--telemetry`.
fn write_telemetry_export(
    experiment: &str,
    sink: &TelemetrySink,
    path: &str,
    quiet: bool,
) -> Result<(), String> {
    let export = TelemetryExport::collect(
        experiment,
        &sink.take_all(),
        &sink.take_all_privacy(),
        &sink.take_all_mem(),
    )?;
    std::fs::write(path, export.to_canonical_json())
        .map_err(|e| format!("cannot write telemetry export {path}: {e}"))?;
    if !quiet {
        eprint!("{}", export.summary_text());
        eprintln!("[telemetry] export written to {path}");
    }
    Ok(())
}

/// Runs the named sweep experiment on `runtime` and prints its rows:
/// `fig2` keeps the classic aligned table, everything else prints one
/// JSON row per line. The names match the `experiment` field written to
/// run-manifest headers, so `resume` dispatches through here too.
fn run_experiment<W: Write>(
    experiment: &str,
    params: &SweepParams,
    runtime: &Runtime,
    out: &mut W,
) -> Result<(), String> {
    match experiment {
        "fig2" => {
            writeln!(
                out,
                "{:>9} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
                "1/lambda",
                "mse_none",
                "mse_unlim",
                "mse_rcad",
                "lat_none",
                "lat_unlim",
                "lat_rcad"
            )
            .map_err(io_err)?;
            for row in fig2_sweep_with(params, runtime) {
                writeln!(
                    out,
                    "{:>9} {:>12.1} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
                    row.inv_lambda,
                    row.no_delay.mse,
                    row.unlimited.mse,
                    row.rcad.mse,
                    row.no_delay.mean_latency,
                    row.unlimited.mean_latency,
                    row.rcad.mean_latency,
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        "fig3" => print_json_rows(out, &fig3_sweep_with(params, runtime)),
        "adversary-panel" => print_json_rows(out, &adversary_panel_sweep_with(params, runtime)),
        "victim-ablation" => print_json_rows(out, &victim_ablation_sweep_with(params, runtime)),
        "delay-ablation" => print_json_rows(out, &delay_ablation_sweep_with(params, runtime)),
        "mix-comparison" => print_json_rows(out, &mix_comparison_sweep_with(params, runtime)),
        other => Err(format!(
            "unknown experiment `{other}`; expected fig2, fig3, adversary-panel, \
             victim-ablation, delay-ablation, or mix-comparison"
        )),
    }
}

fn print_json_rows<W: Write, T: serde::Serialize>(out: &mut W, rows: &[T]) -> Result<(), String> {
    for row in rows {
        let line = serde_json::to_string(row).map_err(|e| format!("serialize row: {e}"))?;
        writeln!(out, "{line}").map_err(io_err)?;
    }
    Ok(())
}

fn cmd_sweep<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let mut params = SweepParams::paper_default();
    params.inv_lambdas = args.option_list("points", params.inv_lambdas)?;
    params.packets_per_source = args.option_as("packets", params.packets_per_source)?;
    params.seed = args.option_as("seed", params.seed)?;
    if params.inv_lambdas.is_empty() {
        return Err("--points must name at least one inter-arrival time".into());
    }
    let experiment = args.option("experiment").unwrap_or("fig2").to_string();
    let (runtime, telemetry) = build_runtime(args, None, None)?;
    run_experiment(&experiment, &params, &runtime, out)?;
    if let Some((sink, path)) = telemetry {
        write_telemetry_export(&experiment, &sink, &path, args.flag("quiet"))?;
    }
    Ok(())
}

fn cmd_resume<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args
        .positional(1)
        .ok_or("usage: tempriv resume <run.jsonl> [--workers N] [--quiet]")?;
    let manifest = ManifestReader::read(path)?;
    let params: SweepParams = serde_json::from_str(&manifest.header.params_json)
        .map_err(|e| format!("manifest {path}: cannot parse sweep params: {e}"))?;
    writeln!(
        out,
        "resuming {}: {}/{} jobs recorded",
        manifest.header.experiment,
        manifest.records.len(),
        manifest.header.jobs
    )
    .map_err(io_err)?;
    if manifest.header.cache_dir.is_none() && args.option("cache-dir").is_none() {
        writeln!(
            out,
            "note: the run had no cache directory, so completed jobs will be re-simulated"
        )
        .map_err(io_err)?;
    }
    // Reattach the recorded cache and rewrite the same manifest; the
    // cache serves every job the interrupted run finished.
    let (runtime, telemetry) =
        build_runtime(args, manifest.header.cache_dir.as_deref(), Some(path))?;
    run_experiment(&manifest.header.experiment, &params, &runtime, out)?;
    if let Some((sink, export_path)) = telemetry {
        write_telemetry_export(
            &manifest.header.experiment,
            &sink,
            &export_path,
            args.flag("quiet"),
        )?;
    }
    Ok(())
}

/// Per-job telemetry blobs of one manifest, in job order.
fn manifest_blobs(manifest: &ManifestReader) -> Vec<Option<String>> {
    let mut blobs: Vec<Option<String>> = vec![None; manifest.header.jobs];
    for record in &manifest.records {
        if let Some(slot) = blobs.get_mut(record.index) {
            slot.clone_from(&record.telemetry);
        }
    }
    blobs
}

/// Per-job streaming-privacy blobs of one manifest, in job order.
fn manifest_privacy_blobs(manifest: &ManifestReader) -> Vec<Option<String>> {
    let mut blobs: Vec<Option<String>> = vec![None; manifest.header.jobs];
    for record in &manifest.records {
        if let Some(slot) = blobs.get_mut(record.index) {
            slot.clone_from(&record.privacy);
        }
    }
    blobs
}

/// Per-job allocation-ledger blobs of one manifest, in job order.
fn manifest_mem_blobs(manifest: &ManifestReader) -> Vec<Option<String>> {
    let mut blobs: Vec<Option<String>> = vec![None; manifest.header.jobs];
    for record in &manifest.records {
        if let Some(slot) = blobs.get_mut(record.index) {
            slot.clone_from(&record.mem);
        }
    }
    blobs
}

/// `tempriv report <run.jsonl|dir>`: aggregate the per-job telemetry
/// blobs journaled by one manifest — or by every `*.jsonl` manifest in a
/// directory, concatenated in file-name order — and render them as text,
/// JSON, or Prometheus exposition format.
fn cmd_report<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    if let Some(dir) = args.option("bench") {
        let committed = args
            .option("trajectory")
            .unwrap_or("results/BENCH_core.json");
        return report_bench(dir, committed, out);
    }
    let path = args
        .positional(1)
        .ok_or("usage: tempriv report <run.jsonl|dir> [--format text|json|prometheus] | tempriv report --bench <dir>")?;
    let (experiment, blobs, privacy_blobs, mem_blobs, completed) =
        if std::path::Path::new(path).is_dir() {
            let entries = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory {path}: {e}"))?;
            let mut manifests: Vec<std::path::PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
                .collect();
            manifests.sort();
            if manifests.is_empty() {
                writeln!(
                    out,
                    "no completed jobs: {path} contains no .jsonl manifests \
                 (run a sweep with --manifest to journal one)"
                )
                .map_err(io_err)?;
                return Ok(());
            }
            let mut experiments: Vec<String> = Vec::new();
            let mut blobs = Vec::new();
            let mut privacy_blobs = Vec::new();
            let mut mem_blobs = Vec::new();
            let mut completed = 0usize;
            for manifest_path in &manifests {
                let manifest = ManifestReader::read(manifest_path)?;
                completed += manifest.records.len();
                blobs.extend(manifest_blobs(&manifest));
                privacy_blobs.extend(manifest_privacy_blobs(&manifest));
                mem_blobs.extend(manifest_mem_blobs(&manifest));
                if !experiments.contains(&manifest.header.experiment) {
                    experiments.push(manifest.header.experiment.clone());
                }
            }
            (
                experiments.join("+"),
                blobs,
                privacy_blobs,
                mem_blobs,
                completed,
            )
        } else {
            let manifest = ManifestReader::read(path)?;
            let blobs = manifest_blobs(&manifest);
            let privacy_blobs = manifest_privacy_blobs(&manifest);
            let mem_blobs = manifest_mem_blobs(&manifest);
            let completed = manifest.records.len();
            (
                manifest.header.experiment,
                blobs,
                privacy_blobs,
                mem_blobs,
                completed,
            )
        };
    if completed == 0 {
        // An interrupted (or never-started) run: the manifest header is
        // there but no job finished yet — say so instead of rendering a
        // bare all-zero report.
        writeln!(
            out,
            "no completed jobs in {path}: the manifest records no finished \
             work yet (finish the sweep, or `tempriv resume` it)"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let export = TelemetryExport::collect(&experiment, &blobs, &privacy_blobs, &mem_blobs)?;
    match args.option("format").unwrap_or("text") {
        "text" => {
            write!(out, "{}", export.summary_text()).map_err(io_err)?;
            if export.instrumented_jobs == 0 {
                writeln!(
                    out,
                    "note: no job attached telemetry (run the sweep with --telemetry \
                     and --manifest to journal it)"
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        "json" => writeln!(out, "{}", export.to_canonical_json()).map_err(io_err),
        "prometheus" => write!(out, "{}", export.metrics.to_prometheus()).map_err(io_err),
        other => Err(format!(
            "unknown --format `{other}`; expected text, json, or prometheus"
        )),
    }
}

/// `tempriv report --bench <dir>`: one summary table across every
/// committed `BENCH_*.json` benchmark report — headline metric, the
/// instrumentation-overhead figure where the bench measures one, and
/// pass/fail against the CI gate where one is enforced.
fn report_bench<W: Write>(dir: &str, committed_core: &str, out: &mut W) -> Result<(), String> {
    use serde::value::Value;

    // Overhead budgets the CI workflow enforces (percent over the
    // metrics probe); benches without a gate report their figure only.
    const GATES: &[(&str, f64)] = &[("audit", 5.0), ("mem", 5.0)];

    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read directory {dir}: {e}"))?;
    let mut files: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        writeln!(out, "no BENCH_*.json reports in {dir}").map_err(io_err)?;
        return Ok(());
    }

    writeln!(
        out,
        "{:<8} {:<44} {:>10} {:>6} {:>6}  {:<24}",
        "bench", "headline", "overhead", "gate", "status", "trajectory"
    )
    .map_err(io_err)?;
    let mut failures = 0usize;
    for path in &files {
        let name = path
            .file_stem()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .trim_start_matches("BENCH_")
            .to_string();
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report: Value = serde_json::from_str(&raw)
            .map_err(|e| format!("malformed bench report {}: {e}", path.display()))?;

        // The overhead-style benches all export one `*_overhead_pct`.
        let overhead = match &report {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k.ends_with("_overhead_pct"))
                .and_then(|(_, v)| v.as_f64()),
            _ => None,
        };
        let headline = bench_headline(&name, &report);
        let gate = GATES
            .iter()
            .find(|(g, _)| *g == name.as_str())
            .map(|(_, pct)| *pct);
        let (gate_col, status) = match (gate, overhead) {
            (Some(budget), Some(pct)) => {
                let ok = pct < budget;
                failures += usize::from(!ok);
                (format!("<{budget:.0}%"), if ok { "PASS" } else { "FAIL" })
            }
            _ => ("-".to_string(), "-"),
        };
        let overhead_col = overhead.map_or_else(|| "-".to_string(), |pct| format!("{pct:+.2}%"));
        let trajectory = if name == "core" {
            core_trajectory(&report, committed_core)
        } else {
            "-".to_string()
        };
        writeln!(
            out,
            "{name:<8} {headline:<44} {overhead_col:>10} {gate_col:>6} {status:>6}  {trajectory:<24}"
        )
        .map_err(io_err)?;
        if name == "core" {
            if let Some(table) = core_shard_table(&report) {
                write!(out, "{table}").map_err(io_err)?;
            }
        }
    }
    if failures > 0 {
        writeln!(out, "{failures} gate(s) FAILED").map_err(io_err)?;
    } else {
        writeln!(out, "all gates pass").map_err(io_err)?;
    }
    Ok(())
}

/// Events/sec trajectory of a fresh core scale report against the
/// committed `BENCH_core.json`: one signed percentage per shared node
/// count (`probes_off` mode, ordered by node count), so speedups and
/// regressions vs the last committed baseline are visible in the same
/// table that renders the report itself.
fn core_trajectory(report: &serde::value::Value, committed_path: &str) -> String {
    use serde::value::Value;
    let Ok(raw) = std::fs::read_to_string(committed_path) else {
        return format!("no baseline at {committed_path}");
    };
    let Ok(committed) = serde_json::from_str::<Value>(&raw) else {
        return format!("bad baseline {committed_path}");
    };
    let probes_off = |point: &Value| -> Option<f64> {
        match point.get("modes") {
            Some(Value::Seq(modes)) => modes
                .iter()
                .find(|m| matches!(m.get("mode"), Some(Value::Str(mode)) if mode == "probes_off"))
                .and_then(|m| m.get("events_per_sec"))
                .and_then(Value::as_f64),
            _ => None,
        }
    };
    let points_of = |report: &Value| -> Vec<(u64, f64)> {
        match report.get("points") {
            Some(Value::Seq(points)) => points
                .iter()
                .filter_map(|p| {
                    let nodes = p.get("nodes").and_then(Value::as_u64)?;
                    Some((nodes, probes_off(p)?))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let fresh = points_of(report);
    let base = points_of(&committed);
    let mut deltas: Vec<String> = fresh
        .iter()
        .filter_map(|&(nodes, rate)| {
            let (_, committed_rate) = base.iter().find(|&&(n, _)| n == nodes)?;
            Some(format!(
                "{}n{:+.0}%",
                nodes,
                (rate / committed_rate - 1.0) * 100.0
            ))
        })
        .collect();
    if deltas.is_empty() {
        return "no shared points".to_string();
    }
    deltas.push("ev/s vs committed".to_string());
    deltas.join(" ")
}

/// Per-shard events/sec table for a core scale report whose points
/// carry `shard_events` (captured by `--bench scale --shards N`): each
/// shard's event count over the sharded timing mode's wall time. Empty
/// (None) for serial-only reports.
fn core_shard_table(report: &serde::value::Value) -> Option<String> {
    use serde::value::Value;
    use std::fmt::Write as _;
    let Some(Value::Seq(points)) = report.get("points") else {
        return None;
    };
    let mut s = String::new();
    for point in points {
        let shard_events: Vec<u64> = match point.get("shard_events") {
            Some(Value::Seq(events)) => events.iter().filter_map(Value::as_u64).collect(),
            _ => continue,
        };
        if shard_events.is_empty() {
            continue;
        }
        let Some(nodes) = point.get("nodes").and_then(Value::as_u64) else {
            continue;
        };
        let sharded_secs = match point.get("modes") {
            Some(Value::Seq(modes)) => modes
                .iter()
                .find(|m| matches!(m.get("mode"), Some(Value::Str(mode)) if mode == "sharded"))
                .and_then(|m| m.get("secs"))
                .and_then(Value::as_f64),
            _ => None,
        };
        if s.is_empty() {
            let _ = writeln!(s, "  core shards (per-shard events/sec, sharded mode):");
        }
        let rates: Vec<String> = shard_events
            .iter()
            .enumerate()
            .map(|(i, &events)| match sharded_secs {
                Some(secs) if secs > 0.0 => {
                    format!("s{i} {:.0}", events as f64 / secs)
                }
                _ => format!("s{i} {events}ev"),
            })
            .collect();
        let _ = writeln!(s, "  {nodes:>9} nodes: {}", rates.join("  "));
    }
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// One-line headline metric for a bench report, by report shape.
fn bench_headline(name: &str, report: &serde::value::Value) -> String {
    use serde::value::Value;
    let f = |key: &str| report.get(key).and_then(Value::as_f64);
    match name {
        "serve" => match (f("throughput_rps"), f("cache_hit_rate")) {
            (Some(rps), Some(hit)) => format!("{rps:.0} rps, cache hit rate {hit:.2}"),
            _ => "-".to_string(),
        },
        "core" => {
            // Scale bench: per-point speedups vs the committed baseline.
            let best = match report.get("points") {
                Some(Value::Seq(points)) => points
                    .iter()
                    .filter_map(|p| p.get("speedup").and_then(Value::as_f64))
                    .fold(0.0f64, f64::max),
                _ => 0.0,
            };
            if best > 0.0 {
                format!("engine speedup x{best:.2} (best scale point)")
            } else {
                "-".to_string()
            }
        }
        "mem" => match (f("allocs_per_delivered"), f("peak_live_bytes")) {
            (Some(app), Some(peak)) => {
                format!("{app:.1} allocs/packet, peak live {peak:.0} B")
            }
            _ => "-".to_string(),
        },
        _ => match &report {
            // figure-1 overhead benches: slowdown of the instrumented
            // mode over the metrics probe.
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k.ends_with("_over_metrics"))
                .and_then(|(k, v)| {
                    v.as_f64()
                        .map(|x| format!("{} x{x:.3}", k.trim_end_matches("_over_metrics")))
                })
                .unwrap_or_else(|| "-".to_string()),
            _ => "-".to_string(),
        },
    }
}

/// Parses optional `--key` as `T`, distinguishing "absent" from "bad".
pub(crate) fn optional<T: std::str::FromStr>(args: &Args, key: &str) -> Result<Option<T>, String> {
    args.option(key)
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("invalid value for --{key}: `{raw}`"))
        })
        .transpose()
}

/// One spectrum line of the `trace` text summary: sample count plus
/// p50/p90/p99 quantiles.
fn spectrum_line(label: &str, h: &tempriv_telemetry::HistogramSample) -> String {
    let q = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}"));
    format!(
        "{label}: n={} p50={} p90={} p99={}",
        h.total,
        q(h.p50()),
        q(h.p90()),
        q(h.p99()),
    )
}

/// `tempriv trace [config.json]`: run one experiment under the flight
/// recorder and dump the packet-lifecycle recording as a text summary,
/// JSONL events, or a Chrome `trace_event` file. With `--expect-root`
/// the run is additionally folded through a [`DigestProbe`] and its run
/// root checked against the given hex digest — a mismatch reports the
/// divergence and, under `--fail-on-divergence`, exits with code 2.
fn cmd_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let mut cfg = match args.positional(1) {
        Some(path) => {
            let raw =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str::<ExperimentConfig>(&raw)
                .map_err(|e| format!("invalid config {path}: {e}"))?
        }
        None => ExperimentConfig::paper_default(),
    };
    cfg.seed = args.option_as("seed", cfg.seed)?;
    cfg.packets_per_source = args.option_as("packets", cfg.packets_per_source)?;
    let capacity: usize = args.option_as("capacity", DEFAULT_FLIGHT_CAPACITY)?;
    if capacity == 0 {
        return Err("--capacity must be positive".into());
    }
    let digest_window: usize = args.option_as("digest-window", DEFAULT_DIGEST_WINDOW)?;
    if digest_window == 0 {
        return Err("--digest-window must be positive".into());
    }
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let mut recorder = FlightRecorder::with_capacity(capacity);
    let mut digest = args
        .option("expect-root")
        .is_some()
        .then(|| DigestProbe::new(digest_window));
    let outcome = match digest.as_mut() {
        Some(probe) => sim.run_probed(&mut (&mut recorder, probe)),
        None => sim.run_probed(&mut recorder),
    };
    let log = recorder.finish(outcome.end_time).filtered(
        optional(args, "flow")?,
        optional(args, "node")?,
        optional(args, "packet")?,
    );

    let body = match args.option("format").unwrap_or("text") {
        "text" => {
            let lineages = log.lineages();
            let count = |o: LineageOutcome| lineages.iter().filter(|l| l.outcome == o).count();
            let preemptions: u32 = lineages.iter().map(|l| l.preemptions).sum();
            let spectra = log.latency_spectra(40);
            format!(
                "flight recording: {} events retained, {} evicted \
                 (capacity {}), end time {:.1}\n\
                 packets: {} total; {} delivered, {} dropped, {} in flight; \
                 {} preemptions\n{}\n{}\n",
                log.events.len(),
                log.evicted,
                log.capacity,
                log.end_time,
                lineages.len(),
                count(LineageOutcome::Delivered),
                count(LineageOutcome::Dropped),
                count(LineageOutcome::InFlight),
                preemptions,
                spectrum_line("per-hop residence", &spectra.per_hop),
                spectrum_line("end-to-end latency", &spectra.end_to_end),
            )
        }
        "jsonl" => log.to_jsonl(),
        "chrome" => log.to_chrome_trace(),
        other => Err(format!(
            "unknown --format `{other}`; expected text, jsonl, or chrome"
        ))?,
    };
    match args.option("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "[trace written to {path}]").map_err(io_err)?;
        }
        None => write!(out, "{body}").map_err(io_err)?,
    }
    if let Some(expected) = args.option("expect-root") {
        let run = digest
            .as_ref()
            .expect("digest probe exists when --expect-root is given")
            .finish();
        if run.root == expected {
            writeln!(
                out,
                "audit: root={} matches --expect-root ({} events)",
                run.root, run.events
            )
            .map_err(io_err)?;
        } else {
            writeln!(
                out,
                "audit: root={} DIVERGED from --expect-root {expected} ({} events); \
                 bisect with `tempriv audit bisect`",
                run.root, run.events
            )
            .map_err(io_err)?;
            if args.flag("fail-on-divergence") {
                return Err(CliError::Divergence(format!(
                    "run root {} does not match expected {expected}",
                    run.root
                )));
            }
        }
    }
    Ok(())
}

/// `tempriv profile`: run a sweep on a single-worker runtime with the
/// span tracer and engine self-profiler on, then print the per-phase
/// wall-time attribution merged across every scenario. The sweep's own
/// rows are discarded — profile's stdout is the phase table (or the
/// merged breakdown as JSON with `--json`). With `--out PATH` the full
/// cross-layer Chrome trace (job/scenario spans, engine phase bands,
/// and packet residences) is written alongside.
fn cmd_profile<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let mut params = SweepParams::smoke();
    params.inv_lambdas = args.option_list("points", params.inv_lambdas)?;
    params.packets_per_source = args.option_as("packets", params.packets_per_source)?;
    params.seed = args.option_as("seed", params.seed)?;
    if params.inv_lambdas.is_empty() {
        return Err("--points must name at least one inter-arrival time".into());
    }
    let experiment = args.option("experiment").unwrap_or("fig2").to_string();
    let batch: u32 = args.option_as("batch", DEFAULT_PHASE_BATCH)?;
    if batch == 0 {
        return Err("--batch must be positive".into());
    }

    let sink = Arc::new(TelemetrySink::new());
    sink.set_span_batch(batch as usize);
    // Phase attribution and allocation attribution share the same
    // switch hooks, so the profiler always carries the memory ledger.
    sink.set_mem_profile(true);
    memprof::set_enabled(true);
    let root = TraceCtx::root(params.seed, "profile");
    sink.set_root_ctx(root.trace_id, root.span_id);
    let chrome_out = args.option("out");
    if chrome_out.is_some() {
        // The exported timeline carries packet residences alongside the
        // spans and phase bands.
        sink.set_trace_capacity(1 << 14);
    }
    // One worker: profiling shares the core with the simulation, so a
    // fan-out would have jobs contending for cycles and polluting the
    // attribution.
    let runtime = Runtime::builder()
        .workers(1)
        .telemetry_sink(Arc::clone(&sink))
        .build()?;
    let mut rows = Vec::new();
    run_experiment(&experiment, &params, &runtime, &mut rows)?;

    let mut jobs: Vec<JobSpans> = Vec::new();
    for blob in sink.take_all_spans().iter().flatten() {
        jobs.push(serde_json::from_str(blob).map_err(|e| format!("malformed span blob: {e}"))?);
    }
    let mut mem_jobs: Vec<JobMem> = Vec::new();
    for blob in sink.take_all_mem().iter().flatten() {
        mem_jobs.push(serde_json::from_str(blob).map_err(|e| format!("malformed mem blob: {e}"))?);
    }
    let mut merged: Option<PhaseBreakdown> = None;
    let mut scenarios = 0usize;
    for job in &jobs {
        for scenario in &job.profiles {
            scenarios += 1;
            match &mut merged {
                Some(acc) => acc.merge(&scenario.profile),
                None => merged = Some(scenario.profile.clone()),
            }
        }
    }
    let merged = merged.ok_or("no phase profiles recorded (empty sweep?)")?;

    if args.flag("json") {
        let json =
            serde_json::to_string(&merged).map_err(|e| format!("serialize breakdown: {e}"))?;
        writeln!(out, "{json}").map_err(io_err)?;
    } else {
        writeln!(
            out,
            "profile {experiment}: {} jobs, {scenarios} scenarios, batch {batch}, seed {}",
            jobs.len(),
            params.seed
        )
        .map_err(io_err)?;
        write!(out, "{}", merged.table()).map_err(io_err)?;
        let mut mem_ledger = MemBreakdown::empty();
        for job in &mem_jobs {
            for scenario in &job.scenarios {
                mem_ledger.merge(&scenario.ledger);
            }
        }
        if !mem_ledger.is_empty() {
            writeln!(out, "memory (allocations by phase):").map_err(io_err)?;
            write!(out, "{}", mem_ledger.table()).map_err(io_err)?;
        }
        if let Some(rss) = memprof::peak_rss_bytes() {
            writeln!(out, "peak RSS (VmHWM): {rss} bytes").map_err(io_err)?;
        }
    }

    if let Some(path) = chrome_out {
        let spans: Vec<SpanRecord> = jobs.iter().flat_map(|j| j.spans.clone()).collect();
        let mut events = chrome_span_events(&spans, 0);
        let mut phase_tid = 0u64;
        for (job_idx, job) in jobs.iter().enumerate() {
            for (i, scenario) in job.profiles.iter().enumerate() {
                // Anchor each phase band at its scenario span (index 0
                // is the job span, scenarios follow in order).
                let anchor = job.spans.get(i + 1).map_or(0, |s| s.start_us);
                events.extend(scenario.profile.chrome_phase_events(
                    &scenario.label,
                    anchor,
                    phase_tid,
                ));
                // Live-bytes counter track riding the same thread lane
                // as the scenario's phase bands.
                if let Some(smem) = mem_jobs.get(job_idx).and_then(|m| m.scenarios.get(i)) {
                    events.extend(smem.ledger.chrome_counter_events(
                        anchor,
                        phase_tid,
                        &scenario.profile,
                    ));
                }
                phase_tid += 1;
            }
        }
        for blob in sink.take_all_traces().iter().flatten() {
            let trace: JobTrace =
                serde_json::from_str(blob).map_err(|e| format!("malformed trace blob: {e}"))?;
            for scenario in &trace.scenarios {
                events.extend(scenario.log.chrome_trace_events());
            }
        }
        std::fs::write(path, wrap_chrome_events(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "[profile trace written to {path}]").map_err(io_err)?;
    }
    Ok(())
}

/// Renders one frame of the privacy view: delivery/drop totals plus a
/// per-flow table of packets, empirical MI, the eq. 4 mean bound, the
/// privacy margin, and the adversary's running MSE (`-` where the run
/// carries no analytic envelope).
fn watch_frame(deliveries: u64, drops: u64, summaries: &[FlowPrivacySummary]) -> String {
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"));
    let mut s = format!(
        "deliveries {deliveries}, drops {drops}\n\
         {:<6} {:>8} {:>10} {:>10} {:>12} {:>14}\n",
        "flow", "packets", "mi_nats", "bound", "margin", "adv_mse"
    );
    for f in summaries {
        s.push_str(&format!(
            "f{:<5} {:>8} {:>10.4} {:>10} {:>12} {:>14}\n",
            f.flow,
            f.packets,
            f.mi_nats,
            opt(f.btq_mean_bound_nats),
            opt(f.margin_nats),
            opt(f.mse),
        ));
    }
    s
}

/// Wraps a [`PrivacyProbe`] for the one-shot `watch` run: every hook
/// forwards to the inner probe, and deliveries additionally refresh a
/// throttled live view on stderr — at most one frame per
/// [`StderrReporter::MIN_INTERVAL`], the same ~4 Hz cadence the runtime
/// progress reporter uses.
struct WatchProbe {
    inner: PrivacyProbe,
    expected: u64,
    started: std::time::Instant,
    last_render: Option<std::time::Instant>,
    quiet: bool,
}

impl WatchProbe {
    fn maybe_render(&mut self) {
        if self.quiet {
            return;
        }
        let now = std::time::Instant::now();
        let throttled = self
            .last_render
            .is_some_and(|last| now.duration_since(last) < StderrReporter::MIN_INTERVAL);
        if throttled {
            return;
        }
        self.last_render = Some(now);
        let done = self.inner.deliveries();
        let elapsed = self.started.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let eta = elapsed * self.expected.saturating_sub(done) as f64 / done.max(1) as f64;
        eprintln!("[watch] {done}/{} deliveries, eta {eta:.1}s", self.expected);
        eprint!(
            "{}",
            watch_frame(done, self.inner.drops(), &self.inner.summary())
        );
    }
}

impl SimProbe for WatchProbe {
    fn on_preemption(&mut self, node: usize, now: tempriv_sim::time::SimTime) {
        self.inner.on_preemption(node, now);
    }

    fn on_drop(&mut self, node: usize, now: tempriv_sim::time::SimTime) {
        self.inner.on_drop(node, now);
    }

    fn on_delivery(&mut self, flow: usize, now: tempriv_sim::time::SimTime, latency: f64) {
        self.inner.on_delivery(flow, now, latency);
        self.maybe_render();
    }
}

/// The current aggregate privacy state of a journaled run, as text: job
/// progress plus every `tempriv_privacy_*` gauge the manifest's privacy
/// blobs aggregate to.
fn manifest_watch_frame(manifest: &ManifestReader) -> Result<String, String> {
    let blobs = manifest_blobs(manifest);
    let privacy = manifest_privacy_blobs(manifest);
    let observed = privacy.iter().flatten().count();
    let export = TelemetryExport::collect(&manifest.header.experiment, &blobs, &privacy, &[])?;
    let mut s = format!(
        "watch {}: {}/{} jobs recorded, {} with privacy series\n",
        manifest.header.experiment,
        manifest.records.len(),
        manifest.header.jobs,
        observed
    );
    if observed == 0 {
        s.push_str(
            "no privacy series recorded (run sweep with --telemetry \
             --privacy-interval N --manifest PATH)\n",
        );
        return Ok(s);
    }
    for gauge in export
        .metrics
        .gauges
        .iter()
        .filter(|g| g.name.starts_with("tempriv_privacy_"))
    {
        s.push_str(&format!("  {} = {:.4}\n", gauge.name, gauge.value));
    }
    Ok(s)
}

/// `tempriv watch <run.jsonl>`: poll a manifest and re-render its
/// aggregate privacy gauges until every job has landed (interim frames
/// go to stderr; the final one to stdout). `--once` renders the current
/// state straight to stdout and exits, whatever the progress.
fn cmd_watch_manifest<W: Write>(path: &str, args: &Args, out: &mut W) -> Result<(), String> {
    let poll_ms: u64 = args.option_as("poll-ms", 250)?;
    let once = args.flag("once");
    loop {
        let manifest = ManifestReader::read(path)?;
        let frame = manifest_watch_frame(&manifest)?;
        if once || manifest.records.len() >= manifest.header.jobs {
            write!(out, "{frame}").map_err(io_err)?;
            return Ok(());
        }
        if !args.flag("quiet") {
            eprint!("{frame}");
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
}

/// `tempriv watch` with no manifest: run the paper-default config
/// in-process under the streaming privacy probe, rendering the live view
/// as deliveries stream in, then print the final per-flow summary and
/// optionally dump the full series as JSON.
fn cmd_watch_oneshot<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.seed = args.option_as("seed", cfg.seed)?;
    cfg.packets_per_source = args.option_as("packets", cfg.packets_per_source)?;
    let interval: u64 = args.option_as("interval", 100)?;
    if interval == 0 {
        return Err("--interval must be positive".into());
    }
    let bins: usize = args.option_as("bins", DEFAULT_STREAMING_BINS)?;
    if bins < 2 {
        return Err("--bins must be at least 2".into());
    }
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let expected =
        u64::from(cfg.packets_per_source) * u64::try_from(sim.sources().len()).expect("few flows");
    let mut probe = WatchProbe {
        inner: PrivacyProbe::with_bins(privacy_flow_configs(&sim), interval, bins),
        expected,
        started: std::time::Instant::now(),
        last_render: None,
        quiet: args.flag("quiet"),
    };
    let outcome = sim.run_probed(&mut probe);
    let series = probe.inner.finish(outcome.end_time);
    writeln!(
        out,
        "watch: seed {}, {} snapshots every {} deliveries",
        cfg.seed,
        series.points.len(),
        series.interval,
    )
    .map_err(io_err)?;
    write!(
        out,
        "{}",
        watch_frame(series.deliveries, series.drops, &series.summary)
    )
    .map_err(io_err)?;
    if let Some(path) = args.option("out") {
        let json =
            serde_json::to_string(&series).map_err(|e| format!("serialize privacy series: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "[privacy series written to {path}]").map_err(io_err)?;
    }
    Ok(())
}

/// `tempriv watch [run.jsonl]`: the live streaming-privacy view — tail a
/// journaled run, or run one in-process when no manifest is given.
fn cmd_watch<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    match args.positional(1) {
        Some(path) => cmd_watch_manifest(path, args, out),
        None => cmd_watch_oneshot(args, out),
    }
}

fn cmd_cache<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    const CACHE_USAGE: &str = "usage: tempriv cache <stats|clear> --cache-dir DIR";
    let action = args.positional(1).ok_or(CACHE_USAGE)?;
    let dir = args.option("cache-dir").ok_or(CACHE_USAGE)?;
    let cache = ResultCache::on_disk(dir).map_err(|e| format!("cannot open cache {dir}: {e}"))?;
    match action {
        "stats" => {
            writeln!(out, "{} cached results in {dir}", cache.len()).map_err(io_err)?;
            Ok(())
        }
        "clear" => {
            let removed = cache
                .clear()
                .map_err(|e| format!("cannot clear cache {dir}: {e}"))?;
            writeln!(out, "removed {removed} cached results from {dir}").map_err(io_err)?;
            Ok(())
        }
        _ => Err(CACHE_USAGE.into()),
    }
}

fn cmd_calc<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    match args.positional(1) {
        Some("erlang") => {
            let rho: f64 = required(args, "rho")?;
            let slots: u32 = required(args, "slots")?;
            writeln!(out, "E({rho}, {slots}) = {:.6}", erlang_b(rho, slots)).map_err(io_err)
        }
        Some("servers") => {
            let rho: f64 = required(args, "rho")?;
            let alpha: f64 = required(args, "alpha")?;
            writeln!(
                out,
                "min slots for E({rho}, k) <= {alpha}: k = {}",
                min_servers_for_loss(rho, alpha)
            )
            .map_err(io_err)
        }
        Some("mu") => {
            let lambda: f64 = required(args, "lambda")?;
            let slots: u32 = required(args, "slots")?;
            let alpha: f64 = required(args, "alpha")?;
            let mu = service_rate_for_loss(lambda, slots, alpha);
            writeln!(
                out,
                "mu = {mu:.6} (mean delay 1/mu = {:.3}) pins E(lambda/mu, {slots}) at {alpha}",
                1.0 / mu
            )
            .map_err(io_err)
        }
        Some("mminf") => {
            let lambda: f64 = required(args, "lambda")?;
            let mu: f64 = required(args, "mu")?;
            let station = MmInf::new(lambda, mu);
            writeln!(
                out,
                "rho = {:.4}; mean occupancy = {:.4}; P(N > 10) = {:.6}; \
                 99% buffer = {} slots",
                station.utilization(),
                station.mean_occupancy(),
                station.overflow_probability(10),
                station.buffer_for_confidence(0.99),
            )
            .map_err(io_err)
        }
        Some("btq") => {
            let lambda: f64 = required(args, "lambda")?;
            let mu: f64 = required(args, "mu")?;
            let j: u64 = args.option_as("j", 1)?;
            let n: u64 = args.option_as("n", 0)?;
            writeln!(
                out,
                "I(X_{j}; Z_{j}) <= ln(1 + j*mu/lambda) = {:.6} nats",
                btq_packet_bound_nats(j, mu, lambda)
            )
            .map_err(io_err)?;
            if n > 0 {
                writeln!(
                    out,
                    "I(X^{n}; Z^{n}) <= {:.4} nats (eq. 4 stream bound)",
                    btq_stream_bound_nats(n, mu, lambda)
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        _ => Err("usage: tempriv calc <erlang|servers|mu|mminf|btq> --...".into()),
    }
}

fn required<T: std::str::FromStr>(args: &Args, key: &str) -> Result<T, String> {
    args.option(key)
        .ok_or(format!("missing required option --{key}"))?
        .parse()
        .map_err(|_| format!("invalid value for --{key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, String> {
        run_raw(tokens).map_err(|e| e.message().to_string())
    }

    /// Like [`run`] but keeps the [`CliError`], for exit-code checks.
    fn run_raw(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().copied());
        let mut buf = Vec::new();
        dispatch(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("COMMANDS"));
        let out = run(&[]).unwrap();
        assert!(out.contains("tempriv"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn calc_erlang_matches_library() {
        let out = run(&["calc", "erlang", "--rho", "15", "--slots", "10"]).unwrap();
        assert!(out.contains(&format!("{:.6}", erlang_b(15.0, 10))));
    }

    #[test]
    fn calc_requires_options() {
        let err = run(&["calc", "erlang", "--rho", "15"]).unwrap_err();
        assert!(err.contains("--slots"));
    }

    #[test]
    fn calc_mu_round_trips() {
        let out = run(&[
            "calc", "mu", "--lambda", "0.5", "--slots", "10", "--alpha", "0.1",
        ])
        .unwrap();
        assert!(out.contains("mu ="));
    }

    #[test]
    fn calc_mminf_reports_rho() {
        let out = run(&["calc", "mminf", "--lambda", "0.5", "--mu", "0.0333333333"]).unwrap();
        assert!(out.contains("rho = 15.0"));
    }

    #[test]
    fn calc_btq_stream_bound() {
        let out = run(&[
            "calc", "btq", "--lambda", "0.5", "--mu", "0.0333", "--j", "3", "--n", "10",
        ])
        .unwrap();
        assert!(out.contains("I(X_3; Z_3)"));
        assert!(out.contains("eq. 4"));
    }

    #[test]
    fn init_config_and_run_round_trip() {
        let dir = std::env::temp_dir().join("tempriv_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let out_path = dir.join("outcome.json");
        let cfg_str = cfg_path.to_str().unwrap();
        let out_str = out_path.to_str().unwrap();
        run(&["init-config", cfg_str]).unwrap();
        // Shrink the run so the test stays fast.
        let mut cfg: ExperimentConfig =
            serde_json::from_str(&std::fs::read_to_string(&cfg_path).unwrap()).unwrap();
        cfg.packets_per_source = 60;
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

        let out = run(&["run", cfg_str, "--out", out_str, "--seed", "5"]).unwrap();
        assert!(out.contains("delivered 240/240"));
        assert!(out.contains("route-aware"));
        let dumped = std::fs::read_to_string(&out_path).unwrap();
        assert!(dumped.contains("observations"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn assess_replicates_with_ci() {
        let dir = std::env::temp_dir().join("tempriv_cli_assess_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let cfg_str = cfg_path.to_str().unwrap();
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 80;
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        let out = run(&["assess", cfg_str, "--replications", "3"]).unwrap();
        assert!(out.contains("3 replications"));
        assert!(out.contains("±"));
        assert!(out.lines().count() >= 6); // header + 4 flows
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_prints_requested_points() {
        let out = run(&["sweep", "--points", "2", "--packets", "80", "--quiet"]).unwrap();
        assert!(out.contains("mse_rcad"));
        assert_eq!(out.lines().count(), 2); // header + one row
    }

    #[test]
    fn sweep_output_is_identical_for_any_worker_count() {
        let base = [
            "sweep",
            "--points",
            "2,20",
            "--packets",
            "60",
            "--quiet",
            "--workers",
        ];
        let one = run(&[&base[..], &["1"]].concat()).unwrap();
        let eight = run(&[&base[..], &["8"]].concat()).unwrap();
        assert_eq!(one, eight);
    }

    #[test]
    fn sweep_experiment_fig3_prints_json_rows() {
        let out = run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"baseline_mse\""));
        assert!(out.contains("\"adaptive_mse\""));
    }

    #[test]
    fn sweep_rejects_unknown_experiment() {
        let err = run(&["sweep", "--experiment", "fig9", "--quiet"]).unwrap_err();
        assert!(err.contains("unknown experiment"));
    }

    #[test]
    fn resume_completes_truncated_manifest_with_identical_rows() {
        let dir = std::env::temp_dir().join("tempriv_cli_resume_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache");
        let manifest = dir.join("run.jsonl");
        let cache_str = cache.to_str().unwrap();
        let man_str = manifest.to_str().unwrap();

        // Single worker so manifest records land in job order.
        let full = run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2,20",
            "--packets",
            "60",
            "--quiet",
            "--workers",
            "1",
            "--cache-dir",
            cache_str,
            "--manifest",
            man_str,
        ])
        .unwrap();
        assert_eq!(full.lines().count(), 2);

        // Simulate a crash: keep the header and the first job record,
        // tear the second mid-line, and drop its cached result so the
        // resume has real work left.
        let text = std::fs::read_to_string(&manifest).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let lost: tempriv_runtime::JobRecord = serde_json::from_str(lines[2]).unwrap();
        std::fs::remove_file(cache.join(format!("{}.json", lost.key))).unwrap();
        std::fs::write(
            &manifest,
            format!("{}\n{}\n{{\"index\":1,\"key\":\"to", lines[0], lines[1]),
        )
        .unwrap();

        let resumed = run(&["resume", man_str, "--quiet"]).unwrap();
        assert!(resumed.contains("resuming fig3: 1/2 jobs recorded"));
        let resumed_rows: Vec<&str> = resumed.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(resumed_rows, full.lines().collect::<Vec<_>>());

        // The manifest is whole again: one cache hit, one recompute.
        let back = tempriv_runtime::ManifestReader::read(&manifest).unwrap();
        assert_eq!(back.records.len(), 2);
        let cached = back
            .records
            .iter()
            .filter(|r| r.status == tempriv_runtime::JobStatus::Cached)
            .count();
        assert_eq!(cached, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_stats_and_clear() {
        let dir = std::env::temp_dir().join("tempriv_cli_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cache");
        let cache_str = cache.to_str().unwrap().to_string();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--cache-dir",
            &cache_str,
        ])
        .unwrap();
        let stats = run(&["cache", "stats", "--cache-dir", &cache_str]).unwrap();
        assert!(stats.contains("1 cached results"));
        let cleared = run(&["cache", "clear", "--cache-dir", &cache_str]).unwrap();
        assert!(cleared.contains("removed 1"));
        let stats = run(&["cache", "stats", "--cache-dir", &cache_str]).unwrap();
        assert!(stats.contains("0 cached results"));
        let err = run(&["cache", "stats"]).unwrap_err();
        assert!(err.contains("--cache-dir"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_rejects_missing_file() {
        let err = run(&["run", "/nonexistent/cfg.json"]).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn sweep_telemetry_writes_export_with_occupancy_gauges() {
        let dir = std::env::temp_dir().join("tempriv_cli_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let export = dir.join("telemetry.json");
        let export_str = export.to_str().unwrap();
        let base = ["sweep", "--points", "2", "--packets", "60", "--quiet"];

        let plain = run(&base).unwrap();
        let instrumented = run(&[&base[..], &["--telemetry", export_str]].concat()).unwrap();
        // Instrumentation must not change stdout in any way.
        assert_eq!(plain, instrumented);

        let parsed: tempriv_core::telemetry::TelemetryExport =
            serde_json::from_str(&std::fs::read_to_string(&export).unwrap()).unwrap();
        assert_eq!(parsed.experiment, "fig2");
        assert_eq!(parsed.instrumented_jobs, 1);
        assert_eq!(parsed.scenarios, 3); // no_delay, unlimited, rcad
        assert!(parsed
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_node_occupancy_mean{node=")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_manifest_telemetry_in_all_formats() {
        let dir = std::env::temp_dir().join("tempriv_cli_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let export = dir.join("telemetry.json");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--manifest",
            man_str,
            "--telemetry",
            export.to_str().unwrap(),
        ])
        .unwrap();

        let text = run(&["report", man_str]).unwrap();
        assert!(text.contains("experiment=fig3"));
        assert!(text.contains("theory checks"));
        assert!(text.contains("tempriv_engine_events_per_sec"));
        assert!(text.contains("tempriv_engine_peak_fes"));
        // Queue introspection surfaces in the text summary.
        assert!(text.contains("tempriv_engine_queue_compactions_total"));

        let json = run(&["report", man_str, "--format", "json"]).unwrap();
        let parsed: tempriv_core::telemetry::TelemetryExport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.instrumented_jobs, 1);

        let prom = run(&["report", man_str, "--format", "prometheus"]).unwrap();
        assert!(prom.contains("# TYPE tempriv_deliveries_total counter"));
        assert!(prom.contains("tempriv_node_occupancy_mean"));

        let err = run(&["report", man_str, "--format", "yaml"]).unwrap_err();
        assert!(err.contains("unknown --format"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_aggregates_a_directory_of_manifests() {
        let dir = std::env::temp_dir().join("tempriv_cli_report_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        let runs = dir.join("runs");
        std::fs::create_dir_all(&runs).unwrap();
        for (i, point) in ["2", "20"].iter().enumerate() {
            let manifest = runs.join(format!("run{i}.jsonl"));
            run(&[
                "sweep",
                "--experiment",
                "fig3",
                "--points",
                point,
                "--packets",
                "60",
                "--quiet",
                "--manifest",
                manifest.to_str().unwrap(),
                "--telemetry",
                dir.join(format!("t{i}.json")).to_str().unwrap(),
            ])
            .unwrap();
        }
        let text = run(&["report", runs.to_str().unwrap()]).unwrap();
        assert!(text.contains("experiment=fig3"));
        assert!(text.contains("instrumented=2"));

        let json = run(&["report", runs.to_str().unwrap(), "--format", "json"]).unwrap();
        let parsed: tempriv_core::telemetry::TelemetryExport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.instrumented_jobs, 2);

        // An empty directory is a clear "no completed jobs" note, not a
        // bare all-zero report (and not a hard error).
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let note = run(&["report", empty.to_str().unwrap()]).unwrap();
        assert!(note.contains("no completed jobs"));
        assert!(note.contains("no .jsonl manifests"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_on_header_only_manifest_says_no_completed_jobs() {
        // Regression: a manifest whose run was interrupted before any job
        // finished (header line only) used to render a bare empty report.
        let dir = std::env::temp_dir().join("tempriv_cli_report_empty_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("interrupted.jsonl");
        let header = tempriv_runtime::ManifestHeader {
            experiment: "fig3".to_string(),
            params_json: "{}".to_string(),
            jobs: 3,
            cache_dir: None,
        };
        drop(tempriv_runtime::ManifestWriter::create(&manifest, &header).unwrap());

        let text = run(&["report", manifest.to_str().unwrap()]).unwrap();
        assert!(text.contains("no completed jobs"), "got: {text}");
        assert!(!text.contains("experiment="), "no bare report: {text}");

        // Same through the directory path.
        let text = run(&["report", dir.to_str().unwrap()]).unwrap();
        assert!(text.contains("no completed jobs"), "got: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_serve_writes_a_load_report() {
        let dir = std::env::temp_dir().join("tempriv_cli_bench_serve_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_serve.json");
        let text = run(&[
            "bench",
            "serve",
            "--submissions",
            "16",
            "--concurrency",
            "4",
            "--distinct",
            "4",
            "--packets",
            "30",
            "--server-workers",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("req/s"), "got: {text}");
        assert!(text.contains("warm bytes identical: true"), "got: {text}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        let report: tempriv_serve::LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report.submissions, 16);
        assert!(report.warm > 0, "repeat specs must hit the cache");
        assert!(report.warm_bytes_identical);
        let _ = std::fs::remove_dir_all(&dir);

        let err = run(&["bench", "nope"]).unwrap_err();
        assert!(err.contains("unknown bench target"));
    }

    #[test]
    fn trace_capacity_journals_blobs_and_requires_telemetry() {
        let dir = std::env::temp_dir().join("tempriv_cli_trace_capacity_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--manifest",
            man_str,
            "--telemetry",
            dir.join("t.json").to_str().unwrap(),
            "--trace-capacity",
            "65536",
        ])
        .unwrap();
        let back = tempriv_runtime::ManifestReader::read(&manifest).unwrap();
        assert_eq!(back.records.len(), 1);
        let blob = back.records[0].trace.as_deref().expect("trace journaled");
        let trace: tempriv_core::telemetry::JobTrace = serde_json::from_str(blob).unwrap();
        assert!(!trace.scenarios.is_empty());
        assert!(trace.scenarios.iter().all(|s| !s.log.events.is_empty()));

        let err = run(&["sweep", "--quiet", "--trace-capacity", "100"]).unwrap_err();
        assert!(err.contains("requires --telemetry"));
        let err = run(&[
            "sweep",
            "--quiet",
            "--telemetry",
            "t.json",
            "--trace-capacity",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("must be positive"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_text_summary_reports_lifecycles() {
        let out = run(&["trace", "--packets", "60", "--seed", "3"]).unwrap();
        assert!(out.contains("flight recording:"));
        assert!(out.contains("240 total"));
        assert!(out.contains("per-hop residence: n="));
        assert!(out.contains("end-to-end latency: n="));
    }

    #[test]
    fn trace_jsonl_filters_by_flow() {
        let out = run(&[
            "trace",
            "--packets",
            "40",
            "--seed",
            "3",
            "--flow",
            "1",
            "--format",
            "jsonl",
        ])
        .unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            assert!(line.starts_with("{\"t\":"), "one JSON object per line");
            assert!(line.ends_with('}'));
            assert!(line.contains("\"flow\":1"), "filter kept only flow 1");
            assert!(line.contains("\"kind\":\""));
        }
    }

    #[test]
    fn trace_chrome_output_is_valid_trace_event_json() {
        let dir = std::env::temp_dir().join("tempriv_cli_trace_chrome_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = run(&[
            "trace",
            "--packets",
            "40",
            "--seed",
            "3",
            "--format",
            "chrome",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("[trace written to"));
        let text = std::fs::read_to_string(&path).unwrap();
        // Structural validity: the trace_event envelope, balanced
        // braces/brackets, and all three event phases present.
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        let balance = |open: char, close: char| {
            text.chars().filter(|&c| c == open).count()
                - text.chars().filter(|&c| c == close).count()
        };
        assert_eq!(balance('{', '}'), 0);
        assert_eq!(balance('[', ']'), 0);
        assert!(text.matches("\"ph\":\"M\"").count() > 4, "metadata events");
        assert!(
            text.matches("\"ph\":\"X\"").count() > 100,
            "complete events"
        );
        assert!(text.matches("\"ph\":\"i\"").count() > 100, "instant events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_rejects_bad_arguments() {
        let err = run(&["trace", "--capacity", "0"]).unwrap_err();
        assert!(err.contains("--capacity must be positive"));
        let err = run(&["trace", "--format", "svg"]).unwrap_err();
        assert!(err.contains("unknown --format"));
        let err = run(&["trace", "--flow", "abc"]).unwrap_err();
        assert!(err.contains("invalid value for --flow"));
        let err = run(&["trace", "/nonexistent/cfg.json"]).unwrap_err();
        assert!(err.contains("cannot read"));
        let err = run(&["trace", "--digest-window", "0"]).unwrap_err();
        assert!(err.contains("--digest-window must be positive"));
    }

    #[test]
    fn trace_expect_root_checks_the_run_digest() {
        // `audit run` over the same spec yields the expected root: the
        // digest probe composes under the flight recorder without
        // perturbing the event stream.
        let json = run(&["audit", "run", "--packets", "60", "--seed", "3"]).unwrap();
        let digest: tempriv_telemetry::RunDigest = serde_json::from_str(&json).unwrap();

        let out = run(&[
            "trace",
            "--packets",
            "60",
            "--seed",
            "3",
            "--expect-root",
            &digest.root,
        ])
        .unwrap();
        assert!(out.contains("flight recording:"), "{out}");
        assert!(out.contains("matches --expect-root"), "{out}");

        // A wrong root reports the divergence but still exits 0...
        let out = run(&[
            "trace",
            "--packets",
            "60",
            "--seed",
            "3",
            "--expect-root",
            "0000000000000000",
        ])
        .unwrap();
        assert!(out.contains("DIVERGED"), "{out}");
        // ...unless --fail-on-divergence escalates it to exit code 2.
        let err = run_raw(&[
            "trace",
            "--packets",
            "60",
            "--seed",
            "3",
            "--expect-root",
            "0000000000000000",
            "--fail-on-divergence",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");
        assert!(err.message().contains("does not match expected"));
    }

    #[test]
    fn digest_window_journals_audit_blobs_and_requires_telemetry() {
        let dir = std::env::temp_dir().join("tempriv_cli_digest_window_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--manifest",
            man_str,
            "--telemetry",
            dir.join("t.json").to_str().unwrap(),
            "--digest-window",
            "256",
        ])
        .unwrap();
        let back = tempriv_runtime::ManifestReader::read(&manifest).unwrap();
        assert_eq!(back.records.len(), 1);
        let blob = back.records[0].audit.as_deref().expect("audit journaled");
        let audit: tempriv_core::telemetry::JobAudit = serde_json::from_str(blob).unwrap();
        assert_eq!(audit.root.len(), 16);
        assert!(!audit.scenarios.is_empty());
        assert!(audit.scenarios.iter().all(|s| s.digest.events > 0));
        assert_eq!(audit.root, audit.compute_root());

        let err = run(&["sweep", "--quiet", "--digest-window", "256"]).unwrap_err();
        assert!(err.contains("requires --telemetry"));
        let err = run(&[
            "sweep",
            "--quiet",
            "--telemetry",
            "t.json",
            "--digest-window",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("must be positive"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn privacy_interval_journals_blobs_and_requires_telemetry() {
        let dir = std::env::temp_dir().join("tempriv_cli_privacy_interval_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "120",
            "--quiet",
            "--manifest",
            man_str,
            "--telemetry",
            dir.join("t.json").to_str().unwrap(),
            "--privacy-interval",
            "25",
        ])
        .unwrap();
        let back = tempriv_runtime::ManifestReader::read(&manifest).unwrap();
        assert_eq!(back.records.len(), 1);
        let blob = back.records[0]
            .privacy
            .as_deref()
            .expect("privacy journaled");
        let privacy: tempriv_core::telemetry::JobPrivacy = serde_json::from_str(blob).unwrap();
        assert!(!privacy.scenarios.is_empty());
        assert!(privacy
            .scenarios
            .iter()
            .all(|s| !s.series.points.is_empty()));

        // The telemetry export aggregates the per-flow gauges.
        let parsed: tempriv_core::telemetry::TelemetryExport =
            serde_json::from_str(&std::fs::read_to_string(dir.join("t.json")).unwrap()).unwrap();
        assert!(parsed
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_privacy_mi_nats{flow=")));

        // And `report` renders them from the manifest alone.
        let prom = run(&["report", man_str, "--format", "prometheus"]).unwrap();
        assert!(prom.contains("tempriv_privacy_mi_nats"));

        let err = run(&["sweep", "--quiet", "--privacy-interval", "25"]).unwrap_err();
        assert!(err.contains("requires --telemetry"));
        let err = run(&[
            "sweep",
            "--quiet",
            "--telemetry",
            "t.json",
            "--privacy-interval",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("must be positive"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn privacy_instrumentation_leaves_stdout_untouched() {
        let dir = std::env::temp_dir().join("tempriv_cli_privacy_stdout_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = ["sweep", "--points", "2", "--packets", "60", "--quiet"];
        let plain = run(&base).unwrap();
        let observed = run(&[
            &base[..],
            &[
                "--telemetry",
                dir.join("t.json").to_str().unwrap(),
                "--privacy-interval",
                "10",
            ],
        ]
        .concat())
        .unwrap();
        assert_eq!(plain, observed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_oneshot_prints_per_flow_table_and_dumps_series() {
        let dir = std::env::temp_dir().join("tempriv_cli_watch_oneshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let series_path = dir.join("series.json");
        let out = run(&[
            "watch",
            "--packets",
            "120",
            "--seed",
            "3",
            "--interval",
            "25",
            "--quiet",
            "--out",
            series_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("snapshots every 25 deliveries"));
        assert!(out.contains("mi_nats"));
        assert!(out.lines().any(|l| l.starts_with("f0")));
        let series: tempriv_telemetry::PrivacySeries =
            serde_json::from_str(&std::fs::read_to_string(&series_path).unwrap()).unwrap();
        assert!(series.deliveries > 0);
        assert!(!series.points.is_empty());
        assert!(!series.summary.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_once_renders_manifest_state() {
        let dir = std::env::temp_dir().join("tempriv_cli_watch_manifest_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "120",
            "--quiet",
            "--manifest",
            man_str,
            "--telemetry",
            dir.join("t.json").to_str().unwrap(),
            "--privacy-interval",
            "25",
        ])
        .unwrap();
        let out = run(&["watch", man_str, "--once"]).unwrap();
        assert!(out.contains("watch fig3: 1/1 jobs recorded, 1 with privacy series"));
        assert!(out.contains("tempriv_privacy_mi_nats{flow="));

        // A manifest without privacy blobs names the missing flag.
        let plain = dir.join("plain.jsonl");
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--manifest",
            plain.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&["watch", plain.to_str().unwrap(), "--once"]).unwrap();
        assert!(out.contains("no privacy series recorded"));
        assert!(out.contains("--privacy-interval"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_rejects_bad_arguments() {
        let err = run(&["watch", "--interval", "0"]).unwrap_err();
        assert!(err.contains("--interval must be positive"));
        let err = run(&["watch", "--bins", "1"]).unwrap_err();
        assert!(err.contains("--bins must be at least 2"));
        let err = run(&["watch", "/nonexistent/run.jsonl", "--once"]).unwrap_err();
        assert!(err.contains("cannot read manifest"));
    }

    #[test]
    fn profile_prints_phase_table_and_merged_chrome_trace() {
        let dir = std::env::temp_dir().join("tempriv_cli_profile_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("profile.json");
        let out = run(&[
            "profile",
            "--points",
            "4",
            "--packets",
            "40",
            "--seed",
            "7",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("profile fig2: 1 jobs, 3 scenarios"), "{out}");
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("engine_loop"), "{out}");
        assert!(out.contains("queue_push"), "{out}");
        // The table closes with a total row at 100%.
        let total = out
            .lines()
            .find(|l| l.starts_with("total"))
            .expect("total row");
        assert!(total.contains("100.0%"), "{total}");

        // The merged Chrome trace is structurally valid and carries all
        // three layers: spans, phase bands, and packet residences.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"cat\":\"span\""), "span events");
        assert!(text.contains("\"cat\":\"phase\""), "phase bands");
        assert!(text.contains("\"cat\":\"residence\""), "flight events");
        // One trace id end to end.
        let ids: std::collections::BTreeSet<&str> = text
            .split("\"trace_id\":\"")
            .skip(1)
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert_eq!(ids.len(), 1, "single trace id: {ids:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_json_is_a_parseable_breakdown_that_sums_to_total() {
        let out = run(&[
            "profile",
            "--points",
            "4",
            "--packets",
            "40",
            "--seed",
            "7",
            "--json",
        ])
        .unwrap();
        let breakdown: tempriv_telemetry::PhaseBreakdown = serde_json::from_str(&out).unwrap();
        assert!(breakdown.total_secs > 0.0);
        let sum: f64 = breakdown.phases.iter().map(|p| p.secs).sum();
        assert!(
            (sum - breakdown.total_secs).abs() < 1e-9,
            "phases sum to total: {sum} vs {}",
            breakdown.total_secs
        );
        assert!(breakdown
            .phases
            .iter()
            .any(|p| p.phase == "victim_select" && p.count > 0));
    }

    #[test]
    fn profile_rejects_bad_arguments() {
        let err = run(&["profile", "--batch", "0"]).unwrap_err();
        assert!(err.contains("--batch must be positive"));
        let err = run(&["profile", "--experiment", "fig9", "--packets", "30"]).unwrap_err();
        assert!(err.contains("unknown experiment"));
    }

    #[test]
    fn report_on_uninstrumented_manifest_notes_missing_telemetry() {
        let dir = std::env::temp_dir().join("tempriv_cli_report_plain_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.jsonl");
        let man_str = manifest.to_str().unwrap();
        run(&[
            "sweep",
            "--experiment",
            "fig3",
            "--points",
            "2",
            "--packets",
            "60",
            "--quiet",
            "--manifest",
            man_str,
        ])
        .unwrap();
        let text = run(&["report", man_str]).unwrap();
        assert!(text.contains("instrumented=0"));
        assert!(text.contains("no job attached telemetry"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

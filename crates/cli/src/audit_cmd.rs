//! `tempriv audit` — the determinism observatory's command-line face.
//!
//! Four subcommands over the windowed run digests of
//! [`tempriv_telemetry::audit`]:
//!
//! * `audit run` — run one experiment config under the [`DigestProbe`]
//!   and emit its [`RunDigest`] (checkpoint stream + run root) as JSON;
//! * `audit diff` — compare two digest files and name the first
//!   divergent window;
//! * `audit bisect` — run two configs (or two seeds of one config),
//!   diff their digests, then re-run both with a [`WindowCapture`]
//!   confined to the first divergent window to pinpoint the exact first
//!   divergent event;
//! * `audit ledger` — maintain and verify the committed regression
//!   ledger: an append-only record of the run root of a fixed Figure-1
//!   smoke scenario, checked in CI so any unintended change to the
//!   engine's event stream is caught at the commit that introduced it.
//!
//! Divergences are reported on stdout and exit 0 by default; with
//! `--fail-on-divergence` they exit with code 2 (ordinary errors stay
//! exit 1), so scripts and CI can tell "the runs differ" from "the tool
//! broke".

use std::io::Write;

use serde::{Deserialize, Serialize};
use tempriv_core::config::ExperimentConfig;
use tempriv_telemetry::audit::{
    diff, digest, first_divergent_event, fold_root, CapturedEvent, DigestProbe, RunDigest,
    WindowCapture, WindowDigest,
};
use tempriv_telemetry::DEFAULT_DIGEST_WINDOW;

use crate::args::Args;
use crate::commands::{io_err, optional, CliError};

const AUDIT_USAGE: &str = "usage: tempriv audit <run|diff|bisect|ledger>; \
                           try `tempriv help` for the flag list";

/// Default location of the committed regression ledger.
pub const DEFAULT_LEDGER_PATH: &str = "results/LEDGER.json";

/// Checkpoint window of the fixed ledger scenario. Small enough that a
/// divergence names a tight window, large enough that the ledger entry
/// stays a handful of checkpoints.
const LEDGER_WINDOW: usize = 256;

/// Dispatches `tempriv audit <run|diff|bisect|ledger>`.
///
/// # Errors
///
/// Returns [`CliError::Error`] (exit 1) on bad arguments or I/O and
/// [`CliError::Divergence`] (exit 2) when a divergence is detected under
/// `--fail-on-divergence`.
pub fn cmd_audit<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    match args.positional(1) {
        Some("run") => audit_run(args, out),
        Some("diff") => audit_diff(args, out),
        Some("bisect") => audit_bisect(args, out),
        Some("ledger") => audit_ledger(args, out),
        _ => Err(AUDIT_USAGE.into()),
    }
}

/// Escalates a detected divergence to exit code 2 when the caller asked
/// for it; otherwise the report on stdout is the whole answer.
fn fail_on_divergence(args: &Args, message: String) -> Result<(), CliError> {
    if args.flag("fail-on-divergence") {
        Err(CliError::Divergence(message))
    } else {
        Ok(())
    }
}

/// Loads the experiment config at `path` (the paper default when
/// absent) and applies the `--seed` / `--packets` overrides.
fn audit_config(args: &Args, path: Option<&str>) -> Result<ExperimentConfig, String> {
    let mut cfg = match path {
        Some(p) => {
            let raw = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            serde_json::from_str::<ExperimentConfig>(&raw)
                .map_err(|e| format!("invalid config {p}: {e}"))?
        }
        None => ExperimentConfig::paper_default(),
    };
    cfg.seed = args.option_as("seed", cfg.seed)?;
    cfg.packets_per_source = args.option_as("packets", cfg.packets_per_source)?;
    Ok(cfg)
}

/// Parses `--window`, defaulting to [`DEFAULT_DIGEST_WINDOW`].
fn window_arg(args: &Args) -> Result<usize, String> {
    let window: usize = args.option_as("window", DEFAULT_DIGEST_WINDOW)?;
    if window == 0 {
        return Err("--window must be positive".into());
    }
    Ok(window)
}

/// Runs `cfg` under a [`DigestProbe`], returning the run digest and the
/// run's RNG draw count (for the bisect report: a draw-count delta
/// means the divergence reaches into the sampling layer).
fn digest_run(cfg: &ExperimentConfig, window: usize) -> Result<(RunDigest, u64), String> {
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let mut probe = DigestProbe::new(window);
    let outcome = sim.run_probed(&mut probe);
    Ok((probe.finish(), outcome.rng_draws))
}

/// Re-runs `cfg` retaining the full event tuples of sequence window
/// `[lo, hi)`.
fn capture_run(cfg: &ExperimentConfig, lo: u64, hi: u64) -> Result<Vec<CapturedEvent>, String> {
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let mut capture = WindowCapture::new(lo, hi);
    let _outcome = sim.run_probed(&mut capture);
    Ok(capture.into_events())
}

/// Reads and parses a digest file written by `audit run`.
fn read_digest(path: &str) -> Result<RunDigest, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("invalid digest {path}: {e}"))
}

/// One captured event, rendered for the bisect report.
fn event_line(event: Option<&CapturedEvent>) -> String {
    event.map_or_else(
        || "(stream ended)".to_string(),
        |e| {
            format!(
                "seq={} t={:.3} kind={:?} packet={} flow={} node={}",
                e.seq, e.t, e.kind, e.packet, e.flow, e.node
            )
        },
    )
}

/// Runs `cfg` on the serial or sharded engine and seals the
/// [`SimOutcome`] digest — the engine-topology-invariant contract (the
/// sharded runner guarantees it for any shard/worker count) — into a
/// single-checkpoint [`RunDigest`] with window 0, so `audit diff` can
/// cross-check a serial run against a sharded one.
///
/// [`SimOutcome`]: tempriv_core::SimOutcome
fn outcome_digest_run(
    cfg: &ExperimentConfig,
    shards: u32,
    workers: usize,
) -> Result<RunDigest, String> {
    let sim = cfg.build().map_err(|e| e.to_string())?;
    let outcome = if shards > 1 {
        sim.run_sharded(shards, workers)
    } else {
        sim.run()
    };
    let checkpoint = WindowDigest {
        index: 0,
        start_seq: 0,
        events: outcome.events,
        digest: digest::hex64(outcome.digest()),
    };
    let root = fold_root(std::slice::from_ref(&checkpoint));
    Ok(RunDigest {
        window: 0,
        events: outcome.events,
        end_time: outcome.end_time.as_units(),
        checkpoints: vec![checkpoint],
        root,
    })
}

/// `tempriv audit run [config.json]`: digest one run. With `--out` the
/// JSON goes to the file and a one-line summary to stdout; without, the
/// JSON itself is the stdout payload (pipe it to a file for `diff`).
///
/// `--outcome` digests the simulation outcome instead of the event
/// stream; `--shards N [--workers M]` runs it on the sharded engine
/// (which admits no event probes, so it requires `--outcome`).
fn audit_run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let cfg = audit_config(args, args.positional(2))?;
    let window = window_arg(args)?;
    let shards: u32 = args.option_as("shards", 1)?;
    let workers: usize = args.option_as("workers", 1)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be positive".into());
    }
    let (digest, mode) = if args.flag("outcome") {
        (outcome_digest_run(&cfg, shards, workers)?, "outcome digest")
    } else if shards > 1 {
        return Err("--shards needs --outcome: the sharded engine admits no \
                    event probes, so only the outcome digest is defined"
            .into());
    } else {
        (digest_run(&cfg, window)?.0, "event stream")
    };
    let json =
        serde_json::to_string_pretty(&digest).map_err(|e| format!("serialize digest: {e}"))?;
    match args.option("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(
                out,
                "audit run: root={} ({mode}, {} events, {} windows of {}, seed {}) \
                 [digest written to {path}]",
                digest.root,
                digest.events,
                digest.checkpoints.len(),
                digest.window,
                cfg.seed,
            )
            .map_err(io_err)?;
        }
        None => writeln!(out, "{json}").map_err(io_err)?,
    }
    Ok(())
}

/// `tempriv audit diff <left.json> <right.json>`: name the first
/// divergent window of two digest files.
fn audit_diff<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let (Some(left_path), Some(right_path)) = (args.positional(2), args.positional(3)) else {
        return Err("usage: tempriv audit diff <left.json> <right.json> \
                    [--fail-on-divergence]"
            .into());
    };
    let left = read_digest(left_path)?;
    let right = read_digest(right_path)?;
    let report = diff(&left, &right)?;
    if report.identical {
        writeln!(
            out,
            "digests identical: root={} ({} events, {} windows)",
            left.root,
            left.events,
            left.checkpoints.len(),
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let d = report
        .divergence
        .expect("non-identical diff names a window");
    writeln!(
        out,
        "digests diverge: left root={} ({} events), right root={} ({} events)",
        left.root, left.events, right.root, right.events,
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "first divergent window: #{} (seq {}..{}): left={} right={}",
        d.window,
        d.start_seq,
        d.start_seq + d.events,
        d.left,
        d.right,
    )
    .map_err(io_err)?;
    fail_on_divergence(args, format!("first divergent window #{}", d.window))
}

/// `tempriv audit bisect`: digest two runs, and when they diverge,
/// re-run both confined to the first divergent window and print the
/// exact first divergent event.
fn audit_bisect<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let left_cfg = audit_config(args, args.positional(2))?;
    let mut right_cfg = match args.option("against") {
        Some(path) => audit_config(args, Some(path))?,
        None => left_cfg.clone(),
    };
    match optional::<u64>(args, "against-seed")? {
        Some(seed) => right_cfg.seed = seed,
        None if args.option("against").is_none() => {
            return Err("nothing to compare: give --against other.json or \
                        --against-seed N"
                .into());
        }
        None => {}
    }
    let window = window_arg(args)?;
    let (left, left_draws) = digest_run(&left_cfg, window)?;
    let (right, right_draws) = digest_run(&right_cfg, window)?;
    let report = diff(&left, &right)?;
    if report.identical {
        writeln!(
            out,
            "no divergence: both runs fold to root={} ({} events, {} windows)",
            left.root,
            left.events,
            left.checkpoints.len(),
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let d = report
        .divergence
        .expect("non-identical diff names a window");
    let lo = d.start_seq;
    let hi = d.start_seq + d.events.max(1);
    writeln!(
        out,
        "digests diverge: left root={}, right root={}",
        left.root, right.root
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "first divergent window: #{} (seq {lo}..{hi}): left={} right={}",
        d.window, d.left, d.right,
    )
    .map_err(io_err)?;
    // The bisect proper: a full re-run per side, capture confined to
    // the named window, element-wise comparison of the event tuples.
    let left_events = capture_run(&left_cfg, lo, hi)?;
    let right_events = capture_run(&right_cfg, lo, hi)?;
    match first_divergent_event(&left_events, &right_events) {
        Some(e) => {
            writeln!(out, "first divergent event: seq {}", lo + e.position).map_err(io_err)?;
            writeln!(out, "  left:  {}", event_line(e.left.as_ref())).map_err(io_err)?;
            writeln!(out, "  right: {}", event_line(e.right.as_ref())).map_err(io_err)?;
        }
        None => {
            writeln!(
                out,
                "window digests differ but the captured tuples agree \
                 (sub-tick timing divergence?)"
            )
            .map_err(io_err)?;
        }
    }
    writeln!(
        out,
        "rng draws: left={left_draws} right={right_draws}{}",
        if left_draws == right_draws {
            ""
        } else {
            " (draw counts differ: the divergence reaches the sampling layer)"
        }
    )
    .map_err(io_err)?;
    fail_on_divergence(
        args,
        format!("first divergent window #{} (seq {lo}..{hi})", d.window),
    )
}

/// One committed ledger entry: the run root of the fixed Figure-1 smoke
/// scenario as of one commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form label, conventionally the short commit hash.
    pub label: String,
    /// Unix seconds when the entry was recorded.
    pub recorded_unix: u64,
    /// Scenario name (always `figure1-smoke` today).
    pub scenario: String,
    /// Seed of the recorded run.
    pub seed: u64,
    /// Packets per source of the recorded run.
    pub packets_per_source: u32,
    /// Checkpoint window the digest was folded with.
    pub window: u64,
    /// Total packet events the run folded.
    pub events: u64,
    /// The run root in hex wire form.
    pub root: String,
}

/// The fixed ledger scenario: the paper Figure-1 layout at smoke scale.
/// Everything is pinned — any change to this function invalidates the
/// committed ledger history.
fn ledger_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.packets_per_source = 120;
    cfg
}

/// Reads the ledger file, tolerating a missing file for `--update`.
fn read_ledger(path: &str) -> Result<Vec<LedgerEntry>, String> {
    match std::fs::read_to_string(path) {
        Ok(raw) => serde_json::from_str(&raw).map_err(|e| format!("invalid ledger {path}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read ledger {path}: {e}")),
    }
}

/// `tempriv audit ledger (--check | --update)`: verify or extend the
/// committed per-commit digest record.
fn audit_ledger<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let path = args.option("ledger").unwrap_or(DEFAULT_LEDGER_PATH);
    let check = args.flag("check");
    let update = args.flag("update");
    if check == update {
        return Err("usage: tempriv audit ledger (--check | --update) \
                    [--ledger PATH] [--label L] [--fail-on-divergence]"
            .into());
    }
    let cfg = ledger_config();
    let (digest, _draws) = digest_run(&cfg, LEDGER_WINDOW)?;
    let mut entries = read_ledger(path)?;
    if update {
        let recorded_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        entries.push(LedgerEntry {
            label: args.option("label").unwrap_or("local").to_string(),
            recorded_unix,
            scenario: "figure1-smoke".to_string(),
            seed: cfg.seed,
            packets_per_source: cfg.packets_per_source,
            window: LEDGER_WINDOW as u64,
            events: digest.events,
            root: digest.root.clone(),
        });
        let json =
            serde_json::to_string_pretty(&entries).map_err(|e| format!("serialize ledger: {e}"))?;
        if let Some(parent) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(
            out,
            "ledger updated: entry #{} root={} ({} events) [written to {path}]",
            entries.len(),
            digest.root,
            digest.events,
        )
        .map_err(io_err)?;
        return Ok(());
    }
    // --check: the latest entry is the expectation.
    let Some(latest) = entries.last() else {
        return Err(format!(
            "no ledger at {path}: record a baseline with `tempriv audit ledger --update`"
        )
        .into());
    };
    let comparable = latest.window == LEDGER_WINDOW as u64
        && latest.seed == cfg.seed
        && latest.packets_per_source == cfg.packets_per_source;
    if !comparable {
        return Err(format!(
            "ledger entry '{}' records a different scenario \
             (window {}, seed {}, packets {}); re-record with --update",
            latest.label, latest.window, latest.seed, latest.packets_per_source,
        )
        .into());
    }
    if latest.root == digest.root && latest.events == digest.events {
        writeln!(
            out,
            "ledger check ok: root={} matches entry '{}' (#{} of {})",
            digest.root,
            latest.label,
            entries.len(),
            entries.len(),
        )
        .map_err(io_err)?;
        return Ok(());
    }
    writeln!(
        out,
        "ledger check FAILED: entry '{}' records root={} ({} events), \
         this build folds root={} ({} events)",
        latest.label, latest.root, latest.events, digest.root, digest.events,
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "the engine's event stream changed; if intentional, re-record with \
         `tempriv audit ledger --update`, else bisect with \
         `tempriv audit bisect`"
    )
    .map_err(io_err)?;
    fail_on_divergence(
        args,
        format!(
            "ledger root mismatch: recorded {} vs current {}",
            latest.root, digest.root
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn run(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().copied());
        let mut buf = Vec::new();
        dispatch(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn audit_run_is_deterministic_and_writes_a_digest() {
        let dir = std::env::temp_dir().join("tempriv_cli_audit_run_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        let base = [
            "audit",
            "run",
            "--packets",
            "60",
            "--seed",
            "5",
            "--window",
            "64",
        ];
        let summary = run(&[&base[..], &["--out", a.to_str().unwrap()]].concat()).unwrap();
        assert!(summary.contains("audit run: root="), "{summary}");
        run(&[&base[..], &["--out", b.to_str().unwrap()]].concat()).unwrap();
        // Two same-spec runs produce byte-identical digest files.
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap()
        );
        let digest: RunDigest =
            serde_json::from_str(&std::fs::read_to_string(&a).unwrap()).unwrap();
        assert_eq!(digest.root.len(), 16);
        assert!(digest.events > 0);
        assert!(!digest.checkpoints.is_empty());
        // Without --out the JSON itself is the stdout payload.
        let json = run(&base).unwrap();
        let piped: RunDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(piped, digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_digest_cross_checks_serial_against_sharded() {
        let dir = std::env::temp_dir().join("tempriv_cli_audit_outcome_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A four-subtree star so a two-way cut produces real handoffs.
        let mut cfg = ExperimentConfig::paper_default();
        cfg.layout = tempriv_core::config::LayoutSpec::Convergecast {
            trunk_hops: 0,
            flow_hops: vec![15, 22, 9, 11],
        };
        cfg.packets_per_source = 150;
        cfg.seed = 2007;
        let cfg_path = dir.join("star.json");
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        let serial = dir.join("serial.json");
        let sharded = dir.join("sharded.json");
        run(&[
            "audit",
            "run",
            cfg_path.to_str().unwrap(),
            "--outcome",
            "--out",
            serial.to_str().unwrap(),
        ])
        .unwrap();
        run(&[
            "audit",
            "run",
            cfg_path.to_str().unwrap(),
            "--outcome",
            "--shards",
            "2",
            "--workers",
            "2",
            "--out",
            sharded.to_str().unwrap(),
        ])
        .unwrap();
        let report = run(&[
            "audit",
            "diff",
            serial.to_str().unwrap(),
            sharded.to_str().unwrap(),
            "--fail-on-divergence",
        ])
        .unwrap();
        assert!(report.contains("digests identical"), "{report}");
        // The sharded engine admits no event probes: --shards without
        // --outcome must be rejected, not silently fall back.
        let err = run(&["audit", "run", cfg_path.to_str().unwrap(), "--shards", "2"]).unwrap_err();
        assert!(
            format!("{err:?}").contains("--outcome"),
            "error should point at --outcome: {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_diff_reports_match_and_names_the_first_divergent_window() {
        let dir = std::env::temp_dir().join("tempriv_cli_audit_diff_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        let c = dir.join("c.json");
        for (path, seed) in [(&a, "5"), (&b, "5"), (&c, "6")] {
            run(&[
                "audit",
                "run",
                "--packets",
                "60",
                "--seed",
                seed,
                "--window",
                "64",
                "--out",
                path.to_str().unwrap(),
            ])
            .unwrap();
        }
        let same = run(&["audit", "diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(same.contains("digests identical"), "{same}");

        // A seed change diverges; the report names window #0 (the very
        // first event differs when the whole schedule resamples).
        let diverged = run(&["audit", "diff", a.to_str().unwrap(), c.to_str().unwrap()]).unwrap();
        assert!(diverged.contains("digests diverge"), "{diverged}");
        assert!(diverged.contains("first divergent window"), "{diverged}");

        // --fail-on-divergence escalates to exit code 2.
        let err = run(&[
            "audit",
            "diff",
            a.to_str().unwrap(),
            c.to_str().unwrap(),
            "--fail-on-divergence",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");
        // ...but an identical pair still exits 0 with the flag.
        run(&[
            "audit",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--fail-on-divergence",
        ])
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_bisect_pinpoints_the_first_divergent_event() {
        let out = run(&[
            "audit",
            "bisect",
            "--packets",
            "60",
            "--seed",
            "5",
            "--against-seed",
            "6",
            "--window",
            "64",
        ])
        .unwrap();
        assert!(out.contains("first divergent window"), "{out}");
        assert!(out.contains("first divergent event: seq"), "{out}");
        assert!(out.contains("left:  seq="), "{out}");
        assert!(out.contains("right: seq="), "{out}");
        assert!(out.contains("rng draws:"), "{out}");

        let err = run(&[
            "audit",
            "bisect",
            "--packets",
            "60",
            "--seed",
            "5",
            "--against-seed",
            "6",
            "--window",
            "64",
            "--fail-on-divergence",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");

        // Identical sides report no divergence even with the flag.
        let same = run(&[
            "audit",
            "bisect",
            "--packets",
            "60",
            "--seed",
            "5",
            "--against-seed",
            "5",
            "--window",
            "64",
            "--fail-on-divergence",
        ])
        .unwrap();
        assert!(same.contains("no divergence"), "{same}");
    }

    #[test]
    fn audit_ledger_update_then_check_round_trips() {
        let dir = std::env::temp_dir().join("tempriv_cli_audit_ledger_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("LEDGER.json");
        let ledger_str = ledger.to_str().unwrap();

        // No baseline yet: --check is an ordinary error (exit 1).
        let err = run(&["audit", "ledger", "--check", "--ledger", ledger_str]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.message().contains("--update"), "{err:?}");

        let updated = run(&[
            "audit", "ledger", "--update", "--ledger", ledger_str, "--label", "t0",
        ])
        .unwrap();
        assert!(updated.contains("ledger updated: entry #1"), "{updated}");
        let checked = run(&["audit", "ledger", "--check", "--ledger", ledger_str]).unwrap();
        assert!(checked.contains("ledger check ok"), "{checked}");
        assert!(checked.contains("'t0'"), "{checked}");

        // Tamper with the recorded root: the check reports the mismatch
        // and exits 2 under --fail-on-divergence.
        let mut entries: Vec<LedgerEntry> =
            serde_json::from_str(&std::fs::read_to_string(&ledger).unwrap()).unwrap();
        entries.last_mut().unwrap().root = "0000000000000000".to_string();
        std::fs::write(&ledger, serde_json::to_string(&entries).unwrap()).unwrap();
        let report = run(&["audit", "ledger", "--check", "--ledger", ledger_str]).unwrap();
        assert!(report.contains("ledger check FAILED"), "{report}");
        let err = run(&[
            "audit",
            "ledger",
            "--check",
            "--ledger",
            ledger_str,
            "--fail-on-divergence",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_rejects_bad_arguments() {
        let err = run(&["audit"]).unwrap_err();
        assert!(err.message().contains("usage: tempriv audit"));
        let err = run(&["audit", "frobnicate"]).unwrap_err();
        assert!(err.message().contains("usage: tempriv audit"));
        let err = run(&["audit", "run", "--window", "0"]).unwrap_err();
        assert!(err.message().contains("--window must be positive"));
        let err = run(&["audit", "diff", "/nonexistent/a.json"]).unwrap_err();
        assert!(err.message().contains("usage"));
        let err = run(&["audit", "bisect", "--packets", "60"]).unwrap_err();
        assert!(err.message().contains("nothing to compare"));
        let err = run(&["audit", "ledger"]).unwrap_err();
        assert!(err.message().contains("--check | --update"));
        let err = run(&["audit", "run", "/nonexistent/cfg.json"]).unwrap_err();
        assert!(err.message().contains("cannot read"));
        // Every one of those is an ordinary error: exit code 1.
        assert_eq!(err.exit_code(), 1);
    }
}

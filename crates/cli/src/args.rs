//! Tiny dependency-free argument parsing: positional arguments plus
//! `--key value` options.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// `--key value` pairs become options; a trailing `--key` with no
    /// value (or one followed by another option) becomes a flag;
    /// everything else is positional.
    #[must_use]
    pub fn parse<I, S>(raw: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let raw: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(key) = token.strip_prefix("--") {
                let next_is_value = raw.get(i + 1).is_some_and(|n| !n.starts_with("--"));
                if next_is_value {
                    out.options.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                out.positional.push(token.clone());
                i += 1;
            }
        }
        out
    }

    /// Positional argument `idx`, if present.
    #[must_use]
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// Number of positional arguments.
    #[must_use]
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// The value of option `--key`, if given.
    #[must_use]
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// `true` if bare flag `--key` was given.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parses option `--key` as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value fails to parse.
    pub fn option_as<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.option(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{key}: `{raw}`")),
        }
    }

    /// Parses a comma-separated `--key a,b,c` list of `T`s.
    ///
    /// # Errors
    ///
    /// Returns a message if any element fails to parse.
    pub fn option_list<T: std::str::FromStr>(
        &self,
        key: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, String> {
        match self.option(key) {
            None => Ok(default),
            Some(raw) => raw
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| format!("invalid element `{part}` in --{key}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positional_options_and_flags() {
        let args = Args::parse([
            "run", "cfg.json", "--seed", "7", "--quiet", "--out", "o.json",
        ]);
        assert_eq!(args.positional(0), Some("run"));
        assert_eq!(args.positional(1), Some("cfg.json"));
        assert_eq!(args.positional_len(), 2);
        assert_eq!(args.option("seed"), Some("7"));
        assert_eq!(args.option("out"), Some("o.json"));
        assert!(args.flag("quiet"));
        assert!(!args.flag("missing"));
    }

    #[test]
    fn typed_option_parsing() {
        let args = Args::parse(["--rho", "2.5"]);
        assert_eq!(args.option_as("rho", 0.0), Ok(2.5));
        assert_eq!(args.option_as("missing", 7u32), Ok(7));
        assert!(args.option_as::<f64>("rho", 0.0).is_ok());
        let bad = Args::parse(["--rho", "abc"]);
        assert!(bad.option_as::<f64>("rho", 0.0).is_err());
    }

    #[test]
    fn list_option_parsing() {
        let args = Args::parse(["--points", "2, 4,8"]);
        assert_eq!(
            args.option_list("points", vec![1.0]),
            Ok(vec![2.0, 4.0, 8.0])
        );
        assert_eq!(
            Args::parse(["x"]).option_list("points", vec![1.0f64]),
            Ok(vec![1.0])
        );
    }

    #[test]
    fn trailing_flag() {
        let args = Args::parse(["calc", "--verbose"]);
        assert!(args.flag("verbose"));
        assert_eq!(args.option("verbose"), None);
    }

    #[test]
    fn empty_input() {
        let args = Args::parse(Vec::<String>::new());
        assert_eq!(args.positional(0), None);
        assert_eq!(args.positional_len(), 0);
    }
}

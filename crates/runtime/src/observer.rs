//! Progress and observability hooks.
//!
//! The runtime reports queue/running/done transitions through the
//! [`RunObserver`] trait so front ends can render progress without the
//! orchestration code knowing about terminals. Shipped implementations:
//! [`NullObserver`] (silence), [`StderrReporter`] (the CLI's default
//! live line with throughput and ETA), and [`CountingObserver`] (exact
//! computed/cached counters, used by tests to prove warm-cache reruns
//! perform zero new simulations).

use crate::manifest::JobStatus;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Receives run-progress events. Methods default to no-ops so observers
/// implement only what they need. Called from pool worker threads, so
/// implementations must be `Sync`.
pub trait RunObserver: Sync {
    /// A run of `total` jobs is starting.
    fn run_started(&self, total: usize) {
        let _ = total;
    }

    /// Job `index` began executing (not called for cache hits).
    fn job_started(&self, index: usize) {
        let _ = index;
    }

    /// Job `index` finished with `status` after `wall` of work.
    fn job_finished(&self, index: usize, status: JobStatus, wall: Duration) {
        let _ = (index, status, wall);
    }

    /// The whole run finished.
    fn run_finished(&self, computed: usize, cached: usize, wall: Duration) {
        let _ = (computed, cached, wall);
    }
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// Counts computed versus cache-served jobs. The test hook proving that
/// a warm-cache rerun performs zero new simulations.
#[derive(Debug, Default)]
pub struct CountingObserver {
    computed: AtomicUsize,
    cached: AtomicUsize,
    started: AtomicUsize,
}

impl CountingObserver {
    /// A fresh counter set.
    #[must_use]
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// Jobs whose function actually ran.
    #[must_use]
    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::SeqCst)
    }

    /// Jobs served from the cache.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cached.load(Ordering::SeqCst)
    }

    /// `job_started` events seen (equals `computed()` once a run ends).
    #[must_use]
    pub fn started(&self) -> usize {
        self.started.load(Ordering::SeqCst)
    }
}

impl RunObserver for CountingObserver {
    fn job_started(&self, _index: usize) {
        self.started.fetch_add(1, Ordering::SeqCst);
    }

    fn job_finished(&self, _index: usize, status: JobStatus, _wall: Duration) {
        match status {
            JobStatus::Computed => self.computed.fetch_add(1, Ordering::SeqCst),
            JobStatus::Cached => self.cached.fetch_add(1, Ordering::SeqCst),
        };
    }
}

/// The CLI's default progress reporter.
///
/// Progress lines are rate-limited to at most one every
/// [`StderrReporter::MIN_INTERVAL`] (~4/sec) — a multi-thousand-job
/// sweep no longer floods stderr — and the final job of a run always
/// prints. Throughput and ETA extrapolate from *computed* jobs only:
/// cache hits complete in microseconds, and counting them used to make
/// warm-cache reruns report absurd rates and ETAs.
#[derive(Debug)]
pub struct StderrReporter {
    state: Mutex<ReporterState>,
}

#[derive(Debug)]
struct ReporterState {
    total: usize,
    done: usize,
    cached: usize,
    computed: usize,
    started_at: Instant,
    last_line_at: Option<Instant>,
}

impl StderrReporter {
    /// Minimum spacing between progress lines (the final line of a run is
    /// exempt).
    pub const MIN_INTERVAL: Duration = Duration::from_millis(250);

    /// A reporter with zeroed counters (they arm on `run_started`).
    #[must_use]
    pub fn new() -> Self {
        StderrReporter {
            state: Mutex::new(ReporterState {
                total: 0,
                done: 0,
                cached: 0,
                computed: 0,
                started_at: Instant::now(),
                last_line_at: None,
            }),
        }
    }
}

impl Default for StderrReporter {
    fn default() -> Self {
        StderrReporter::new()
    }
}

/// Renders one progress line. Throughput and ETA come from computed jobs
/// only; with zero computed jobs so far (pure cache replay) there is no
/// meaningful extrapolation, so neither is shown.
fn progress_line(
    done: usize,
    total: usize,
    cached: usize,
    computed: usize,
    elapsed: f64,
) -> String {
    if computed == 0 {
        return format!("[runtime] {done}/{total} done ({cached} cached)");
    }
    let rate = computed as f64 / elapsed.max(1e-9);
    let remaining = total.saturating_sub(done);
    let eta = remaining as f64 / rate;
    format!(
        "[runtime] {done}/{total} done ({cached} cached), {rate:.1} jobs/s computed, eta {eta:.1}s"
    )
}

impl RunObserver for StderrReporter {
    fn run_started(&self, total: usize) {
        let mut state = self.state.lock().expect("reporter lock");
        state.total = total;
        state.done = 0;
        state.cached = 0;
        state.computed = 0;
        state.started_at = Instant::now();
        state.last_line_at = None;
        eprintln!("[runtime] {total} jobs queued");
    }

    fn job_finished(&self, _index: usize, status: JobStatus, _wall: Duration) {
        let mut state = self.state.lock().expect("reporter lock");
        state.done += 1;
        match status {
            JobStatus::Cached => state.cached += 1,
            JobStatus::Computed => state.computed += 1,
        }
        let is_last = state.done == state.total;
        let due = state
            .last_line_at
            .is_none_or(|at| at.elapsed() >= StderrReporter::MIN_INTERVAL);
        if !is_last && !due {
            return;
        }
        state.last_line_at = Some(Instant::now());
        eprintln!(
            "{}",
            progress_line(
                state.done,
                state.total,
                state.cached,
                state.computed,
                state.started_at.elapsed().as_secs_f64(),
            )
        );
    }

    fn run_finished(&self, computed: usize, cached: usize, wall: Duration) {
        eprintln!(
            "[runtime] run complete: {computed} computed, {cached} cached in {:.2}s",
            wall.as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_line_extrapolates_from_computed_jobs_only() {
        // 10 computed in 2s: 5 jobs/s; 90 remaining => eta 18s. The 100
        // cache hits that also completed must not inflate the rate.
        let line = progress_line(110, 200, 100, 10, 2.0);
        assert_eq!(
            line,
            "[runtime] 110/200 done (100 cached), 5.0 jobs/s computed, eta 18.0s"
        );
    }

    #[test]
    fn pure_cache_replay_reports_no_eta() {
        let line = progress_line(50, 100, 50, 0, 0.001);
        assert_eq!(line, "[runtime] 50/100 done (50 cached)");
        assert!(
            !line.contains("eta"),
            "zero computed jobs => no absurd extrapolation"
        );
    }

    #[test]
    fn reporter_throttles_but_always_prints_the_final_job() {
        // Drive the reporter through a burst far faster than
        // MIN_INTERVAL; only the first line and the final job may print.
        // We can't capture stderr portably here, so assert on the state
        // transitions that gate printing instead.
        let reporter = StderrReporter::new();
        reporter.run_started(100);
        for i in 0..100 {
            reporter.job_finished(i, JobStatus::Computed, Duration::from_micros(10));
        }
        let state = reporter.state.lock().unwrap();
        assert_eq!(state.done, 100);
        assert_eq!(state.computed, 100);
        // The final job printed (stamping last_line_at), and the stamp
        // count is bounded by the throttle: with everything inside one
        // 250ms window only jobs 1 and 100 can have printed.
        assert!(state.last_line_at.is_some());
    }

    #[test]
    fn counting_observer_tallies_by_status() {
        let counter = CountingObserver::new();
        counter.job_started(0);
        counter.job_finished(0, JobStatus::Computed, Duration::from_millis(5));
        counter.job_finished(1, JobStatus::Cached, Duration::ZERO);
        counter.job_finished(2, JobStatus::Cached, Duration::ZERO);
        assert_eq!(counter.computed(), 1);
        assert_eq!(counter.cached(), 2);
        assert_eq!(counter.started(), 1);
    }
}

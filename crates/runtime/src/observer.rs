//! Progress and observability hooks.
//!
//! The runtime reports queue/running/done transitions through the
//! [`RunObserver`] trait so front ends can render progress without the
//! orchestration code knowing about terminals. Shipped implementations:
//! [`NullObserver`] (silence), [`StderrReporter`] (the CLI's default
//! live line with throughput and ETA), and [`CountingObserver`] (exact
//! computed/cached counters, used by tests to prove warm-cache reruns
//! perform zero new simulations).

use crate::manifest::JobStatus;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Receives run-progress events. Methods default to no-ops so observers
/// implement only what they need. Called from pool worker threads, so
/// implementations must be `Sync`.
pub trait RunObserver: Sync {
    /// A run of `total` jobs is starting.
    fn run_started(&self, total: usize) {
        let _ = total;
    }

    /// Job `index` began executing (not called for cache hits).
    fn job_started(&self, index: usize) {
        let _ = index;
    }

    /// Job `index` finished with `status` after `wall` of work.
    fn job_finished(&self, index: usize, status: JobStatus, wall: Duration) {
        let _ = (index, status, wall);
    }

    /// The whole run finished.
    fn run_finished(&self, computed: usize, cached: usize, wall: Duration) {
        let _ = (computed, cached, wall);
    }
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// Counts computed versus cache-served jobs. The test hook proving that
/// a warm-cache rerun performs zero new simulations.
#[derive(Debug, Default)]
pub struct CountingObserver {
    computed: AtomicUsize,
    cached: AtomicUsize,
    started: AtomicUsize,
}

impl CountingObserver {
    /// A fresh counter set.
    #[must_use]
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// Jobs whose function actually ran.
    #[must_use]
    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::SeqCst)
    }

    /// Jobs served from the cache.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cached.load(Ordering::SeqCst)
    }

    /// `job_started` events seen (equals `computed()` once a run ends).
    #[must_use]
    pub fn started(&self) -> usize {
        self.started.load(Ordering::SeqCst)
    }
}

impl RunObserver for CountingObserver {
    fn job_started(&self, _index: usize) {
        self.started.fetch_add(1, Ordering::SeqCst);
    }

    fn job_finished(&self, _index: usize, status: JobStatus, _wall: Duration) {
        match status {
            JobStatus::Computed => self.computed.fetch_add(1, Ordering::SeqCst),
            JobStatus::Cached => self.cached.fetch_add(1, Ordering::SeqCst),
        };
    }
}

/// The CLI's default progress reporter: one stderr line per completed
/// job with done/total counts, cache hits, throughput, and a naive ETA
/// extrapolated from mean job time.
#[derive(Debug)]
pub struct StderrReporter {
    state: Mutex<ReporterState>,
}

#[derive(Debug)]
struct ReporterState {
    total: usize,
    done: usize,
    cached: usize,
    started_at: Instant,
}

impl StderrReporter {
    /// A reporter with zeroed counters (they arm on `run_started`).
    #[must_use]
    pub fn new() -> Self {
        StderrReporter {
            state: Mutex::new(ReporterState {
                total: 0,
                done: 0,
                cached: 0,
                started_at: Instant::now(),
            }),
        }
    }
}

impl Default for StderrReporter {
    fn default() -> Self {
        StderrReporter::new()
    }
}

impl RunObserver for StderrReporter {
    fn run_started(&self, total: usize) {
        let mut state = self.state.lock().expect("reporter lock");
        state.total = total;
        state.done = 0;
        state.cached = 0;
        state.started_at = Instant::now();
        eprintln!("[runtime] {total} jobs queued");
    }

    fn job_finished(&self, _index: usize, status: JobStatus, _wall: Duration) {
        let mut state = self.state.lock().expect("reporter lock");
        state.done += 1;
        if status == JobStatus::Cached {
            state.cached += 1;
        }
        let elapsed = state.started_at.elapsed();
        let rate = state.done as f64 / elapsed.as_secs_f64().max(1e-9);
        let remaining = state.total.saturating_sub(state.done);
        let eta = remaining as f64 / rate.max(1e-9);
        eprintln!(
            "[runtime] {}/{} done ({} cached), {:.1} jobs/s, eta {:.1}s",
            state.done, state.total, state.cached, rate, eta
        );
    }

    fn run_finished(&self, computed: usize, cached: usize, wall: Duration) {
        eprintln!(
            "[runtime] run complete: {computed} computed, {cached} cached in {:.2}s",
            wall.as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observer_tallies_by_status() {
        let counter = CountingObserver::new();
        counter.job_started(0);
        counter.job_finished(0, JobStatus::Computed, Duration::from_millis(5));
        counter.job_finished(1, JobStatus::Cached, Duration::ZERO);
        counter.job_finished(2, JobStatus::Cached, Duration::ZERO);
        assert_eq!(counter.computed(), 1);
        assert_eq!(counter.cached(), 2);
        assert_eq!(counter.started(), 1);
    }
}

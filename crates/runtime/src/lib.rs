//! # tempriv-runtime — deterministic experiment orchestration
//!
//! Every figure in this repository is a sweep of independent simulations.
//! This crate runs those jobs on a **bounded worker pool** instead of one
//! thread per job, memoizes finished jobs in a **content-addressed result
//! cache**, journals progress into **JSONL run manifests** that support
//! resuming interrupted runs, and reports liveness through a pluggable
//! **observer** hook.
//!
//! The crate is deliberately generic — it knows nothing about sensor
//! networks. A job is an index plus a stable cache key; its output is any
//! `serde`-serializable value. `tempriv-core` layers the experiment
//! semantics (sweep kinds, config digests) on top.
//!
//! Determinism contract: jobs must be pure functions of their index (no
//! shared mutable state, no ambient randomness). The pool then guarantees
//! bit-for-bit identical output vectors for any worker count, because
//! results are reassembled in index order no matter which worker computed
//! them or when.
//!
//! ```
//! use tempriv_runtime::{Runtime, WorkerPool};
//!
//! let runtime = Runtime::new(WorkerPool::with_workers(4));
//! let keys: Vec<String> = (0..8).map(|i| format!("square:{i}")).collect();
//! let squares = runtime.run("squares", "{}", &keys, |i| (i as u64) * (i as u64));
//! assert_eq!(squares[7], 49);
//! // A second run with the same keys is served from the cache.
//! let again = runtime.run("squares", "{}", &keys, |_| unreachable!("cached"));
//! assert_eq!(squares, again);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod manifest;
pub mod observer;
pub mod pool;
pub mod runner;
pub mod telemetry;

pub use cache::{content_digest, ResultCache};
pub use manifest::{JobRecord, JobStatus, ManifestHeader, ManifestReader, ManifestWriter};
pub use observer::{CountingObserver, NullObserver, RunObserver, StderrReporter};
pub use pool::WorkerPool;
pub use runner::{Runtime, RuntimeBuilder};
pub use telemetry::TelemetrySink;

//! JSONL run manifests.
//!
//! A manifest journals one orchestrated run as newline-delimited JSON:
//! the first line is a [`ManifestHeader`] naming the experiment and its
//! verbatim parameter JSON (enough for `tempriv resume` to rebuild the
//! job list), and each subsequent line is a [`JobRecord`] appended — and
//! flushed — the moment that job finishes. A crash therefore leaves a
//! readable prefix; [`ManifestReader`] tolerates a torn final line.

use serde::{Deserialize, Serialize};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// The job function actually ran.
    Computed,
    /// The result came out of the cache; no new simulation happened.
    Cached,
}

/// The first line of a manifest: what ran and with which parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestHeader {
    /// Experiment kind (e.g. `"fig2"`), dispatched on by `resume`.
    pub experiment: String,
    /// The experiment's parameters, as the verbatim JSON the caller
    /// serialized (kept as a string so the runtime stays generic).
    pub params_json: String,
    /// Total number of jobs in the run.
    pub jobs: usize,
    /// Disk cache directory the run used, if any — `resume` reattaches
    /// to the same cache.
    pub cache_dir: Option<String>,
}

/// One finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job index within the run (also the output row position).
    pub index: usize,
    /// Content-addressed cache key of the job.
    pub key: String,
    /// Computed or served from cache.
    pub status: JobStatus,
    /// Wall-clock time spent on the job, in milliseconds.
    pub wall_ms: u64,
    /// Digest of the serialized outcome (same content-identity family as
    /// the cache keys), for cheap cross-run comparisons.
    pub outcome_digest: String,
    /// Per-job telemetry blob (JSON, produced by an instrumented run),
    /// attached only when the run collected telemetry and the job was
    /// actually computed. `None` for cache-served jobs and for manifests
    /// written before telemetry existed.
    #[serde(default)]
    pub telemetry: Option<String>,
    /// Per-job flight-recorder trace blob (JSON), attached only when the
    /// run traced packet lifecycles and the job was actually computed.
    /// `None` for cache-served jobs and for manifests written before
    /// tracing existed.
    #[serde(default)]
    pub trace: Option<String>,
    /// Per-job streaming-privacy series blob (JSON), attached only when
    /// the run enabled the privacy observatory and the job was actually
    /// computed. `None` for cache-served jobs and for manifests written
    /// before the observatory existed.
    #[serde(default)]
    pub privacy: Option<String>,
    /// Per-job cross-layer span/profile blob (JSON), attached only when
    /// the run traced spans and the job was actually computed. `None`
    /// for cache-served jobs and for manifests written before span
    /// tracing existed.
    #[serde(default)]
    pub spans: Option<String>,
    /// Per-job determinism-audit digest blob (JSON `RunDigest`: windowed
    /// checkpoints plus the run-root digest), attached only when the run
    /// enabled auditing and the job was actually computed. `None` for
    /// cache-served jobs and for manifests written before auditing
    /// existed.
    #[serde(default)]
    pub audit: Option<String>,
    /// Per-job allocation-ledger blob (JSON: per-slot allocs/bytes plus
    /// allocs-per-delivered figures), attached only when the run enabled
    /// memory profiling and the job was actually computed. `None` for
    /// cache-served jobs and for manifests written before the memory
    /// observatory existed.
    #[serde(default)]
    pub mem: Option<String>,
}

/// An append-only, line-buffered manifest writer (thread-safe: jobs
/// finish on pool workers).
///
/// Every record is serialized to a complete line first and handed to the
/// OS in a single `write_all` + flush, so a reader never observes a
/// partially written record from a *live* writer — only a hard kill mid
/// `write_all` can tear a line, and [`ManifestReader`] tolerates that.
/// Dropping the writer flushes any buffered bytes as a last resort, so a
/// panic that unwinds through a pool worker still lands the records that
/// were already accepted.
#[derive(Debug)]
pub struct ManifestWriter {
    file: Mutex<BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl ManifestWriter {
    /// Creates (truncating) a manifest at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or written.
    pub fn create(path: impl Into<PathBuf>, header: &ManifestHeader) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = BufWriter::new(std::fs::File::create(&path)?);
        let mut line = serde_json::to_string(header).expect("header serializes");
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(ManifestWriter {
            file: Mutex::new(file),
            path,
        })
    }

    /// Appends one job record and flushes it to disk immediately.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the line cannot be written.
    pub fn record(&self, record: &JobRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record).expect("record serializes");
        line.push('\n');
        let mut file = self.file.lock().expect("manifest lock");
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Where this manifest lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ManifestWriter {
    fn drop(&mut self) {
        // Best-effort flush on shutdown/unwind; each record already
        // flushes itself, this only matters if a future edit buffers.
        if let Ok(mut file) = self.file.lock() {
            let _ = file.flush();
        }
    }
}

/// A parsed manifest: header plus every intact job record.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestReader {
    /// The run header.
    pub header: ManifestHeader,
    /// Every fully written job record, in file order.
    pub records: Vec<JobRecord>,
}

impl ManifestReader {
    /// Reads a manifest, tolerating a truncated (torn) final line.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read or its header line
    /// is missing/corrupt — a torn *job* line is skipped, a torn header
    /// is fatal.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| format!("manifest {} is empty", path.display()))?;
        let header: ManifestHeader = serde_json::from_str(header_line)
            .map_err(|e| format!("manifest {} has a corrupt header: {e}", path.display()))?;
        let mut records = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JobRecord>(line) {
                Ok(record) => records.push(record),
                // A torn trailing line from an interrupted run: ignore it;
                // the job will simply be re-run (or served from cache).
                Err(_) => break,
            }
        }
        Ok(ManifestReader { header, records })
    }

    /// Indices of jobs the manifest records as finished.
    #[must_use]
    pub fn completed_indices(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ManifestHeader {
        ManifestHeader {
            experiment: "fig2".to_string(),
            params_json: "{\"seed\":2007}".to_string(),
            jobs: 3,
            cache_dir: None,
        }
    }

    fn record(index: usize) -> JobRecord {
        JobRecord {
            index,
            key: format!("key{index}"),
            status: JobStatus::Computed,
            wall_ms: 12,
            outcome_digest: "00ff".to_string(),
            telemetry: None,
            trace: None,
            privacy: None,
            spans: None,
            audit: None,
            mem: None,
        }
    }

    #[test]
    fn pre_telemetry_records_still_parse() {
        // Manifests written before the telemetry field existed must stay
        // readable: the field defaults to None when absent.
        let line = "{\"index\":0,\"key\":\"k\",\"status\":\"Computed\",\
                    \"wall_ms\":5,\"outcome_digest\":\"ab\"}";
        let old: JobRecord = serde_json::from_str(line).unwrap();
        assert_eq!(old.telemetry, None);
        assert_eq!(old.trace, None);
        assert_eq!(old.privacy, None);
        assert_eq!(old.spans, None);
        assert_eq!(old.audit, None);
        assert_eq!(old.mem, None);
        assert_eq!(old.index, 0);
    }

    #[test]
    fn mem_blob_round_trips() {
        let mut r = record(5);
        r.mem = Some("{\"slots\":[],\"total_allocs\":0}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn audit_blob_round_trips() {
        let mut r = record(4);
        r.audit = Some("{\"checkpoints\":[],\"root\":\"00\"}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn spans_blob_round_trips() {
        let mut r = record(3);
        r.spans = Some("{\"spans\":[],\"profiles\":[]}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn privacy_blob_round_trips() {
        let mut r = record(2);
        r.privacy = Some("{\"points\":[]}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn trace_blob_round_trips() {
        let mut r = record(1);
        r.trace = Some("{\"traceEvents\":[]}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn telemetry_blob_round_trips() {
        let mut r = record(0);
        r.telemetry = Some("{\"nodes\":[]}".to_string());
        let line = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn manifest_round_trips() {
        let path = std::env::temp_dir().join("tempriv_runtime_manifest_test.jsonl");
        let writer = ManifestWriter::create(&path, &header()).unwrap();
        writer.record(&record(0)).unwrap();
        writer.record(&record(1)).unwrap();
        drop(writer);
        let back = ManifestReader::read(&path).unwrap();
        assert_eq!(back.header, header());
        assert_eq!(back.records, vec![record(0), record(1)]);
        assert_eq!(back.completed_indices(), vec![0, 1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = std::env::temp_dir().join("tempriv_runtime_manifest_torn_test.jsonl");
        let writer = ManifestWriter::create(&path, &header()).unwrap();
        writer.record(&record(0)).unwrap();
        drop(writer);
        // Simulate a crash mid-write of the second record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"index\":1,\"key\":\"ke");
        std::fs::write(&path, text).unwrap();
        let back = ManifestReader::read(&path).unwrap();
        assert_eq!(back.records, vec![record(0)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_is_fatal() {
        let path = std::env::temp_dir().join("tempriv_runtime_manifest_bad_header.jsonl");
        std::fs::write(&path, "{\"experiment\":").unwrap();
        assert!(ManifestReader::read(&path).unwrap_err().contains("header"));
        let _ = std::fs::remove_file(&path);
    }
}

//! Content-addressed result cache.
//!
//! Keys are stable hex digests of whatever identifies a job (experiment
//! kind + canonical config JSON + seed — computed by the caller via
//! [`content_digest`]); values are the job outputs serialized as JSON.
//! The cache is an in-memory map with an optional disk tier (one file per
//! key), so overlapping re-runs of a sweep only simulate the points they
//! have not seen before — across processes when a disk directory is
//! configured.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A 64-bit FNV-1a digest of arbitrary bytes, rendered as fixed-width
/// hex — the canonical [`tempriv_telemetry::audit::digest`] family, so
/// cache keys, serve job keys, outcome fingerprints, and audit
/// checkpoints share one notion of content identity and can never
/// drift apart.
pub use tempriv_telemetry::audit::digest::content_digest;

/// A thread-safe key → JSON store with an optional disk tier.
#[derive(Debug, Default)]
pub struct ResultCache {
    memory: Mutex<HashMap<String, String>>,
    disk_dir: Option<PathBuf>,
}

impl ResultCache {
    /// A purely in-memory cache (lives as long as the process).
    #[must_use]
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// A cache backed by `dir`: entries are written as
    /// `<dir>/<key>.json` and survive the process.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: Some(dir),
        })
    }

    /// The disk directory, if this cache has one.
    #[must_use]
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    /// Looks up a key, falling back to (and re-warming from) disk.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        if let Some(hit) = self.memory.lock().expect("cache lock").get(key) {
            return Some(hit.clone());
        }
        let path = self.entry_path(key)?;
        let value = std::fs::read_to_string(path).ok()?;
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), value.clone());
        Some(value)
    }

    /// Stores a value under a key (memory, then disk if configured).
    ///
    /// Disk write failures are reported but do not fail the run — the
    /// in-memory tier already holds the value.
    pub fn put(&self, key: &str, value: &str) {
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), value.to_string());
        if let Some(path) = self.entry_path(key) {
            if let Err(e) = std::fs::write(&path, value) {
                eprintln!("warning: cache write {} failed: {e}", path.display());
            }
        }
    }

    /// Number of entries visible to this cache (memory plus any disk
    /// entries not yet loaded).
    #[must_use]
    pub fn len(&self) -> usize {
        let mut keys: std::collections::HashSet<String> = self
            .memory
            .lock()
            .expect("cache lock")
            .keys()
            .cloned()
            .collect();
        if let Some(dir) = &self.disk_dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if let Some(name) = entry.file_name().to_str() {
                        if let Some(key) = name.strip_suffix(".json") {
                            keys.insert(key.to_string());
                        }
                    }
                }
            }
        }
        keys.len()
    }

    /// `true` when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry, including the disk tier.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while deleting files.
    pub fn clear(&self) -> std::io::Result<usize> {
        let removed = self.len();
        self.memory.lock().expect("cache lock").clear();
        if let Some(dir) = &self.disk_dir {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".json"))
                {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = content_digest(b"fig2:config:seed=7");
        let b = content_digest(b"fig2:config:seed=7");
        let c = content_digest(b"fig2:config:seed=8");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        assert_eq!(cache.get("k"), None);
        cache.put("k", "{\"x\":1}");
        assert_eq!(cache.get("k").as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_cache_persists_across_instances() {
        let dir = std::env::temp_dir().join("tempriv_runtime_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            cache.put("abc123", "[1,2,3]");
        }
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            assert_eq!(cache.get("abc123").as_deref(), Some("[1,2,3]"));
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.clear().unwrap(), 1);
            assert!(cache.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Per-job telemetry collection for instrumented runs.
//!
//! The runtime stays generic over what jobs compute, so telemetry flows
//! through it as opaque JSON blobs: a job that instruments its work
//! attaches one blob to its slot in the [`TelemetrySink`], and the
//! runner journals the blob into that job's manifest record. Cache-served
//! jobs do no work, so they attach nothing — telemetry describes what
//! actually ran, never what a previous run measured.
//!
//! The sink never participates in cache keys or result digests, so
//! enabling telemetry cannot change experiment outputs.

use std::sync::Mutex;

/// A slot-per-job mailbox for telemetry blobs, shared between the
/// runtime and job closures.
///
/// Thread-safe: jobs run on pool workers, each writing only its own
/// slot.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    slots: Mutex<Vec<Option<String>>>,
}

impl TelemetrySink {
    /// An empty sink; [`TelemetrySink::reset`] sizes it per run.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySink::default()
    }

    /// Clears the sink and resizes it to `jobs` empty slots. Called by
    /// the runtime at the start of each run.
    pub fn reset(&self, jobs: usize) {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        slots.clear();
        slots.resize(jobs, None);
    }

    /// Attaches job `index`'s telemetry blob (JSON). Silently ignored if
    /// the sink was not sized for `index` — a job can always attach
    /// without caring whether telemetry collection is active this run.
    pub fn attach(&self, index: usize, json: impl Into<String>) {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s blob, if one was attached.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<String> {
        let slots = self.slots.lock().expect("telemetry sink lock");
        slots.get(index).and_then(Clone::clone)
    }

    /// Number of slots (jobs) the sink is currently sized for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("telemetry sink lock").len()
    }

    /// `true` when the sink has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All blobs in job order (one entry per slot), draining the sink.
    #[must_use]
    pub fn take_all(&self) -> Vec<Option<String>> {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        std::mem::take(&mut *slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_take_in_job_order() {
        let sink = TelemetrySink::new();
        sink.reset(3);
        sink.attach(2, "{\"c\":1}");
        sink.attach(0, "{\"a\":1}");
        assert_eq!(sink.get(0).as_deref(), Some("{\"a\":1}"));
        assert_eq!(sink.get(1), None);
        let all = sink.take_all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].as_deref(), Some("{\"a\":1}"));
        assert_eq!(all[1], None);
        assert_eq!(all[2].as_deref(), Some("{\"c\":1}"));
        assert!(sink.is_empty(), "take_all drains");
    }

    #[test]
    fn attach_out_of_range_is_ignored() {
        let sink = TelemetrySink::new();
        sink.reset(1);
        sink.attach(5, "{}");
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.get(5), None);
    }

    #[test]
    fn reset_clears_previous_run() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach(0, "old");
        sink.reset(2);
        assert_eq!(sink.get(0), None);
    }
}

//! Per-job telemetry collection for instrumented runs.
//!
//! The runtime stays generic over what jobs compute, so telemetry flows
//! through it as opaque JSON blobs: a job that instruments its work
//! attaches one blob to its slot in the [`TelemetrySink`], and the
//! runner journals the blob into that job's manifest record. Cache-served
//! jobs do no work, so they attach nothing — telemetry describes what
//! actually ran, never what a previous run measured.
//!
//! The sink never participates in cache keys or result digests, so
//! enabling telemetry cannot change experiment outputs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A slot-per-job mailbox for telemetry blobs, shared between the
/// runtime and job closures.
///
/// Thread-safe: jobs run on pool workers, each writing only its own
/// slot. Next to the telemetry slots the sink keeps four parallel blob
/// families: *trace* slots for flight-recorder blobs (with the ring
/// capacity the run's recorders should use,
/// [`TelemetrySink::trace_capacity`], 0 = tracing off), *privacy*
/// slots for streaming privacy-observatory series (with the snapshot
/// interval [`TelemetrySink::privacy_interval`], 0 = observatory off),
/// *span* slots for cross-layer span/profile blobs (with the phase
/// switch batch [`TelemetrySink::span_batch`], 0 = span tracing off),
/// *audit* slots for determinism-audit digest blobs (with the
/// checkpoint window [`TelemetrySink::digest_window`], 0 = audit off),
/// and *mem* slots for allocation-ledger blobs (gated by
/// [`TelemetrySink::mem_profile`], off by default).
///
/// For span tracing the sink also carries a root trace context — two
/// raw ids set by the layer that minted the trace (e.g. the HTTP
/// server) — and an epoch instant fixed at construction, which job
/// spans use as their time zero. Both survive [`TelemetrySink::reset`]
/// so per-run reslotting cannot race a caller that configured the trace
/// before submitting work.
#[derive(Debug)]
pub struct TelemetrySink {
    slots: Mutex<Vec<Option<String>>>,
    trace_slots: Mutex<Vec<Option<String>>>,
    trace_capacity: AtomicUsize,
    privacy_slots: Mutex<Vec<Option<String>>>,
    privacy_interval: AtomicUsize,
    span_slots: Mutex<Vec<Option<String>>>,
    span_batch: AtomicUsize,
    audit_slots: Mutex<Vec<Option<String>>>,
    digest_window: AtomicUsize,
    mem_slots: Mutex<Vec<Option<String>>>,
    mem_profile: AtomicUsize,
    root_trace_id: AtomicU64,
    root_span_id: AtomicU64,
    epoch: Instant,
}

impl Default for TelemetrySink {
    fn default() -> Self {
        TelemetrySink::new()
    }
}

impl TelemetrySink {
    /// An empty sink; [`TelemetrySink::reset`] sizes it per run.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySink {
            slots: Mutex::new(Vec::new()),
            trace_slots: Mutex::new(Vec::new()),
            trace_capacity: AtomicUsize::new(0),
            privacy_slots: Mutex::new(Vec::new()),
            privacy_interval: AtomicUsize::new(0),
            span_slots: Mutex::new(Vec::new()),
            span_batch: AtomicUsize::new(0),
            audit_slots: Mutex::new(Vec::new()),
            digest_window: AtomicUsize::new(0),
            mem_slots: Mutex::new(Vec::new()),
            mem_profile: AtomicUsize::new(0),
            root_trace_id: AtomicU64::new(0),
            root_span_id: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Clears the sink and resizes it to `jobs` empty slots. Called by
    /// the runtime at the start of each run.
    pub fn reset(&self, jobs: usize) {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        slots.clear();
        slots.resize(jobs, None);
        drop(slots);
        let mut traces = self.trace_slots.lock().expect("trace sink lock");
        traces.clear();
        traces.resize(jobs, None);
        drop(traces);
        let mut privacy = self.privacy_slots.lock().expect("privacy sink lock");
        privacy.clear();
        privacy.resize(jobs, None);
        drop(privacy);
        let mut spans = self.span_slots.lock().expect("span sink lock");
        spans.clear();
        spans.resize(jobs, None);
        drop(spans);
        let mut audits = self.audit_slots.lock().expect("audit sink lock");
        audits.clear();
        audits.resize(jobs, None);
        drop(audits);
        let mut mems = self.mem_slots.lock().expect("mem sink lock");
        mems.clear();
        mems.resize(jobs, None);
    }

    /// Sets the flight-recorder ring capacity jobs should trace with.
    /// Zero (the default) disables tracing.
    pub fn set_trace_capacity(&self, capacity: usize) {
        self.trace_capacity.store(capacity, Ordering::Relaxed);
    }

    /// The flight-recorder ring capacity for this run (0 = tracing off).
    #[must_use]
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity.load(Ordering::Relaxed)
    }

    /// Attaches job `index`'s telemetry blob (JSON). Silently ignored if
    /// the sink was not sized for `index` — a job can always attach
    /// without caring whether telemetry collection is active this run.
    pub fn attach(&self, index: usize, json: impl Into<String>) {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s blob, if one was attached.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<String> {
        let slots = self.slots.lock().expect("telemetry sink lock");
        slots.get(index).and_then(Clone::clone)
    }

    /// Number of slots (jobs) the sink is currently sized for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("telemetry sink lock").len()
    }

    /// `true` when the sink has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All blobs in job order (one entry per slot), draining the sink.
    #[must_use]
    pub fn take_all(&self) -> Vec<Option<String>> {
        let mut slots = self.slots.lock().expect("telemetry sink lock");
        std::mem::take(&mut *slots)
    }

    /// Attaches job `index`'s flight-recorder trace blob (JSON). Like
    /// [`TelemetrySink::attach`], silently ignored when out of range.
    pub fn attach_trace(&self, index: usize, json: impl Into<String>) {
        let mut traces = self.trace_slots.lock().expect("trace sink lock");
        if let Some(slot) = traces.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s trace blob, if one was attached.
    #[must_use]
    pub fn get_trace(&self, index: usize) -> Option<String> {
        let traces = self.trace_slots.lock().expect("trace sink lock");
        traces.get(index).and_then(Clone::clone)
    }

    /// All trace blobs in job order, draining the trace slots.
    #[must_use]
    pub fn take_all_traces(&self) -> Vec<Option<String>> {
        let mut traces = self.trace_slots.lock().expect("trace sink lock");
        std::mem::take(&mut *traces)
    }

    /// Sets the delivery interval between streaming-privacy snapshots.
    /// Zero (the default) disables the privacy observatory.
    pub fn set_privacy_interval(&self, interval: usize) {
        self.privacy_interval.store(interval, Ordering::Relaxed);
    }

    /// The privacy snapshot interval for this run (0 = observatory off).
    #[must_use]
    pub fn privacy_interval(&self) -> usize {
        self.privacy_interval.load(Ordering::Relaxed)
    }

    /// Attaches job `index`'s privacy-series blob (JSON). Like
    /// [`TelemetrySink::attach`], silently ignored when out of range.
    pub fn attach_privacy(&self, index: usize, json: impl Into<String>) {
        let mut privacy = self.privacy_slots.lock().expect("privacy sink lock");
        if let Some(slot) = privacy.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s privacy blob, if one was attached.
    #[must_use]
    pub fn get_privacy(&self, index: usize) -> Option<String> {
        let privacy = self.privacy_slots.lock().expect("privacy sink lock");
        privacy.get(index).and_then(Clone::clone)
    }

    /// All privacy blobs in job order, draining the privacy slots.
    #[must_use]
    pub fn take_all_privacy(&self) -> Vec<Option<String>> {
        let mut privacy = self.privacy_slots.lock().expect("privacy sink lock");
        std::mem::take(&mut *privacy)
    }

    /// Sets the phase-switch batch span-tracing jobs should profile
    /// with. Zero (the default) disables span tracing and profiling.
    pub fn set_span_batch(&self, batch: usize) {
        self.span_batch.store(batch, Ordering::Relaxed);
    }

    /// The phase-switch batch for this run (0 = span tracing off).
    #[must_use]
    pub fn span_batch(&self) -> usize {
        self.span_batch.load(Ordering::Relaxed)
    }

    /// Sets the root trace context (raw trace id + root span id) for
    /// this sink's spans. Survives [`TelemetrySink::reset`]; a zero
    /// trace id means "no root context".
    pub fn set_root_ctx(&self, trace_id: u64, span_id: u64) {
        self.root_trace_id.store(trace_id, Ordering::Relaxed);
        self.root_span_id.store(span_id, Ordering::Relaxed);
    }

    /// The root `(trace id, span id)` pair, if one was set.
    #[must_use]
    pub fn root_ctx(&self) -> Option<(u64, u64)> {
        let trace_id = self.root_trace_id.load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some((trace_id, self.root_span_id.load(Ordering::Relaxed)))
    }

    /// The instant job spans measure from (fixed at construction, so
    /// every job attached to this sink shares one time zero).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Attaches job `index`'s span/profile blob (JSON). Like
    /// [`TelemetrySink::attach`], silently ignored when out of range.
    pub fn attach_spans(&self, index: usize, json: impl Into<String>) {
        let mut spans = self.span_slots.lock().expect("span sink lock");
        if let Some(slot) = spans.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s span blob, if one was attached.
    #[must_use]
    pub fn get_spans(&self, index: usize) -> Option<String> {
        let spans = self.span_slots.lock().expect("span sink lock");
        spans.get(index).and_then(Clone::clone)
    }

    /// All span blobs in job order, draining the span slots.
    #[must_use]
    pub fn take_all_spans(&self) -> Vec<Option<String>> {
        let mut spans = self.span_slots.lock().expect("span sink lock");
        std::mem::take(&mut *spans)
    }

    /// Sets the checkpoint window (events per digest window) audit-probe
    /// jobs should digest with. Zero (the default) disables auditing.
    pub fn set_digest_window(&self, window: usize) {
        self.digest_window.store(window, Ordering::Relaxed);
    }

    /// The audit checkpoint window for this run (0 = auditing off).
    #[must_use]
    pub fn digest_window(&self) -> usize {
        self.digest_window.load(Ordering::Relaxed)
    }

    /// Attaches job `index`'s audit-digest blob (JSON). Like
    /// [`TelemetrySink::attach`], silently ignored when out of range.
    pub fn attach_audit(&self, index: usize, json: impl Into<String>) {
        let mut audits = self.audit_slots.lock().expect("audit sink lock");
        if let Some(slot) = audits.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s audit blob, if one was attached.
    #[must_use]
    pub fn get_audit(&self, index: usize) -> Option<String> {
        let audits = self.audit_slots.lock().expect("audit sink lock");
        audits.get(index).and_then(Clone::clone)
    }

    /// All audit blobs in job order, draining the audit slots.
    #[must_use]
    pub fn take_all_audit(&self) -> Vec<Option<String>> {
        let mut audits = self.audit_slots.lock().expect("audit sink lock");
        std::mem::take(&mut *audits)
    }

    /// Turns per-job allocation-ledger collection on or off for this
    /// run. Off (the default) means jobs neither enable the counting
    /// allocator nor attach mem blobs.
    pub fn set_mem_profile(&self, on: bool) {
        self.mem_profile.store(usize::from(on), Ordering::Relaxed);
    }

    /// Whether jobs should collect allocation ledgers this run.
    #[must_use]
    pub fn mem_profile(&self) -> bool {
        self.mem_profile.load(Ordering::Relaxed) != 0
    }

    /// Attaches job `index`'s allocation-ledger blob (JSON). Like
    /// [`TelemetrySink::attach`], silently ignored when out of range.
    pub fn attach_mem(&self, index: usize, json: impl Into<String>) {
        let mut mems = self.mem_slots.lock().expect("mem sink lock");
        if let Some(slot) = mems.get_mut(index) {
            *slot = Some(json.into());
        }
    }

    /// A copy of job `index`'s mem blob, if one was attached.
    #[must_use]
    pub fn get_mem(&self, index: usize) -> Option<String> {
        let mems = self.mem_slots.lock().expect("mem sink lock");
        mems.get(index).and_then(Clone::clone)
    }

    /// All mem blobs in job order, draining the mem slots.
    #[must_use]
    pub fn take_all_mem(&self) -> Vec<Option<String>> {
        let mut mems = self.mem_slots.lock().expect("mem sink lock");
        std::mem::take(&mut *mems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_take_in_job_order() {
        let sink = TelemetrySink::new();
        sink.reset(3);
        sink.attach(2, "{\"c\":1}");
        sink.attach(0, "{\"a\":1}");
        assert_eq!(sink.get(0).as_deref(), Some("{\"a\":1}"));
        assert_eq!(sink.get(1), None);
        let all = sink.take_all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].as_deref(), Some("{\"a\":1}"));
        assert_eq!(all[1], None);
        assert_eq!(all[2].as_deref(), Some("{\"c\":1}"));
        assert!(sink.is_empty(), "take_all drains");
    }

    #[test]
    fn attach_out_of_range_is_ignored() {
        let sink = TelemetrySink::new();
        sink.reset(1);
        sink.attach(5, "{}");
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.get(5), None);
    }

    #[test]
    fn reset_clears_previous_run() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach(0, "old");
        sink.reset(2);
        assert_eq!(sink.get(0), None);
    }

    #[test]
    fn trace_slots_mirror_telemetry_slots() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach_trace(1, "{\"events\":[]}");
        assert_eq!(sink.get_trace(0), None);
        assert_eq!(sink.get_trace(1).as_deref(), Some("{\"events\":[]}"));
        sink.attach_trace(7, "{}"); // out of range: ignored
        let all = sink.take_all_traces();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].as_deref(), Some("{\"events\":[]}"));
        sink.reset(1);
        assert_eq!(sink.get_trace(1), None, "reset clears trace slots");
    }

    #[test]
    fn trace_capacity_defaults_to_off() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.trace_capacity(), 0);
        sink.set_trace_capacity(4096);
        assert_eq!(sink.trace_capacity(), 4096);
    }

    #[test]
    fn privacy_slots_mirror_telemetry_slots() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach_privacy(1, "{\"points\":[]}");
        assert_eq!(sink.get_privacy(0), None);
        assert_eq!(sink.get_privacy(1).as_deref(), Some("{\"points\":[]}"));
        sink.attach_privacy(7, "{}"); // out of range: ignored
        let all = sink.take_all_privacy();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].as_deref(), Some("{\"points\":[]}"));
        sink.reset(1);
        assert_eq!(sink.get_privacy(1), None, "reset clears privacy slots");
    }

    #[test]
    fn privacy_interval_defaults_to_off() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.privacy_interval(), 0);
        sink.set_privacy_interval(100);
        assert_eq!(sink.privacy_interval(), 100);
    }

    #[test]
    fn span_slots_mirror_telemetry_slots() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach_spans(1, "{\"spans\":[]}");
        assert_eq!(sink.get_spans(0), None);
        assert_eq!(sink.get_spans(1).as_deref(), Some("{\"spans\":[]}"));
        sink.attach_spans(7, "{}"); // out of range: ignored
        let all = sink.take_all_spans();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].as_deref(), Some("{\"spans\":[]}"));
        sink.reset(1);
        assert_eq!(sink.get_spans(1), None, "reset clears span slots");
    }

    #[test]
    fn span_batch_defaults_to_off() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.span_batch(), 0);
        sink.set_span_batch(64);
        assert_eq!(sink.span_batch(), 64);
    }

    #[test]
    fn audit_slots_mirror_telemetry_slots() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach_audit(1, "{\"root\":\"00\"}");
        assert_eq!(sink.get_audit(0), None);
        assert_eq!(sink.get_audit(1).as_deref(), Some("{\"root\":\"00\"}"));
        sink.attach_audit(7, "{}"); // out of range: ignored
        let all = sink.take_all_audit();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].as_deref(), Some("{\"root\":\"00\"}"));
        sink.reset(1);
        assert_eq!(sink.get_audit(1), None, "reset clears audit slots");
    }

    #[test]
    fn digest_window_defaults_to_off() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.digest_window(), 0);
        sink.set_digest_window(4096);
        assert_eq!(sink.digest_window(), 4096);
    }

    #[test]
    fn mem_slots_mirror_telemetry_slots() {
        let sink = TelemetrySink::new();
        sink.reset(2);
        sink.attach_mem(1, "{\"slots\":[]}");
        assert_eq!(sink.get_mem(0), None);
        assert_eq!(sink.get_mem(1).as_deref(), Some("{\"slots\":[]}"));
        sink.attach_mem(7, "{}"); // out of range: ignored
        let all = sink.take_all_mem();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].as_deref(), Some("{\"slots\":[]}"));
        sink.reset(1);
        assert_eq!(sink.get_mem(1), None, "reset clears mem slots");
    }

    #[test]
    fn mem_profile_defaults_to_off() {
        let sink = TelemetrySink::new();
        assert!(!sink.mem_profile());
        sink.set_mem_profile(true);
        assert!(sink.mem_profile());
        sink.set_mem_profile(false);
        assert!(!sink.mem_profile());
    }

    #[test]
    fn root_ctx_survives_reset() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.root_ctx(), None);
        sink.set_root_ctx(0xabc, 0xdef);
        sink.reset(3);
        assert_eq!(sink.root_ctx(), Some((0xabc, 0xdef)));
        let early = sink.epoch();
        assert!(sink.epoch() == early, "epoch is fixed at construction");
    }
}

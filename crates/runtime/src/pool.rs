//! The bounded worker pool.
//!
//! Replaces the seed implementation's thread-per-job spawning (which
//! created O(points × replications) OS threads) with a fixed set of
//! workers pulling job indices from a shared atomic counter — classic
//! self-scheduling work stealing without per-job allocation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded pool of scoped worker threads.
///
/// The pool holds no threads between calls: each [`WorkerPool::map_indexed`]
/// spawns at most `workers` scoped threads, which exit when the job
/// counter is exhausted. Output order is always job-index order, so the
/// result is bit-for-bit independent of the worker count and of
/// scheduling interleavings (provided the job function itself is a pure
/// function of its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: NonZeroUsize,
}

impl WorkerPool {
    /// A pool sized to the machine: `available_parallelism`, with a
    /// fallback of 4 when the parallelism cannot be queried.
    #[must_use]
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .unwrap_or_else(|_| NonZeroUsize::new(4).expect("4 is non-zero"));
        WorkerPool { workers }
    }

    /// A pool with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        WorkerPool {
            workers: NonZeroUsize::new(workers.max(1)).expect("clamped to >= 1"),
        }
    }

    /// The number of worker threads this pool will use.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Runs `f(0..n)` across the workers and returns the outputs in index
    /// order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = self.workers.get().min(n);
        if threads == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= n {
                                return mine;
                            }
                            mine.push((idx, f(idx)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        // Reassemble in index order regardless of which worker ran what.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for chunk in chunks.drain(..) {
            for (idx, value) in chunk {
                debug_assert!(slots[idx].is_none(), "job {idx} ran twice");
                slots[idx] = Some(value);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("job {idx} never ran")))
            .collect()
    }

    /// Convenience: maps `f` over a slice, preserving element order.
    pub fn map_slice<T, U, F>(&self, items: &[U], f: F) -> Vec<T>
    where
        T: Send,
        U: Sync,
        F: Fn(&U) -> T + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn output_order_is_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let pool = WorkerPool::with_workers(workers);
            let got = pool.map_indexed(97, |i| i * 3);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let pool = WorkerPool::with_workers(7);
        let n = 500;
        pool.map_indexed(n, |i| {
            assert!(seen.lock().unwrap().insert(i), "job {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), n);
    }

    #[test]
    fn thread_count_is_bounded() {
        // With 3 workers and 100 jobs, at most 3 jobs are in flight.
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let pool = WorkerPool::with_workers(3);
        pool.map_indexed(100, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkerPool::with_workers(4);
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indexed(1, |i| i + 1), vec![1]);
        assert_eq!(pool.map_slice(&[10, 20], |x| x * 2), vec![20, 40]);
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(WorkerPool::with_workers(0).workers(), 1);
        assert!(WorkerPool::new().workers() >= 1);
    }
}

//! The orchestrator: pool + cache + manifest + observer.

use crate::cache::{content_digest, ResultCache};
use crate::manifest::{JobRecord, JobStatus, ManifestHeader, ManifestWriter};
use crate::observer::{NullObserver, RunObserver};
use crate::pool::WorkerPool;
use crate::telemetry::TelemetrySink;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configures and builds a [`Runtime`].
#[derive(Default)]
pub struct RuntimeBuilder {
    pool: Option<WorkerPool>,
    cache: Option<ResultCache>,
    observer: Option<Arc<dyn RunObserver + Send + Sync>>,
    manifest_path: Option<PathBuf>,
    deferred_cache_dir: Option<PathBuf>,
    telemetry: Option<Arc<TelemetrySink>>,
    sim_shards: u32,
}

impl RuntimeBuilder {
    /// A builder with every knob at its default.
    #[must_use]
    pub fn new() -> Self {
        RuntimeBuilder::default()
    }

    /// Uses an explicit worker pool (default: machine-sized).
    #[must_use]
    pub fn pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Shorthand for [`RuntimeBuilder::pool`] with a fixed worker count.
    #[must_use]
    pub fn workers(self, workers: usize) -> Self {
        self.pool(WorkerPool::with_workers(workers))
    }

    /// Uses an explicit result cache (default: in-memory).
    #[must_use]
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Backs the cache with a disk directory.
    ///
    /// Stored as a deferred path; directory creation happens in
    /// [`RuntimeBuilder::build`] so the error is reportable.
    #[must_use]
    pub fn cache_dir(self, dir: impl Into<PathBuf>) -> Self {
        let mut this = self;
        this.cache = None;
        this.deferred_cache_dir = Some(dir.into());
        this
    }

    /// Installs a progress observer (default: silent).
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn RunObserver + Send + Sync>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Journals every run into a JSONL manifest at `path`.
    #[must_use]
    pub fn manifest_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest_path = Some(path.into());
        self
    }

    /// Collects per-job telemetry blobs into `sink`. Jobs reach the sink
    /// through [`Runtime::telemetry_sink`]; the runner journals each
    /// attached blob into the job's manifest record.
    #[must_use]
    pub fn telemetry_sink(mut self, sink: Arc<TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Partitions each simulation across `shards` engine shards
    /// (default 1 = serial). Job closures read the knob through
    /// [`Runtime::sim_shards`]; instrumented runs that need the serial
    /// event order may ignore it.
    #[must_use]
    pub fn sim_shards(mut self, shards: u32) -> Self {
        self.sim_shards = shards.max(1);
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// Returns a message when the cache directory cannot be created.
    pub fn build(self) -> Result<Runtime, String> {
        let cache = match (self.cache, self.deferred_cache_dir) {
            (Some(cache), _) => cache,
            (None, Some(dir)) => ResultCache::on_disk(&dir)
                .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?,
            (None, None) => ResultCache::in_memory(),
        };
        Ok(Runtime {
            pool: self.pool.unwrap_or_default(),
            cache,
            observer: self.observer.unwrap_or_else(|| Arc::new(NullObserver)),
            manifest_path: self.manifest_path,
            telemetry: self.telemetry,
            sim_shards: self.sim_shards.max(1),
        })
    }
}

/// The deterministic experiment runtime.
///
/// See the crate docs for the determinism contract. All state is behind
/// interior mutability, so one `Runtime` can serve many runs.
pub struct Runtime {
    pool: WorkerPool,
    cache: ResultCache,
    observer: Arc<dyn RunObserver + Send + Sync>,
    manifest_path: Option<PathBuf>,
    telemetry: Option<Arc<TelemetrySink>>,
    sim_shards: u32,
}

impl Runtime {
    /// A runtime with the given pool, an in-memory cache, and no
    /// observer or manifest.
    #[must_use]
    pub fn new(pool: WorkerPool) -> Self {
        Runtime {
            pool,
            cache: ResultCache::in_memory(),
            observer: Arc::new(NullObserver),
            manifest_path: None,
            telemetry: None,
            sim_shards: 1,
        }
    }

    /// Starts configuring a runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// The worker pool.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The result cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The telemetry sink, when this runtime collects telemetry. Job
    /// closures use this to attach per-job instrumentation blobs.
    #[must_use]
    pub fn telemetry_sink(&self) -> Option<&TelemetrySink> {
        self.telemetry.as_deref()
    }

    /// Engine shards each simulation should be partitioned across
    /// (1 = serial).
    #[must_use]
    pub fn sim_shards(&self) -> u32 {
        self.sim_shards
    }

    /// Runs `keys.len()` jobs on the pool, serving repeats from the
    /// cache, journaling into the manifest (when configured), and
    /// reporting progress to the observer. Results come back in job
    /// order regardless of worker count.
    ///
    /// `experiment` and `params_json` describe the run for the manifest
    /// header; `keys[i]` must be a stable content digest of job `i`'s
    /// full inputs (see [`content_digest`]).
    ///
    /// # Panics
    ///
    /// Propagates panics from job functions.
    pub fn run<T, F>(&self, experiment: &str, params_json: &str, keys: &[String], f: F) -> Vec<T>
    where
        T: Serialize + Deserialize + Send,
        F: Fn(usize) -> T + Sync,
    {
        let manifest = self.manifest_path.as_ref().and_then(|path| {
            let header = ManifestHeader {
                experiment: experiment.to_string(),
                params_json: params_json.to_string(),
                jobs: keys.len(),
                cache_dir: self
                    .cache
                    .disk_dir()
                    .map(|d| d.to_string_lossy().into_owned()),
            };
            match ManifestWriter::create(path, &header) {
                Ok(writer) => Some(writer),
                Err(e) => {
                    eprintln!(
                        "warning: cannot write manifest {}: {e}; continuing without",
                        path.display()
                    );
                    None
                }
            }
        });

        if let Some(sink) = &self.telemetry {
            sink.reset(keys.len());
        }
        self.observer.run_started(keys.len());
        let computed = AtomicUsize::new(0);
        let cached = AtomicUsize::new(0);
        let run_started = Instant::now();

        let results = self.pool.map_indexed(keys.len(), |index| {
            let key = &keys[index];
            let job_started = Instant::now();

            if let Some(json) = self.cache.get(key) {
                if let Ok(value) = serde_json::from_str::<T>(&json) {
                    cached.fetch_add(1, Ordering::Relaxed);
                    let wall = job_started.elapsed();
                    self.observer.job_finished(index, JobStatus::Cached, wall);
                    if let Some(writer) = &manifest {
                        self.journal(writer, index, key, JobStatus::Cached, wall, &json);
                    }
                    return value;
                }
                // A corrupt or schema-stale entry: fall through and
                // recompute; the fresh value overwrites it below.
            }

            self.observer.job_started(index);
            let value = f(index);
            let json = serde_json::to_string(&value).expect("job output serializes");
            self.cache.put(key, &json);
            computed.fetch_add(1, Ordering::Relaxed);
            let wall = job_started.elapsed();
            self.observer.job_finished(index, JobStatus::Computed, wall);
            if let Some(writer) = &manifest {
                self.journal(writer, index, key, JobStatus::Computed, wall, &json);
            }
            value
        });

        self.observer.run_finished(
            computed.load(Ordering::Relaxed),
            cached.load(Ordering::Relaxed),
            run_started.elapsed(),
        );
        results
    }

    /// Plain bounded parallel map, bypassing cache and manifest — for
    /// work whose outputs are not serializable (e.g. arbitrary
    /// replication measurements). Output order is index order.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.pool.map_indexed(n, f)
    }

    fn journal(
        &self,
        writer: &ManifestWriter,
        index: usize,
        key: &str,
        status: JobStatus,
        wall: std::time::Duration,
        json: &str,
    ) {
        // Cached jobs did no instrumented work, so they carry no blobs.
        let (telemetry, trace, privacy, spans, audit, mem) = match status {
            JobStatus::Computed => {
                self.telemetry
                    .as_ref()
                    .map_or((None, None, None, None, None, None), |sink| {
                        (
                            sink.get(index),
                            sink.get_trace(index),
                            sink.get_privacy(index),
                            sink.get_spans(index),
                            sink.get_audit(index),
                            sink.get_mem(index),
                        )
                    })
            }
            JobStatus::Cached => (None, None, None, None, None, None),
        };
        let record = JobRecord {
            index,
            key: key.to_string(),
            status,
            wall_ms: wall.as_millis() as u64,
            outcome_digest: content_digest(json.as_bytes()),
            telemetry,
            trace,
            privacy,
            spans,
            audit,
            mem,
        };
        if let Err(e) = writer.record(&record) {
            eprintln!(
                "warning: manifest write to {} failed: {e}",
                writer.path().display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ManifestReader;
    use crate::observer::CountingObserver;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| content_digest(format!("test-job:{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn results_are_identical_for_any_worker_count() {
        let reference: Vec<u64> = (0..25u64).map(|i| i * i + 1).collect();
        for workers in [1, 2, 8] {
            let runtime = Runtime::new(WorkerPool::with_workers(workers));
            let got = runtime.run("squares", "{}", &keys(25), |i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn warm_cache_rerun_computes_nothing() {
        let counter = Arc::new(CountingObserver::new());
        let runtime = Runtime::builder()
            .workers(4)
            .observer(counter.clone())
            .build()
            .unwrap();
        let keys = keys(10);
        let first = runtime.run("warm", "{}", &keys, |i| i as u64 * 3);
        assert_eq!(counter.computed(), 10);
        assert_eq!(counter.cached(), 0);
        let second = runtime.run("warm", "{}", &keys, |_| -> u64 {
            panic!("warm rerun must not compute")
        });
        assert_eq!(first, second);
        assert_eq!(counter.computed(), 10, "no new computations");
        assert_eq!(counter.cached(), 10);
    }

    #[test]
    fn manifest_journals_every_job() {
        let dir = std::env::temp_dir().join("tempriv_runtime_runner_manifest");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.jsonl");
        let runtime = Runtime::builder()
            .workers(2)
            .manifest_path(&path)
            .build()
            .unwrap();
        let keys = keys(5);
        let _ = runtime.run("journal", "{\"p\":1}", &keys, |i| i as u64);
        let manifest = ManifestReader::read(&path).unwrap();
        assert_eq!(manifest.header.experiment, "journal");
        assert_eq!(manifest.header.params_json, "{\"p\":1}");
        assert_eq!(manifest.header.jobs, 5);
        assert_eq!(manifest.records.len(), 5);
        let mut indices = manifest.completed_indices();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        assert!(manifest
            .records
            .iter()
            .all(|r| r.status == JobStatus::Computed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_serves_a_second_runtime() {
        let dir = std::env::temp_dir().join("tempriv_runtime_runner_disk_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let keys = keys(4);
        {
            let runtime = Runtime::builder()
                .workers(2)
                .cache_dir(&dir)
                .build()
                .unwrap();
            let _ = runtime.run("persist", "{}", &keys, |i| i as u64 + 7);
        }
        let counter = Arc::new(CountingObserver::new());
        let runtime = Runtime::builder()
            .workers(2)
            .cache_dir(&dir)
            .observer(counter.clone())
            .build()
            .unwrap();
        let rows = runtime.run("persist", "{}", &keys, |_| -> u64 {
            panic!("served from disk")
        });
        assert_eq!(rows, vec![7, 8, 9, 10]);
        assert_eq!(counter.computed(), 0);
        assert_eq!(counter.cached(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_recomputed() {
        let runtime = Runtime::new(WorkerPool::with_workers(1));
        let keys = keys(1);
        runtime.cache().put(&keys[0], "not json at all");
        let rows = runtime.run("heal", "{}", &keys, |_| 42u64);
        assert_eq!(rows, vec![42]);
        // And the entry was healed in place.
        assert_eq!(runtime.cache().get(&keys[0]).as_deref(), Some("42"));
    }
}

//! Sharded conservative-parallel execution of the network simulation.
//!
//! A convergecast tree cuts into connected pieces along its edges; a
//! packet crossing a cut edge is handed to the next node's shard.
//! [`ShardPlan::cut`] cuts only the trunk edges into the sink, which
//! keeps sharded runs bit-exact against the serial engine;
//! [`ShardPlan::cut_balanced`] additionally carves subtrees by transit
//! load so even a single giant sink-subtree (a corner-sink geometric
//! field) spreads across shards — see [`ShardPlan`] for the exact
//! contracts. Either plan is a pure function of the routing tree, the
//! source list, and the shard count — no RNG, no tie-breaks on memory
//! addresses — so a given topology always shards identically.
//!
//! Each shard owns a private [`Engine`], [`PacketStore`], and RNG
//! streams, and advances through conservative time windows: with link
//! delay τ, every cross-shard influence generated in `[W, W + τ)`
//! arrives at `W + τ` or later, so shards can process the window
//! independently and exchange `Handoff`s at the barrier. Handoffs are
//! merged in ascending source-shard order, which fixes the event-queue
//! insertion order — the run is **byte-identical for every worker
//! count**, because worker threads only change *when* a shard executes
//! its window, never *what* it computes.
//!
//! Global RNG streams cannot survive partitioning (their draw order was
//! the serial event order), so sharded runs index the victim, link, and
//! reading streams by shard; the serial engine is the one-shard special
//! case drawing from index 0. Packet ids and creation instants are
//! preassigned by a presampling pass over the per-flow traffic streams,
//! sorted by `(time, flow)` — the same order the serial engine assigns
//! them. One shard therefore reproduces a serial run exactly, and
//! multiple shards reproduce it whenever no shared global stream is
//! actually drawn from (lossless links and deterministic victim
//! policies, which covers every configuration in the paper).
//!
//! [`PacketStore`]: crate::store::PacketStore

use std::sync::mpsc;

use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_net::routing::RoutingTree;
use tempriv_sim::engine::Engine;
use tempriv_sim::profile::{NoopPhaseTimer, Phase, PhaseTimer};
use tempriv_sim::rng::RngFactory;
use tempriv_sim::time::{SimDuration, SimTime};
use tempriv_telemetry::NullProbe;

use crate::metrics::{FlowOutcome, NodeReport, ShardStats, SimOutcome, TruthRecord};
use crate::sim_driver::{streams, Driver, Ev, NetworkSimulation, Workload};

/// A partition of the routing tree's nodes into shards, built by one of
/// two strategies with different contracts:
///
/// * [`ShardPlan::cut`] cuts **only trunk edges** (the edges into the
///   sink). Handoffs then target the sink alone — a memoryless node
///   where same-instant arrival order cannot influence any buffer state
///   — so a sharded run reproduces the serial engine **bit-exactly**
///   (for every configuration that draws no shared global stream).
/// * [`ShardPlan::cut_balanced`] additionally carves subtrees wherever
///   their accumulated transit load reaches a grain of about a quarter
///   shard, then packs pieces onto shards by greedy LPT on load. This
///   balances trees the trunk cut cannot touch — a corner-sink
///   geometric field or the Figure-1 shared trunk is one giant
///   sink-subtree — at the price of bit-exactness: handoffs can land on
///   interior buffering nodes, where RCAD preemption cascades (constant
///   τ) make same-instant arrival ties structural, and the barrier
///   merge cannot replicate the serial engine's insertion order for
///   them. Worker-count invariance and packet conservation still hold
///   unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    shards: u32,
}

impl ShardPlan {
    /// Cuts `routing` into `shards` partitions at trunk edges only.
    ///
    /// Deterministic: sink-subtrees are assigned in `(size desc, root
    /// id asc)` order to the least-loaded shard (ties to the lowest
    /// shard index). The sink always lives in shard 0. Shard counts
    /// above the number of sink-subtrees leave the excess shards empty,
    /// and a single-subtree layout collapses onto shard 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn cut(routing: &RoutingTree, shards: u32) -> ShardPlan {
        assert!(shards > 0, "a shard plan needs at least one shard");
        let n = routing.len();
        let sink = routing.sink().index();
        // trunk[i] = the root of i's sink-subtree (the last node on i's
        // path before the sink), memoized by path compression.
        let mut trunk: Vec<u32> = vec![u32::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        for start in 0..n {
            if start == sink || trunk[start] != u32::MAX {
                continue;
            }
            debug_assert!(stack.is_empty());
            let mut cur = start;
            let root = loop {
                if trunk[cur] != u32::MAX {
                    break trunk[cur];
                }
                let next = routing
                    .next_hop(NodeId(cur as u32))
                    .expect("non-sink nodes have a next hop")
                    .index();
                if next == sink {
                    break cur as u32;
                }
                stack.push(cur);
                cur = next;
            };
            trunk[cur] = root;
            while let Some(node) = stack.pop() {
                trunk[node] = root;
            }
        }
        let mut subtree_size: Vec<u64> = vec![0; n];
        for i in 0..n {
            if i != sink {
                subtree_size[trunk[i] as usize] += 1;
            }
        }
        let mut roots: Vec<u32> = (0..n as u32)
            .filter(|&i| i as usize != sink && trunk[i as usize] == i)
            .collect();
        roots.sort_unstable_by(|&a, &b| {
            subtree_size[b as usize]
                .cmp(&subtree_size[a as usize])
                .then_with(|| a.cmp(&b))
        });
        let mut load: Vec<u64> = vec![0; shards as usize];
        let mut root_shard: Vec<u32> = vec![0; n];
        for &root in &roots {
            let lightest = (0..shards)
                .min_by_key(|&s| load[s as usize])
                .expect("at least one shard");
            load[lightest as usize] += subtree_size[root as usize];
            root_shard[root as usize] = lightest;
        }
        let shard_of: Vec<u32> = (0..n)
            .map(|i| {
                if i == sink {
                    0
                } else {
                    root_shard[trunk[i] as usize]
                }
            })
            .collect();
        ShardPlan { shard_of, shards }
    }

    /// Cuts `routing` into `shards` partitions, balancing the transit
    /// load induced by `sources` (each source adds one unit of load to
    /// every node on its path to the sink). Unlike [`ShardPlan::cut`]
    /// it carves inside sink-subtrees, so handoffs can target interior
    /// buffering nodes and the sharded run is statistically — not
    /// bit- — identical to the serial engine (see the type docs).
    ///
    /// Deterministic: loads, carve order (children before parents, in
    /// node-index order), and piece assignment (`(load desc, root id
    /// asc)` to the least-loaded shard, ties to the lowest index) are
    /// all pure functions of the tree and the source list. The sink
    /// always lives in shard 0; layouts with less total load than the
    /// shard count may leave trailing shards empty.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn cut_balanced(routing: &RoutingTree, sources: &[NodeId], shards: u32) -> ShardPlan {
        assert!(shards > 0, "a shard plan needs at least one shard");
        let n = routing.len();
        let sink = routing.sink().index();
        if shards == 1 || n <= 1 {
            return ShardPlan {
                shard_of: vec![0; n],
                shards,
            };
        }
        let parent = |i: usize| {
            routing
                .next_hop(NodeId(i as u32))
                .expect("non-sink nodes have a next hop")
                .index()
        };
        // load[u] = flows whose route transits u — the node's share of
        // the run's forwarding events.
        let mut load: Vec<u64> = vec![0; n];
        for s in sources {
            let mut cur = s.index();
            while cur != sink {
                load[cur] += 1;
                cur = parent(cur);
            }
        }
        // Reverse-BFS order visits children before parents.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            if i != sink {
                children[parent(i)].push(i as u32);
            }
        }
        let mut order: Vec<u32> = Vec::with_capacity(n);
        order.push(sink as u32);
        let mut head = 0;
        while head < order.len() {
            let u = order[head] as usize;
            head += 1;
            order.extend_from_slice(&children[u]);
        }
        // Carve bottom-up: close a piece at every trunk edge (so
        // sink-subtrees never merge through the sink) and wherever the
        // accumulated load reaches the grain. Fine grains cost extra
        // handoffs but let LPT balance to within a fraction of a shard.
        let total: u64 = load.iter().sum();
        let grain = (total / (u64::from(shards) * 4)).max(1);
        let mut acc = load.clone();
        let mut piece_root: Vec<bool> = vec![false; n];
        for &u in order.iter().rev() {
            let u = u as usize;
            if u == sink {
                continue;
            }
            let p = parent(u);
            if p == sink || acc[u] >= grain {
                piece_root[u] = true;
            } else {
                acc[p] += acc[u];
            }
        }
        // piece_of[i] = the nearest piece root at or above i, memoized
        // by path compression. Every non-sink path crosses a trunk edge,
        // so only the sink itself maps to the sink "piece".
        let mut piece_of: Vec<u32> = vec![u32::MAX; n];
        piece_of[sink] = sink as u32;
        let mut stack: Vec<usize> = Vec::new();
        for start in 0..n {
            if piece_of[start] != u32::MAX {
                continue;
            }
            debug_assert!(stack.is_empty());
            let mut cur = start;
            let root = loop {
                if piece_of[cur] != u32::MAX {
                    break piece_of[cur];
                }
                if piece_root[cur] {
                    break cur as u32;
                }
                stack.push(cur);
                cur = parent(cur);
            };
            piece_of[cur] = root;
            while let Some(node) = stack.pop() {
                piece_of[node] = root;
            }
        }
        let mut piece_load: Vec<u64> = vec![0; n];
        for i in 0..n {
            if i != sink {
                piece_load[piece_of[i] as usize] += load[i];
            }
        }
        let mut roots: Vec<u32> = (0..n as u32).filter(|&i| piece_root[i as usize]).collect();
        roots.sort_unstable_by(|&a, &b| {
            piece_load[b as usize]
                .cmp(&piece_load[a as usize])
                .then_with(|| a.cmp(&b))
        });
        // Shard 0 starts with the sink's own load — one terminal event
        // per packet of every flow — before LPT hands out the pieces.
        let mut shard_load: Vec<u64> = vec![0; shards as usize];
        shard_load[0] = sources.len() as u64;
        let mut root_shard: Vec<u32> = vec![0; n];
        for &root in &roots {
            let lightest = (0..shards)
                .min_by_key(|&s| shard_load[s as usize])
                .expect("at least one shard");
            shard_load[lightest as usize] += piece_load[root as usize];
            root_shard[root as usize] = lightest;
        }
        let shard_of: Vec<u32> = (0..n)
            .map(|i| {
                if i == sink {
                    0
                } else {
                    root_shard[piece_of[i] as usize]
                }
            })
            .collect();
        ShardPlan { shard_of, shards }
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard index per node.
    #[must_use]
    pub fn shard_of(&self) -> &[u32] {
        &self.shard_of
    }

    /// Number of nodes assigned to `shard`.
    #[must_use]
    pub fn nodes_in(&self, shard: u32) -> u64 {
        self.shard_of.iter().filter(|&&s| s == shard).count() as u64
    }
}

/// A packet crossing a shard boundary: everything the receiving shard
/// needs to re-materialize it in its own store. The sealed reading does
/// not ride along — it is unobservable past the creating node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Handoff {
    /// Arrival instant at `node` (emission time + link delay).
    pub(crate) at: SimTime,
    /// The receiving node (in the destination shard).
    pub(crate) node: NodeId,
    pub(crate) pid: PacketId,
    pub(crate) flow: FlowId,
    pub(crate) origin: NodeId,
    pub(crate) hop_count: u32,
    pub(crate) created_at: SimTime,
}

/// Replays one flow's presampled creation schedule: `(instant, packet
/// id)` pairs in time order. Empty for flows homed on other shards.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowCursor {
    times: Vec<SimTime>,
    pids: Vec<PacketId>,
    next: usize,
}

impl FlowCursor {
    /// The first creation, if the flow creates anything.
    pub(crate) fn first(&self) -> Option<(SimTime, PacketId)> {
        self.times.first().map(|&t| (t, self.pids[0]))
    }

    /// The creation the cursor currently points at.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is exhausted (more creations fired than were
    /// presampled — a scheduling bug).
    pub(crate) fn current(&self) -> (SimTime, PacketId) {
        (self.times[self.next], self.pids[self.next])
    }

    /// Advances past the current creation; returns the next one, if any.
    pub(crate) fn advance(&mut self) -> Option<(SimTime, PacketId)> {
        self.next += 1;
        if self.next < self.times.len() {
            Some((self.times[self.next], self.pids[self.next]))
        } else {
            None
        }
    }
}

/// Presamples every flow's creation schedule and assigns packet ids in
/// `(time, flow)` order — the order the serial engine assigns them.
/// Returns the global truth log, one cursor per flow, and the RNG draws
/// the presampling consumed (the same draws the serial engine spends
/// sampling interarrivals lazily).
fn presample(sim: &NetworkSimulation) -> (Vec<TruthRecord>, Vec<FlowCursor>, u64) {
    let n_flows = sim.sources.len();
    let factory = RngFactory::new(sim.seed);
    let mut draws = 0u64;
    let per_flow_times: Vec<Vec<SimTime>> = match &sim.workload {
        Workload::Model(traffic) => (0..n_flows)
            .map(|i| {
                let mut rng = factory.substream(streams::TRAFFIC, i as u64);
                let mut sampler = traffic.sampler();
                let mut at = SimTime::ZERO;
                let times = (0..sim.packets_per_source)
                    .map(|_| {
                        at += sampler.next_interarrival(&mut rng);
                        at
                    })
                    .collect();
                draws += rng.draws();
                times
            })
            .collect(),
        Workload::Schedules(schedules) => schedules.clone(),
    };
    let mut order: Vec<(SimTime, u32, u32)> = Vec::new();
    for (flow, times) in per_flow_times.iter().enumerate() {
        for (k, &at) in times.iter().enumerate() {
            order.push((at, flow as u32, k as u32));
        }
    }
    order.sort_unstable();
    let mut truth = Vec::with_capacity(order.len());
    let mut pids: Vec<Vec<PacketId>> = vec![Vec::new(); n_flows];
    for (i, &(at, flow, _)) in order.iter().enumerate() {
        let pid = PacketId(i as u64);
        truth.push(TruthRecord {
            packet: pid,
            flow: FlowId(flow),
            created_at: at,
        });
        pids[flow as usize].push(pid);
    }
    let cursors = per_flow_times
        .into_iter()
        .zip(pids)
        .map(|(times, pids)| FlowCursor {
            times,
            pids,
            next: 0,
        })
        .collect();
    (truth, cursors, draws)
}

/// One shard's private execution state.
struct Shard<'a> {
    idx: u32,
    engine: Engine<Ev>,
    driver: Driver<'a, NullProbe, NoopPhaseTimer>,
}

impl Shard<'_> {
    /// Runs this shard's events strictly before `end`.
    fn run_window(&mut self, end: SimTime) {
        let Shard { engine, driver, .. } = self;
        engine.run_before(end, |sched, ev| driver.handle(sched, ev));
    }
}

/// Coordinator → worker message for one window round.
enum Cmd {
    /// Run everything strictly before `end`, after scheduling `handoffs`
    /// (already in deterministic source-shard order).
    Window {
        end: SimTime,
        handoffs: Vec<Handoff>,
    },
    /// Drain complete: return the shard states.
    Halt,
}

/// Worker → coordinator reply after one window round.
struct Resp {
    worker: usize,
    /// Emitted handoffs, tagged per source shard (in this worker's shard
    /// order; the coordinator re-sorts globally by source shard).
    outboxes: Vec<(u32, Vec<Handoff>)>,
    /// Earliest pending event across this worker's shards, post-window.
    next: Option<SimTime>,
}

/// Which [`ShardPlan`] strategy a sharded run partitions with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutStrategy {
    /// Trunk edges only — bit-exact against the serial engine.
    #[default]
    Exact,
    /// Transit-load carving — balanced shards, statistical equivalence.
    Balanced,
}

pub(crate) fn run_sharded<T: PhaseTimer>(
    sim: &NetworkSimulation,
    shards: u32,
    workers: usize,
    strategy: CutStrategy,
    timer: &mut T,
) -> SimOutcome {
    assert!(shards > 0, "run_sharded needs at least one shard");
    let lookahead = sim.link.delay();
    assert!(
        lookahead > SimDuration::ZERO,
        "sharded runs need a positive link delay as conservative lookahead"
    );
    // Allocation gauge parity with the serial path. Threaded runs only
    // see the coordinator's allocations; the single-threaded runner (the
    // one the mem benches use) sees everything.
    let mem_base = tempriv_telemetry::memprof::thread_snapshot();
    let plan = match strategy {
        CutStrategy::Exact => ShardPlan::cut(&sim.routing, shards),
        CutStrategy::Balanced => ShardPlan::cut_balanced(&sim.routing, &sim.sources, shards),
    };
    let n_shards = shards as usize;
    let (truth, mut cursors, presample_draws) = presample(sim);

    let factory = RngFactory::new(sim.seed);
    let n_flows = sim.sources.len();
    let mut probes: Vec<NullProbe> = (0..n_shards).map(|_| NullProbe).collect();
    let mut noop_timers: Vec<NoopPhaseTimer> = (0..n_shards).map(|_| NoopPhaseTimer).collect();

    // Home every flow's cursor on its source's shard; foreign flows get
    // an empty cursor so indexing by flow stays direct.
    let mut shard_cursors: Vec<Vec<FlowCursor>> =
        vec![vec![FlowCursor::default(); n_flows]; n_shards];
    for i in (0..n_flows).rev() {
        let home = plan.shard_of()[sim.sources[i].index()] as usize;
        shard_cursors[home][i] = std::mem::take(&mut cursors[i]);
    }

    let mut states: Vec<Shard<'_>> = probes
        .iter_mut()
        .zip(noop_timers.iter_mut())
        .zip(shard_cursors)
        .enumerate()
        .map(|(idx, ((probe, noop), preassigned))| {
            let mut driver = Driver::new(sim, probe, noop);
            driver.my_shard = idx as u32;
            driver.shard_of = Some(plan.shard_of());
            driver.victim_rng = factory.substream(streams::VICTIM, idx as u64);
            driver.link_rng = factory.substream(streams::LINK, idx as u64);
            driver.reading_rng = factory.substream(streams::READING, idx as u64);
            driver.preassigned = preassigned;
            let mut engine = Engine::new();
            for (flow, cursor) in driver.preassigned.iter().enumerate() {
                if let Some((at, _)) = cursor.first() {
                    engine
                        .schedule_at(
                            at,
                            Ev::Create {
                                flow: FlowId(flow as u32),
                            },
                        )
                        .expect("creation schedules start at t >= 0");
                }
            }
            Shard {
                idx: idx as u32,
                engine,
                driver,
            }
        })
        .collect();

    let workers = workers.clamp(1, n_shards);
    if workers == 1 {
        run_windows_inline(&mut states, &plan, lookahead, timer);
    } else {
        states = run_windows_threaded(states, &plan, lookahead, workers, timer);
    }

    let mem = tempriv_telemetry::memprof::thread_snapshot().since(mem_base);
    assemble(sim, &plan, truth, presample_draws, states, mem)
}

/// The no-thread runner: shards execute their windows sequentially on
/// the calling thread. Byte-identical to the threaded runner.
fn run_windows_inline<T: PhaseTimer>(
    states: &mut [Shard<'_>],
    plan: &ShardPlan,
    lookahead: SimDuration,
    timer: &mut T,
) {
    let mut scratch: Vec<Handoff> = Vec::new();
    loop {
        timer.switch(Phase::BarrierWait);
        let window = states.iter_mut().filter_map(|s| s.engine.next_time()).min();
        let Some(window) = window else {
            timer.switch(Phase::EngineLoop);
            return;
        };
        let end = window + lookahead;
        timer.switch(Phase::EngineLoop);
        for shard in states.iter_mut() {
            shard.run_window(end);
        }
        timer.switch(Phase::BarrierWait);
        for src in 0..states.len() {
            scratch.append(&mut states[src].driver.outbox);
            for h in scratch.drain(..) {
                let dst = plan.shard_of()[h.node.index()] as usize;
                let Shard { engine, driver, .. } = &mut states[dst];
                driver.accept(engine, &h);
            }
        }
        timer.switch(Phase::EngineLoop);
    }
}

/// The threaded runner: shards are dealt round-robin onto `workers`
/// scoped threads; the calling thread coordinates windows and merges
/// handoffs in source-shard order, so the schedule every engine sees is
/// independent of the worker count.
fn run_windows_threaded<'a, T: PhaseTimer>(
    states: Vec<Shard<'a>>,
    plan: &ShardPlan,
    lookahead: SimDuration,
    workers: usize,
    timer: &mut T,
) -> Vec<Shard<'a>> {
    let mut groups: Vec<Vec<Shard<'a>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in states.into_iter().enumerate() {
        groups[i % workers].push(shard);
    }
    // Which worker owns each shard, for routing handoffs.
    let mut worker_of_shard: Vec<usize> = vec![0; plan.shards() as usize];
    for (w, group) in groups.iter().enumerate() {
        for shard in group {
            worker_of_shard[shard.idx as usize] = w;
        }
    }
    let mut next_times: Vec<Option<SimTime>> = groups
        .iter_mut()
        .map(|g| g.iter_mut().filter_map(|s| s.engine.next_time()).min())
        .collect();

    let mut returned = std::thread::scope(|scope| {
        let (resp_tx, resp_rx) = mpsc::channel::<Resp>();
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (w, mut group) in groups.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(cmd_tx);
            let resp_tx = resp_tx.clone();
            let shard_of = plan.shard_of();
            handles.push(scope.spawn(move || {
                for cmd in cmd_rx {
                    match cmd {
                        Cmd::Window { end, handoffs } => {
                            for h in &handoffs {
                                let dst = shard_of[h.node.index()];
                                let shard = group
                                    .iter_mut()
                                    .find(|s| s.idx == dst)
                                    .expect("handoffs route to an owned shard");
                                shard.driver.accept(&mut shard.engine, h);
                            }
                            for shard in group.iter_mut() {
                                shard.run_window(end);
                            }
                            let outboxes = group
                                .iter_mut()
                                .map(|s| (s.idx, std::mem::take(&mut s.driver.outbox)))
                                .collect();
                            let next = group.iter_mut().filter_map(|s| s.engine.next_time()).min();
                            resp_tx
                                .send(Resp {
                                    worker: w,
                                    outboxes,
                                    next,
                                })
                                .expect("coordinator outlives workers");
                        }
                        Cmd::Halt => break,
                    }
                }
                group
            }));
        }
        drop(resp_tx);

        // Handoffs awaiting delivery, kept sorted by source shard.
        let mut pending: Vec<Handoff> = Vec::new();
        loop {
            let window = next_times
                .iter()
                .flatten()
                .copied()
                .chain(pending.iter().map(|h| h.at))
                .min();
            let Some(window) = window else { break };
            let end = window + lookahead;
            let mut per_worker: Vec<Vec<Handoff>> = (0..workers).map(|_| Vec::new()).collect();
            for h in pending.drain(..) {
                let dst = plan.shard_of()[h.node.index()] as usize;
                per_worker[worker_of_shard[dst]].push(h);
            }
            for (w, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Window {
                    end,
                    handoffs: std::mem::take(&mut per_worker[w]),
                })
                .expect("workers outlive the coordinator loop");
            }
            timer.switch(Phase::BarrierWait);
            let mut outboxes: Vec<(u32, Vec<Handoff>)> = Vec::new();
            for _ in 0..workers {
                let resp = resp_rx.recv().expect("every worker answers the window");
                next_times[resp.worker] = resp.next;
                outboxes.extend(resp.outboxes);
            }
            // Merge in source-shard order: this is what makes the event
            // insertion order — and therefore the run — worker-count
            // independent.
            outboxes.sort_by_key(|&(src, _)| src);
            for (_, batch) in outboxes {
                pending.extend(batch);
            }
            timer.switch(Phase::EngineLoop);
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Halt).expect("workers still listening");
        }
        let mut returned: Vec<Shard<'a>> = Vec::new();
        for handle in handles {
            returned.extend(handle.join().expect("worker threads do not panic"));
        }
        returned
    });
    returned.sort_by_key(|s| s.idx);
    returned
}

/// Stitches per-shard state into the one [`SimOutcome`] a serial run
/// would have produced (plus per-shard stats).
fn assemble(
    sim: &NetworkSimulation,
    plan: &ShardPlan,
    truth: Vec<TruthRecord>,
    presample_draws: u64,
    mut states: Vec<Shard<'_>>,
    mem: tempriv_telemetry::memprof::ThreadMemSnapshot,
) -> SimOutcome {
    let n_nodes = sim.routing.len();
    let n_flows = sim.sources.len();
    let shard_of = plan.shard_of();
    let sink_shard = shard_of[sim.routing.sink().index()] as usize;
    let end_time = states
        .iter()
        .map(|s| s.engine.now())
        .max()
        .unwrap_or(SimTime::ZERO);
    let events: u64 = states.iter().map(|s| s.engine.delivered()).sum();
    let peak_fes: u64 = states.iter().map(|s| s.engine.peak_pending() as u64).sum();
    let rng_draws = presample_draws + states.iter().map(|s| s.driver.rng_draws()).sum::<u64>();
    let link_losses = states.iter().map(|s| s.driver.link_losses).sum();
    let shard_stats = states
        .iter()
        .map(|s| ShardStats {
            shard: s.idx,
            nodes: plan.nodes_in(s.idx),
            events: s.engine.delivered(),
            handoffs_out: s.driver.handoffs_out,
            peak_fes: s.engine.peak_pending() as u64,
        })
        .collect();
    let flows = (0..n_flows)
        .map(|i| {
            let home = shard_of[sim.sources[i].index()] as usize;
            let sink = &states[sink_shard].driver;
            FlowOutcome {
                flow: FlowId(i as u32),
                source: sim.sources[i],
                hops: sim.routing.hops(sim.sources[i]).expect("validated"),
                created: u64::from(states[home].driver.seq[i]),
                delivered: sink.delivered[i],
                latency: sink.latency[i],
                latency_histogram: sink.latency_hist[i].clone(),
            }
        })
        .collect();
    let nodes = (0..n_nodes)
        .map(|i| {
            let owner = &states[shard_of[i] as usize].driver;
            let occupancy_pmf = owner.occupancy[i].pmf(end_time);
            NodeReport {
                node: NodeId(i as u32),
                mean_occupancy: owner.occupancy[i].mean(end_time),
                peak_occupancy: occupancy_pmf.iter().map(|&(k, _)| k).max().unwrap_or(0),
                occupancy_pmf,
                preemptions: owner.preemptions[i],
                drops: owner.drops[i],
                flushes: owner.flushes[i],
                stranded: owner.buffers[i].len() as u64,
                transmissions: owner.tx_count[i],
                receptions: owner.rx_count[i],
            }
        })
        .collect();
    let observations = crate::sim_driver::canonicalize(std::mem::take(
        &mut states[sink_shard].driver.observations,
    ));
    SimOutcome {
        end_time,
        flows,
        observations,
        truth,
        nodes,
        link_losses,
        rng_draws,
        events,
        peak_fes,
        allocs: mem.allocs,
        alloc_bytes: mem.bytes,
        shards: shard_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPolicy, VictimPolicy};
    use crate::delay::DelayPlan;
    use tempriv_net::convergecast::Convergecast;
    use tempriv_net::traffic::TrafficModel;
    use tempriv_telemetry::PhaseProfiler;

    fn figure1(policy: BufferPolicy) -> NetworkSimulation {
        let layout = Convergecast::paper_figure1();
        sim_for(layout, policy)
    }

    /// Four disjoint chains into the sink: four sink-subtrees, so a
    /// multi-shard cut produces genuine cross-shard handoffs.
    fn star(policy: BufferPolicy) -> NetworkSimulation {
        let layout = Convergecast::builder()
            .trunk_hops(0)
            .flows([15, 22, 9, 11])
            .build()
            .unwrap();
        sim_for(layout, policy)
    }

    fn sim_for(layout: Convergecast, policy: BufferPolicy) -> NetworkSimulation {
        NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(200)
            .buffer_policy(policy)
            .seed(2007)
            .build()
            .unwrap()
    }

    #[test]
    fn plan_covers_every_node_and_is_deterministic() {
        let layout = Convergecast::paper_figure1();
        let routing = layout.routing();
        let plan = ShardPlan::cut(routing, 3);
        assert_eq!(plan.shard_of().len(), routing.len());
        assert_eq!(plan.shard_of()[routing.sink().index()], 0);
        assert!(plan.shard_of().iter().all(|&s| s < 3));
        assert_eq!(plan, ShardPlan::cut(routing, 3));
        // Every node's next hop is in the same shard unless it is the
        // sink: the exact plan cuts only trunk edges.
        for i in 0..routing.len() {
            let node = NodeId(i as u32);
            if let Some(next) = routing.next_hop(node) {
                if next != routing.sink() {
                    assert_eq!(
                        plan.shard_of()[i],
                        plan.shard_of()[next.index()],
                        "edge {node}->{next} must not be cut"
                    );
                }
            }
        }
        let total: u64 = (0..3).map(|s| plan.nodes_in(s)).sum();
        assert_eq!(total, routing.len() as u64);
    }

    #[test]
    fn load_carving_balances_a_single_giant_subtree() {
        // A long chain with one source at the tip is the degenerate
        // trunk-cut case (a single sink-subtree). Transit-load carving
        // must split it into pieces with roughly equal transit totals.
        let layout = Convergecast::builder()
            .trunk_hops(0)
            .flows([120])
            .build()
            .unwrap();
        let routing = layout.routing();
        let sources = layout.sources();
        let trunk_only = ShardPlan::cut(routing, 4);
        assert_eq!(trunk_only.nodes_in(0), routing.len() as u64);
        let plan = ShardPlan::cut_balanced(routing, sources, 4);
        assert_eq!(plan, ShardPlan::cut_balanced(routing, sources, 4));
        // Transit load per shard: the single source at the chain tip
        // loads every chain node once.
        let sink = routing.sink().index();
        let mut shard_load = [0u64; 4];
        for i in 0..routing.len() {
            if i != sink {
                shard_load[plan.shard_of()[i] as usize] += 1;
            }
        }
        let max = *shard_load.iter().max().unwrap();
        let min = *shard_load.iter().min().unwrap();
        assert!(min > 0, "every shard carries load: {shard_load:?}");
        assert!(
            max <= 2 * min.max(1),
            "loads stay within 2x of each other: {shard_load:?}"
        );
    }

    #[test]
    fn one_shard_reproduces_the_serial_run_exactly() {
        let sim = figure1(BufferPolicy::paper_rcad());
        let serial = sim.run();
        let sharded = sim.run_sharded(1, 1);
        assert_eq!(serial, sharded);
        assert_eq!(serial.digest(), sharded.digest());
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.shards[0].events, sharded.events);
        assert_eq!(sharded.shards[0].handoffs_out, 0);
    }

    #[test]
    fn single_subtree_layouts_collapse_onto_one_shard() {
        // Figure 1 shares one trunk into the sink, so under the exact
        // cut every node lands on shard 0 and a multi-shard run
        // degenerates to serial with zero handoffs.
        let sim = figure1(BufferPolicy::paper_rcad());
        let serial = sim.run();
        let sharded = sim.run_sharded(4, 2);
        assert_eq!(serial.digest(), sharded.digest());
        assert_eq!(serial.events, sharded.events);
        assert!(sharded.shards.iter().all(|s| s.handoffs_out == 0));
        assert_eq!(sharded.shards[0].events, sharded.events);
    }

    #[test]
    fn balanced_cut_spreads_a_shared_trunk_and_stays_worker_invariant() {
        // The balanced cut carves the Figure-1 trunk across shards:
        // real handoffs flow, every worker count reproduces the same
        // outcome bit-for-bit, and the packet population is conserved.
        // (Serial bit-equality is intentionally NOT asserted — interior
        // handoffs resolve same-instant ties by insertion order.)
        let sim = figure1(BufferPolicy::paper_rcad());
        let serial = sim.run();
        let reference = sim.run_sharded_balanced(4, 1);
        assert!(reference.shards.iter().any(|s| s.handoffs_out > 0));
        assert!(reference.shards.iter().filter(|s| s.events > 0).count() > 1);
        let created: u64 = serial.flows.iter().map(|f| f.created).sum();
        for out in [&serial, &reference] {
            assert_eq!(
                out.total_delivered() + out.total_drops() + out.total_stranded(),
                created,
                "delivered + dropped + stranded = created"
            );
        }
        assert_eq!(serial.events, reference.events);
        assert_eq!(serial.rng_draws, reference.rng_draws);
        for workers in [2, 4] {
            let run = sim.run_sharded_balanced(4, workers);
            assert_eq!(reference, run, "workers={workers}");
            assert_eq!(reference.digest(), run.digest(), "workers={workers}");
        }
    }

    #[test]
    fn multi_shard_reproduces_serial_digests_for_paper_configs() {
        for policy in [
            BufferPolicy::Unlimited,
            BufferPolicy::paper_rcad(),
            BufferPolicy::ThresholdMix { threshold: 8 },
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Oldest,
            },
        ] {
            let sim = star(policy);
            let serial = sim.run();
            let sharded = sim.run_sharded(4, 1);
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "policy {policy:?} must digest identically"
            );
            assert_eq!(serial.events, sharded.events, "policy {policy:?}");
            assert_eq!(serial.rng_draws, sharded.rng_draws, "policy {policy:?}");
            assert_eq!(serial.observations, sharded.observations);
            assert_eq!(serial.truth, sharded.truth);
            assert_eq!(serial.nodes, sharded.nodes);
            assert!(sharded.shards.iter().any(|s| s.handoffs_out > 0));
        }
    }

    #[test]
    fn worker_count_never_changes_the_outcome() {
        let sim = star(BufferPolicy::paper_rcad());
        let one = sim.run_sharded(4, 1);
        for workers in [2, 3, 4, 8] {
            let many = sim.run_sharded(4, workers);
            assert_eq!(one, many, "workers={workers}");
            assert_eq!(one.shards, many.shards, "workers={workers}");
        }
    }

    #[test]
    fn no_delay_plans_shard_too() {
        let sim = {
            let layout = Convergecast::paper_figure1();
            NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
                .traffic(TrafficModel::periodic(2.0))
                .packets_per_source(100)
                .delay_plan(DelayPlan::no_delay())
                .buffer_policy(BufferPolicy::Unlimited)
                .build()
                .unwrap()
        };
        let serial = sim.run();
        let sharded = sim.run_sharded(3, 2);
        assert_eq!(serial.digest(), sharded.digest());
        assert_eq!(serial.events, sharded.events);
    }

    #[test]
    fn profiled_sharded_runs_attribute_barrier_wait() {
        let sim = figure1(BufferPolicy::paper_rcad());
        let plain = sim.run_sharded(2, 1);
        let mut profiler = PhaseProfiler::with_batch(8);
        let profiled = sim.run_sharded_profiled(2, 1, &mut profiler);
        assert_eq!(plain, profiled, "the timer must not perturb the run");
        let breakdown = profiler.finish();
        let barrier = breakdown
            .phases
            .iter()
            .find(|p| p.phase == "barrier_wait")
            .expect("barrier_wait phase is reported");
        assert!(barrier.count > 0, "the barrier phase must have fired");
    }
}

//! Node buffers and the RCAD preemption policy (paper §5).
//!
//! A delaying node holds each packet until its private delay timer fires.
//! With a finite buffer of `k` slots, an arrival that finds the buffer
//! full must be handled:
//!
//! * **drop-tail** discards the arriving packet (the plain M/M/k/k model
//!   of §4), or
//! * **RCAD** preempts: it selects a *victim* among the buffered packets —
//!   the one with the shortest remaining delay, so the realized delays
//!   stay closest to the intended distribution — transmits it
//!   immediately, and buffers the new packet.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tempriv_net::ids::PacketId;
use tempriv_net::packet::Packet;
use tempriv_sim::queue::EventId;
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimTime;

/// What a node does when a packet arrives and the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BufferPolicy {
    /// No capacity limit — the idealized M/M/∞ of §4.
    Unlimited,
    /// `capacity` slots; arrivals beyond that are dropped.
    DropTail {
        /// Buffer slots.
        capacity: usize,
    },
    /// `capacity` slots; arrivals beyond that preempt a victim, which is
    /// transmitted immediately (Rate-Controlled Adaptive Delaying).
    Rcad {
        /// Buffer slots.
        capacity: usize,
        /// How the victim is chosen.
        victim: VictimPolicy,
    },
    /// A Chaum-style threshold mix (related work, §6): packets wait with
    /// *no* individual timers; once `threshold` are buffered the node
    /// flushes them all at once. The node's delay plan is ignored —
    /// batching, not random delay, provides the obfuscation.
    ThresholdMix {
        /// Batch size that triggers a flush.
        threshold: usize,
    },
}

impl BufferPolicy {
    /// The paper's evaluation configuration: RCAD with the Mica-2-like
    /// 10-slot buffer and shortest-remaining-delay victims.
    #[must_use]
    pub const fn paper_rcad() -> Self {
        BufferPolicy::Rcad {
            capacity: 10,
            victim: VictimPolicy::ShortestRemaining,
        }
    }

    /// Buffer capacity, if finite (for a threshold mix this is the batch
    /// size — the most it ever holds).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match *self {
            BufferPolicy::Unlimited => None,
            BufferPolicy::DropTail { capacity } | BufferPolicy::Rcad { capacity, .. } => {
                Some(capacity)
            }
            BufferPolicy::ThresholdMix { threshold } => Some(threshold),
        }
    }

    /// Validates the policy (finite capacities must be positive).
    ///
    /// # Errors
    ///
    /// Returns a message describing the problem.
    pub fn validate(&self) -> Result<(), String> {
        match self.capacity() {
            Some(0) => Err("finite buffer capacity must be at least 1".into()),
            _ => Ok(()),
        }
    }
}

/// Victim-selection rule for RCAD preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VictimPolicy {
    /// The packet with the least remaining delay — the paper's choice,
    /// keeping realized delays closest to the intended distribution.
    ShortestRemaining,
    /// The packet with the most remaining delay (ablation).
    LongestRemaining,
    /// A uniformly random buffered packet (ablation).
    Random,
    /// The packet buffered earliest (FIFO head, ablation).
    Oldest,
}

impl VictimPolicy {
    /// Stable snake_case name, used to label preemption trace events.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            VictimPolicy::ShortestRemaining => "shortest_remaining",
            VictimPolicy::LongestRemaining => "longest_remaining",
            VictimPolicy::Random => "random",
            VictimPolicy::Oldest => "oldest",
        }
    }
}

/// One buffered packet with its scheduled release.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// When the packet entered the buffer.
    pub buffered_at: SimTime,
    /// When its delay timer fires ([`SimTime::MAX`] for mix entries,
    /// which have no timer).
    pub release_at: SimTime,
    /// The pending release event (cancelled on preemption); `None` for
    /// threshold-mix entries, which are released by batch flushes.
    pub timer: Option<EventId>,
}

/// A node's delay buffer: packets keyed by id, scanned for victims.
///
/// Iteration order is `PacketId` order (a `BTreeMap`), so victim ties
/// break deterministically and runs reproduce bit-for-bit.
#[derive(Debug, Default)]
pub struct NodeBuffer {
    entries: BTreeMap<PacketId, BufferedPacket>,
    high_water: usize,
}

impl NodeBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        NodeBuffer {
            entries: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most packets this buffer has ever held simultaneously.
    #[must_use]
    pub const fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet id is already buffered here (a packet cannot
    /// occupy two slots).
    pub fn insert(&mut self, entry: BufferedPacket) {
        let id = entry.packet.id;
        let prev = self.entries.insert(id, entry);
        assert!(prev.is_none(), "packet {id} already buffered");
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Removes and returns the packet with the given id.
    #[must_use]
    pub fn remove(&mut self, id: PacketId) -> Option<BufferedPacket> {
        self.entries.remove(&id)
    }

    /// Chooses a victim according to `policy`; `None` if empty.
    ///
    /// Ties break toward the smallest packet id.
    #[must_use]
    pub fn select_victim(&self, policy: VictimPolicy, rng: &mut SimRng) -> Option<PacketId> {
        if self.entries.is_empty() {
            return None;
        }
        let id = match policy {
            VictimPolicy::ShortestRemaining => self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.release_at, **id))
                .map(|(id, _)| *id)?,
            VictimPolicy::LongestRemaining => {
                // max by release time, ties toward smallest id.
                self.entries
                    .iter()
                    .max_by(|(ida, a), (idb, b)| {
                        a.release_at.cmp(&b.release_at).then_with(|| idb.cmp(ida))
                    })
                    .map(|(id, _)| *id)?
            }
            VictimPolicy::Random => {
                let idx = rng.sample_index(self.entries.len());
                *self.entries.keys().nth(idx).expect("index in range")
            }
            VictimPolicy::Oldest => self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.buffered_at, **id))
                .map(|(id, _)| *id)?,
        };
        Some(id)
    }

    /// Iterates over buffered entries in packet-id order.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPacket> {
        self.entries.values()
    }

    /// Removes and returns every buffered entry in packet-id order (a
    /// threshold-mix flush).
    pub fn drain_all(&mut self) -> Vec<BufferedPacket> {
        std::mem::take(&mut self.entries).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_net::ids::{FlowId, NodeId};
    use tempriv_sim::queue::EventQueue;
    use tempriv_sim::rng::RngFactory;

    fn entry(q: &mut EventQueue<()>, id: u64, buffered_at: f64, release_at: f64) -> BufferedPacket {
        let timer = Some(q.push(SimTime::from_units(release_at), ()));
        BufferedPacket {
            packet: Packet::new(
                PacketId(id),
                FlowId(0),
                NodeId(0),
                id as u32,
                SimTime::from_units(buffered_at),
                0.0,
            ),
            buffered_at: SimTime::from_units(buffered_at),
            release_at: SimTime::from_units(release_at),
            timer,
        }
    }

    fn rng() -> SimRng {
        RngFactory::new(8).stream(0)
    }

    #[test]
    fn shortest_remaining_picks_earliest_release() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 50.0));
        buf.insert(entry(&mut q, 2, 1.0, 20.0));
        buf.insert(entry(&mut q, 3, 2.0, 35.0));
        let v = buf
            .select_victim(VictimPolicy::ShortestRemaining, &mut rng())
            .unwrap();
        assert_eq!(v, PacketId(2));
    }

    #[test]
    fn longest_remaining_picks_latest_release() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 50.0));
        buf.insert(entry(&mut q, 2, 1.0, 20.0));
        let v = buf
            .select_victim(VictimPolicy::LongestRemaining, &mut rng())
            .unwrap();
        assert_eq!(v, PacketId(1));
    }

    #[test]
    fn oldest_picks_earliest_buffered() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 5, 3.0, 10.0));
        buf.insert(entry(&mut q, 6, 1.0, 90.0));
        let v = buf.select_victim(VictimPolicy::Oldest, &mut rng()).unwrap();
        assert_eq!(v, PacketId(6));
    }

    #[test]
    fn random_victim_is_a_member() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        for i in 0..5 {
            buf.insert(entry(&mut q, i, 0.0, 10.0 + i as f64));
        }
        let mut r = rng();
        for _ in 0..50 {
            let v = buf.select_victim(VictimPolicy::Random, &mut r).unwrap();
            assert!(v.0 < 5);
        }
    }

    #[test]
    fn ties_break_by_packet_id() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 9, 0.0, 10.0));
        buf.insert(entry(&mut q, 2, 0.0, 10.0));
        let mut r = rng();
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut r),
            Some(PacketId(2))
        );
        assert_eq!(
            buf.select_victim(VictimPolicy::LongestRemaining, &mut r),
            Some(PacketId(2))
        );
        assert_eq!(
            buf.select_victim(VictimPolicy::Oldest, &mut r),
            Some(PacketId(2))
        );
    }

    #[test]
    fn empty_buffer_has_no_victim() {
        let buf = NodeBuffer::new();
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut rng()),
            None
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn remove_round_trips() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 4, 0.0, 10.0));
        assert_eq!(buf.len(), 1);
        let got = buf.remove(PacketId(4)).unwrap();
        assert_eq!(got.packet.id, PacketId(4));
        assert!(buf.remove(PacketId(4)).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_all_empties_in_id_order() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 7, 0.0, 10.0));
        buf.insert(entry(&mut q, 3, 1.0, 20.0));
        let drained = buf.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].packet.id, PacketId(3));
        assert_eq!(drained[1].packet.id, PacketId(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        assert_eq!(buf.high_water(), 0);
        buf.insert(entry(&mut q, 1, 0.0, 10.0));
        buf.insert(entry(&mut q, 2, 0.0, 20.0));
        buf.insert(entry(&mut q, 3, 0.0, 30.0));
        assert_eq!(buf.high_water(), 3);
        let _ = buf.remove(PacketId(1));
        let _ = buf.remove(PacketId(2));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.high_water(), 3, "draining does not lower the mark");
        let _ = buf.drain_all();
        assert_eq!(buf.high_water(), 3);
    }

    #[test]
    #[should_panic(expected = "already buffered")]
    fn duplicate_insert_rejected() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 10.0));
        buf.insert(entry(&mut q, 1, 1.0, 20.0));
    }

    #[test]
    fn policy_helpers() {
        assert_eq!(BufferPolicy::paper_rcad().capacity(), Some(10));
        assert_eq!(BufferPolicy::Unlimited.capacity(), None);
        assert!(BufferPolicy::Unlimited.validate().is_ok());
        assert!(BufferPolicy::DropTail { capacity: 0 }.validate().is_err());
        assert!(BufferPolicy::paper_rcad().validate().is_ok());
        assert_eq!(
            BufferPolicy::ThresholdMix { threshold: 5 }.capacity(),
            Some(5)
        );
        assert!(BufferPolicy::ThresholdMix { threshold: 0 }
            .validate()
            .is_err());
    }
}

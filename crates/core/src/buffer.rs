//! Node buffers and the RCAD preemption policy (paper §5).
//!
//! A delaying node holds each packet until its private delay timer fires.
//! With a finite buffer of `k` slots, an arrival that finds the buffer
//! full must be handled:
//!
//! * **drop-tail** discards the arriving packet (the plain M/M/k/k model
//!   of §4), or
//! * **RCAD** preempts: it selects a *victim* among the buffered packets —
//!   the one with the shortest remaining delay, so the realized delays
//!   stay closest to the intended distribution — transmits it
//!   immediately, and buffers the new packet.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use tempriv_net::ids::PacketId;
use tempriv_net::packet::Packet;
use tempriv_sim::queue::EventId;
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimTime;

/// What a node does when a packet arrives and the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BufferPolicy {
    /// No capacity limit — the idealized M/M/∞ of §4.
    Unlimited,
    /// `capacity` slots; arrivals beyond that are dropped.
    DropTail {
        /// Buffer slots.
        capacity: usize,
    },
    /// `capacity` slots; arrivals beyond that preempt a victim, which is
    /// transmitted immediately (Rate-Controlled Adaptive Delaying).
    Rcad {
        /// Buffer slots.
        capacity: usize,
        /// How the victim is chosen.
        victim: VictimPolicy,
    },
    /// A Chaum-style threshold mix (related work, §6): packets wait with
    /// *no* individual timers; once `threshold` are buffered the node
    /// flushes them all at once. The node's delay plan is ignored —
    /// batching, not random delay, provides the obfuscation.
    ThresholdMix {
        /// Batch size that triggers a flush.
        threshold: usize,
    },
}

impl BufferPolicy {
    /// The paper's evaluation configuration: RCAD with the Mica-2-like
    /// 10-slot buffer and shortest-remaining-delay victims.
    #[must_use]
    pub const fn paper_rcad() -> Self {
        BufferPolicy::Rcad {
            capacity: 10,
            victim: VictimPolicy::ShortestRemaining,
        }
    }

    /// Buffer capacity, if finite (for a threshold mix this is the batch
    /// size — the most it ever holds).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match *self {
            BufferPolicy::Unlimited => None,
            BufferPolicy::DropTail { capacity } | BufferPolicy::Rcad { capacity, .. } => {
                Some(capacity)
            }
            BufferPolicy::ThresholdMix { threshold } => Some(threshold),
        }
    }

    /// Validates the policy (finite capacities must be positive).
    ///
    /// # Errors
    ///
    /// Returns a message describing the problem.
    pub fn validate(&self) -> Result<(), String> {
        match self.capacity() {
            Some(0) => Err("finite buffer capacity must be at least 1".into()),
            _ => Ok(()),
        }
    }
}

/// Victim-selection rule for RCAD preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VictimPolicy {
    /// The packet with the least remaining delay — the paper's choice,
    /// keeping realized delays closest to the intended distribution.
    ShortestRemaining,
    /// The packet with the most remaining delay (ablation).
    LongestRemaining,
    /// A uniformly random buffered packet (ablation).
    Random,
    /// The packet buffered earliest (FIFO head, ablation).
    Oldest,
}

impl VictimPolicy {
    /// Stable snake_case name, used to label preemption trace events.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            VictimPolicy::ShortestRemaining => "shortest_remaining",
            VictimPolicy::LongestRemaining => "longest_remaining",
            VictimPolicy::Random => "random",
            VictimPolicy::Oldest => "oldest",
        }
    }
}

/// One buffered packet with its scheduled release.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// When the packet entered the buffer.
    pub buffered_at: SimTime,
    /// When its delay timer fires ([`SimTime::MAX`] for mix entries,
    /// which have no timer).
    pub release_at: SimTime,
    /// The pending release event (cancelled on preemption); `None` for
    /// threshold-mix entries, which are released by batch flushes.
    pub timer: Option<EventId>,
}

/// Secondary index kept alongside the entry map so victim selection is
/// O(log n) instead of a full scan. Which variant (if any) is maintained
/// depends on the victim policy the buffer was built for — buffers that
/// never preempt pay nothing.
///
/// Every variant reproduces the linear scan's answer *exactly*, including
/// the smallest-`PacketId` tie-break (asserted by the property tests in
/// `tests/properties.rs`).
#[derive(Debug, Default, Clone)]
enum VictimIndex {
    /// No index; [`NodeBuffer::select_victim`] falls back to the scan.
    #[default]
    None,
    /// Sorted by `(release_at, id)`: `first()` is the shortest-remaining
    /// victim, and the largest release time keys the longest-remaining one.
    ByRelease(BTreeSet<(SimTime, PacketId)>),
    /// Sorted by `(buffered_at, id)`: `first()` is the oldest victim.
    ByBuffered(BTreeSet<(SimTime, PacketId)>),
    /// Sorted packet ids: the random policy draws an index and takes the
    /// idx-th smallest id, exactly as the scan's `keys().nth(idx)` did.
    ById(Vec<PacketId>),
}

impl VictimIndex {
    fn for_policy(policy: VictimPolicy) -> Self {
        match policy {
            VictimPolicy::ShortestRemaining | VictimPolicy::LongestRemaining => {
                VictimIndex::ByRelease(BTreeSet::new())
            }
            VictimPolicy::Oldest => VictimIndex::ByBuffered(BTreeSet::new()),
            VictimPolicy::Random => VictimIndex::ById(Vec::new()),
        }
    }
}

/// A node's delay buffer: packets keyed by id, with an optional victim
/// index (see [`NodeBuffer::for_policy`]).
///
/// Iteration order is `PacketId` order (a `BTreeMap`), so victim ties
/// break deterministically and runs reproduce bit-for-bit.
#[derive(Debug, Default, Clone)]
pub struct NodeBuffer {
    entries: BTreeMap<PacketId, BufferedPacket>,
    index: VictimIndex,
    high_water: usize,
}

impl NodeBuffer {
    /// Creates an empty buffer with no victim index (victim selection
    /// falls back to the linear scan).
    #[must_use]
    pub fn new() -> Self {
        NodeBuffer {
            entries: BTreeMap::new(),
            index: VictimIndex::None,
            high_water: 0,
        }
    }

    /// Creates an empty buffer indexed for `policy`'s victim rule, when
    /// the policy preempts. Non-preempting policies get the plain buffer,
    /// so they pay no index-maintenance cost per insert/remove.
    #[must_use]
    pub fn for_policy(policy: &BufferPolicy) -> Self {
        let index = match policy {
            BufferPolicy::Rcad { victim, .. } => VictimIndex::for_policy(*victim),
            _ => VictimIndex::None,
        };
        NodeBuffer {
            entries: BTreeMap::new(),
            index,
            high_water: 0,
        }
    }

    #[inline]
    fn index_insert(&mut self, entry: &BufferedPacket) {
        match &mut self.index {
            VictimIndex::None => {}
            VictimIndex::ByRelease(set) => {
                set.insert((entry.release_at, entry.packet.id));
            }
            VictimIndex::ByBuffered(set) => {
                set.insert((entry.buffered_at, entry.packet.id));
            }
            VictimIndex::ById(ids) => {
                let pos = ids
                    .binary_search(&entry.packet.id)
                    .expect_err("id cannot already be indexed");
                ids.insert(pos, entry.packet.id);
            }
        }
    }

    #[inline]
    fn index_remove(&mut self, entry: &BufferedPacket) {
        match &mut self.index {
            VictimIndex::None => {}
            VictimIndex::ByRelease(set) => {
                set.remove(&(entry.release_at, entry.packet.id));
            }
            VictimIndex::ByBuffered(set) => {
                set.remove(&(entry.buffered_at, entry.packet.id));
            }
            VictimIndex::ById(ids) => {
                let pos = ids
                    .binary_search(&entry.packet.id)
                    .expect("indexed id must be present");
                ids.remove(pos);
            }
        }
    }

    /// Number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most packets this buffer has ever held simultaneously.
    #[must_use]
    pub const fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet id is already buffered here (a packet cannot
    /// occupy two slots).
    pub fn insert(&mut self, entry: BufferedPacket) {
        let id = entry.packet.id;
        self.index_insert(&entry);
        let prev = self.entries.insert(id, entry);
        assert!(prev.is_none(), "packet {id} already buffered");
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Removes and returns the packet with the given id.
    #[must_use]
    pub fn remove(&mut self, id: PacketId) -> Option<BufferedPacket> {
        let entry = self.entries.remove(&id)?;
        self.index_remove(&entry);
        Some(entry)
    }

    /// Chooses a victim according to `policy`; `None` if empty.
    ///
    /// Ties break toward the smallest packet id. When the buffer carries
    /// the matching index (see [`NodeBuffer::for_policy`]) this is
    /// O(log n); otherwise it falls back to
    /// [`NodeBuffer::select_victim_scan`]. Both paths consume the same
    /// RNG draws and return the same victim.
    #[must_use]
    pub fn select_victim(&self, policy: VictimPolicy, rng: &mut SimRng) -> Option<PacketId> {
        if self.entries.is_empty() {
            return None;
        }
        match (policy, &self.index) {
            (VictimPolicy::ShortestRemaining, VictimIndex::ByRelease(set)) => {
                set.first().map(|&(_, id)| id)
            }
            (VictimPolicy::LongestRemaining, VictimIndex::ByRelease(set)) => {
                // Max release time, ties toward the smallest id: every key
                // at or above `(max_release, PacketId(0))` shares the
                // maximal release time, so the range's first entry is the
                // smallest id among them.
                let &(max_release, _) = set.last()?;
                set.range((max_release, PacketId(0))..)
                    .next()
                    .map(|&(_, id)| id)
            }
            (VictimPolicy::Oldest, VictimIndex::ByBuffered(set)) => set.first().map(|&(_, id)| id),
            (VictimPolicy::Random, VictimIndex::ById(ids)) => {
                let idx = rng.sample_index(ids.len());
                Some(ids[idx])
            }
            _ => self.select_victim_scan(policy, rng),
        }
    }

    /// The reference linear scan over the entry map. Kept public so the
    /// property tests can pit the indexed path against it; buffers built
    /// with [`NodeBuffer::new`] use it implicitly.
    #[must_use]
    pub fn select_victim_scan(&self, policy: VictimPolicy, rng: &mut SimRng) -> Option<PacketId> {
        if self.entries.is_empty() {
            return None;
        }
        let id = match policy {
            VictimPolicy::ShortestRemaining => self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.release_at, **id))
                .map(|(id, _)| *id)?,
            VictimPolicy::LongestRemaining => {
                // max by release time, ties toward smallest id.
                self.entries
                    .iter()
                    .max_by(|(ida, a), (idb, b)| {
                        a.release_at.cmp(&b.release_at).then_with(|| idb.cmp(ida))
                    })
                    .map(|(id, _)| *id)?
            }
            VictimPolicy::Random => {
                let idx = rng.sample_index(self.entries.len());
                *self.entries.keys().nth(idx).expect("index in range")
            }
            VictimPolicy::Oldest => self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.buffered_at, **id))
                .map(|(id, _)| *id)?,
        };
        Some(id)
    }

    /// Iterates over buffered entries in packet-id order.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPacket> {
        self.entries.values()
    }

    /// Removes and returns every buffered entry in packet-id order (a
    /// threshold-mix flush).
    pub fn drain_all(&mut self) -> Vec<BufferedPacket> {
        self.clear_index();
        std::mem::take(&mut self.entries).into_values().collect()
    }

    /// Drains every buffered entry in packet-id order into `out`
    /// (clearing it first) — the allocation-free flush the driver uses so
    /// threshold-mix batches reuse one scratch buffer for the whole run.
    pub fn drain_all_into(&mut self, out: &mut Vec<BufferedPacket>) {
        out.clear();
        self.clear_index();
        let entries = std::mem::take(&mut self.entries);
        out.extend(entries.into_values());
    }

    fn clear_index(&mut self) {
        match &mut self.index {
            VictimIndex::None => {}
            VictimIndex::ByRelease(set) | VictimIndex::ByBuffered(set) => set.clear(),
            VictimIndex::ById(ids) => ids.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_net::ids::{FlowId, NodeId};
    use tempriv_sim::queue::EventQueue;
    use tempriv_sim::rng::RngFactory;

    fn entry(q: &mut EventQueue<()>, id: u64, buffered_at: f64, release_at: f64) -> BufferedPacket {
        let timer = Some(q.push(SimTime::from_units(release_at), ()));
        BufferedPacket {
            packet: Packet::new(
                PacketId(id),
                FlowId(0),
                NodeId(0),
                id as u32,
                SimTime::from_units(buffered_at),
                0.0,
            ),
            buffered_at: SimTime::from_units(buffered_at),
            release_at: SimTime::from_units(release_at),
            timer,
        }
    }

    fn rng() -> SimRng {
        RngFactory::new(8).stream(0)
    }

    #[test]
    fn shortest_remaining_picks_earliest_release() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 50.0));
        buf.insert(entry(&mut q, 2, 1.0, 20.0));
        buf.insert(entry(&mut q, 3, 2.0, 35.0));
        let v = buf
            .select_victim(VictimPolicy::ShortestRemaining, &mut rng())
            .unwrap();
        assert_eq!(v, PacketId(2));
    }

    #[test]
    fn longest_remaining_picks_latest_release() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 50.0));
        buf.insert(entry(&mut q, 2, 1.0, 20.0));
        let v = buf
            .select_victim(VictimPolicy::LongestRemaining, &mut rng())
            .unwrap();
        assert_eq!(v, PacketId(1));
    }

    #[test]
    fn oldest_picks_earliest_buffered() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 5, 3.0, 10.0));
        buf.insert(entry(&mut q, 6, 1.0, 90.0));
        let v = buf.select_victim(VictimPolicy::Oldest, &mut rng()).unwrap();
        assert_eq!(v, PacketId(6));
    }

    #[test]
    fn random_victim_is_a_member() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        for i in 0..5 {
            buf.insert(entry(&mut q, i, 0.0, 10.0 + i as f64));
        }
        let mut r = rng();
        for _ in 0..50 {
            let v = buf.select_victim(VictimPolicy::Random, &mut r).unwrap();
            assert!(v.0 < 5);
        }
    }

    #[test]
    fn ties_break_by_packet_id() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 9, 0.0, 10.0));
        buf.insert(entry(&mut q, 2, 0.0, 10.0));
        let mut r = rng();
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut r),
            Some(PacketId(2))
        );
        assert_eq!(
            buf.select_victim(VictimPolicy::LongestRemaining, &mut r),
            Some(PacketId(2))
        );
        assert_eq!(
            buf.select_victim(VictimPolicy::Oldest, &mut r),
            Some(PacketId(2))
        );
    }

    #[test]
    fn empty_buffer_has_no_victim() {
        let buf = NodeBuffer::new();
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut rng()),
            None
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn remove_round_trips() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 4, 0.0, 10.0));
        assert_eq!(buf.len(), 1);
        let got = buf.remove(PacketId(4)).unwrap();
        assert_eq!(got.packet.id, PacketId(4));
        assert!(buf.remove(PacketId(4)).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_all_empties_in_id_order() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 7, 0.0, 10.0));
        buf.insert(entry(&mut q, 3, 1.0, 20.0));
        let drained = buf.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].packet.id, PacketId(3));
        assert_eq!(drained[1].packet.id, PacketId(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        assert_eq!(buf.high_water(), 0);
        buf.insert(entry(&mut q, 1, 0.0, 10.0));
        buf.insert(entry(&mut q, 2, 0.0, 20.0));
        buf.insert(entry(&mut q, 3, 0.0, 30.0));
        assert_eq!(buf.high_water(), 3);
        let _ = buf.remove(PacketId(1));
        let _ = buf.remove(PacketId(2));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.high_water(), 3, "draining does not lower the mark");
        let _ = buf.drain_all();
        assert_eq!(buf.high_water(), 3);
    }

    fn rcad(victim: VictimPolicy) -> BufferPolicy {
        BufferPolicy::Rcad {
            capacity: 10,
            victim,
        }
    }

    #[test]
    fn indexed_buffers_agree_with_scan() {
        // Same contents, same policy: the indexed fast path and the
        // reference scan must pick the same victim, including on release
        // and buffered-time ties (ids 2 and 9 tie everywhere).
        for policy in [
            VictimPolicy::ShortestRemaining,
            VictimPolicy::LongestRemaining,
            VictimPolicy::Oldest,
        ] {
            let mut q = EventQueue::new();
            let mut buf = NodeBuffer::for_policy(&rcad(policy));
            for (id, buffered, release) in [
                (9, 0.0, 10.0),
                (2, 0.0, 10.0),
                (5, 1.0, 50.0),
                (7, 2.0, 5.0),
            ] {
                buf.insert(entry(&mut q, id, buffered, release));
            }
            let mut r = rng();
            let fast = buf.select_victim(policy, &mut r);
            let slow = buf.select_victim_scan(policy, &mut rng());
            assert_eq!(fast, slow, "{policy:?}");
        }
    }

    #[test]
    fn random_index_matches_scan_draw_for_draw() {
        let mut q = EventQueue::new();
        let mut indexed = NodeBuffer::for_policy(&rcad(VictimPolicy::Random));
        let mut plain = NodeBuffer::new();
        for (id, buffered, release) in [(4, 0.0, 9.0), (1, 0.5, 7.0), (8, 1.0, 3.0)] {
            indexed.insert(entry(&mut q, id, buffered, release));
            plain.insert(entry(&mut q, id + 100, buffered, release));
        }
        let _ = plain.remove(PacketId(104));
        let _ = plain.remove(PacketId(101));
        let _ = plain.remove(PacketId(108));
        for (id, buffered, release) in [(4, 0.0, 9.0), (1, 0.5, 7.0), (8, 1.0, 3.0)] {
            plain.insert(entry(&mut q, id + 200, buffered, release));
        }
        // Two identically seeded RNG streams: both paths must consume
        // exactly one draw per selection and pick the idx-th smallest id.
        let (mut ra, mut rb) = (rng(), rng());
        for _ in 0..20 {
            let a = indexed
                .select_victim(VictimPolicy::Random, &mut ra)
                .unwrap();
            let b = plain.select_victim(VictimPolicy::Random, &mut rb).unwrap();
            assert_eq!(a.0, b.0 - 200);
            assert_eq!(ra.draws(), rb.draws());
        }
    }

    #[test]
    fn index_survives_removals() {
        let policy = VictimPolicy::ShortestRemaining;
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::for_policy(&rcad(policy));
        buf.insert(entry(&mut q, 1, 0.0, 10.0));
        buf.insert(entry(&mut q, 2, 0.0, 20.0));
        buf.insert(entry(&mut q, 3, 0.0, 30.0));
        assert_eq!(buf.select_victim(policy, &mut rng()), Some(PacketId(1)));
        let _ = buf.remove(PacketId(1));
        assert_eq!(buf.select_victim(policy, &mut rng()), Some(PacketId(2)));
        let _ = buf.remove(PacketId(2));
        let _ = buf.remove(PacketId(3));
        assert_eq!(buf.select_victim(policy, &mut rng()), None);
    }

    #[test]
    fn drain_all_into_reuses_scratch() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::for_policy(&rcad(VictimPolicy::Oldest));
        let mut scratch = vec![entry(&mut q, 99, 0.0, 1.0)]; // stale content
        buf.insert(entry(&mut q, 7, 0.0, 10.0));
        buf.insert(entry(&mut q, 3, 1.0, 20.0));
        buf.drain_all_into(&mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch[0].packet.id, PacketId(3));
        assert_eq!(scratch[1].packet.id, PacketId(7));
        assert!(buf.is_empty());
        // The index was cleared with the entries: refilling works.
        buf.insert(entry(&mut q, 5, 2.0, 30.0));
        assert_eq!(
            buf.select_victim(VictimPolicy::Oldest, &mut rng()),
            Some(PacketId(5))
        );
    }

    #[test]
    #[should_panic(expected = "already buffered")]
    fn duplicate_insert_rejected() {
        let mut q = EventQueue::new();
        let mut buf = NodeBuffer::new();
        buf.insert(entry(&mut q, 1, 0.0, 10.0));
        buf.insert(entry(&mut q, 1, 1.0, 20.0));
    }

    #[test]
    fn policy_helpers() {
        assert_eq!(BufferPolicy::paper_rcad().capacity(), Some(10));
        assert_eq!(BufferPolicy::Unlimited.capacity(), None);
        assert!(BufferPolicy::Unlimited.validate().is_ok());
        assert!(BufferPolicy::DropTail { capacity: 0 }.validate().is_err());
        assert!(BufferPolicy::paper_rcad().validate().is_ok());
        assert_eq!(
            BufferPolicy::ThresholdMix { threshold: 5 }.capacity(),
            Some(5)
        );
        assert!(BufferPolicy::ThresholdMix { threshold: 0 }
            .validate()
            .is_err());
    }
}

//! Rate-controlled per-node delay assignment (paper §4).
//!
//! "For an incoming traffic rate λ, we may use the Erlang Loss formula to
//! appropriately select μ so as to have a target packet drop rate α …
//! as we approach the sink and the traffic rate λ increases, we must
//! decrease the average delay time 1/μ in order to maintain E(ρ,k) at a
//! target packet drop rate α."
//!
//! [`rate_controlled_plan`] turns that rule into a concrete
//! [`DelayPlan`]: each node on any flow's route gets the exponential mean
//! that pins its Erlang loss (≈ preemption probability under RCAD) at α
//! given the traffic aggregated through it.

use tempriv_net::ids::NodeId;
use tempriv_net::routing::RoutingTree;
use tempriv_queueing::erlang::service_rate_for_loss;

use crate::delay::{DelayPlan, DelayStrategy};

/// Number of flows routed through every node (the sink included).
#[must_use]
pub fn flows_per_node(routing: &RoutingTree, sources: &[NodeId]) -> Vec<u32> {
    let mut counts = vec![0u32; routing.len()];
    for &src in sources {
        for node in routing.path(src) {
            counts[node.index()] += 1;
        }
    }
    counts
}

/// Builds the per-node rate-controlled delay plan.
///
/// Each node carrying `m` flows sees aggregate Poisson-superposed traffic
/// `m·per_flow_rate`; its exponential delay mean becomes
/// `1/service_rate_for_loss(λ_node, k, α)`. Nodes carrying no traffic
/// (and the sink) fall back to no delay.
///
/// # Panics
///
/// Panics if `per_flow_rate` is non-positive or not finite, `k == 0`, or
/// `alpha` is not in (0, 1).
#[must_use]
pub fn rate_controlled_plan(
    routing: &RoutingTree,
    sources: &[NodeId],
    per_flow_rate: f64,
    k: u32,
    alpha: f64,
) -> DelayPlan {
    assert!(
        per_flow_rate.is_finite() && per_flow_rate > 0.0,
        "per-flow rate must be positive, got {per_flow_rate}"
    );
    let counts = flows_per_node(routing, sources);
    let strategies: Vec<DelayStrategy> = counts
        .iter()
        .enumerate()
        .map(|(idx, &m)| {
            if m == 0 || NodeId(idx as u32) == routing.sink() {
                DelayStrategy::None
            } else {
                let lambda = f64::from(m) * per_flow_rate;
                let mu = service_rate_for_loss(lambda, k, alpha);
                DelayStrategy::exponential(1.0 / mu)
            }
        })
        .collect();
    DelayPlan::PerNode {
        strategies,
        fallback: DelayStrategy::None,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use tempriv_net::convergecast::Convergecast;
    use tempriv_net::ids::FlowId;
    use tempriv_queueing::erlang::erlang_b;

    #[test]
    fn counts_match_convergecast_structure() {
        let layout = Convergecast::paper_figure1();
        let counts = flows_per_node(layout.routing(), layout.sources());
        // Sink and trunk carry all four flows.
        assert_eq!(counts[0], 4);
        for i in 1..=8 {
            assert_eq!(counts[i], 4, "trunk node {i}");
        }
        // Sources carry exactly one.
        for &src in layout.sources() {
            assert_eq!(counts[src.index()], 1);
        }
    }

    #[test]
    fn plan_pins_loss_at_alpha_everywhere() {
        let layout = Convergecast::paper_figure1();
        let (k, alpha, rate) = (10u32, 0.05, 0.5);
        let plan = rate_controlled_plan(layout.routing(), layout.sources(), rate, k, alpha);
        let counts = flows_per_node(layout.routing(), layout.sources());
        for idx in 0..layout.len() {
            let strategy = plan.for_node(NodeId(idx as u32));
            if counts[idx] == 0 || idx == 0 {
                assert!(strategy.is_none());
            } else {
                let lambda = f64::from(counts[idx]) * rate;
                let rho = lambda * strategy.mean();
                assert!(
                    (erlang_b(rho, k) - alpha).abs() < 1e-8,
                    "node {idx}: loss {}",
                    erlang_b(rho, k)
                );
            }
        }
    }

    #[test]
    fn trunk_delays_are_shorter_than_private_delays() {
        let layout = Convergecast::paper_figure1();
        let plan = rate_controlled_plan(layout.routing(), layout.sources(), 0.5, 10, 0.05);
        let trunk_mean = plan.for_node(NodeId(1)).mean();
        let source_mean = plan.for_node(layout.source(FlowId(0))).mean();
        // 4x the traffic => 1/4 the delay budget.
        assert!((source_mean / trunk_mean - 4.0).abs() < 1e-6);
    }

    #[test]
    fn plan_total_latency_varies_by_flow_sharing() {
        let layout = Convergecast::paper_figure1();
        let plan = rate_controlled_plan(layout.routing(), layout.sources(), 0.5, 10, 0.05);
        // Expected artificial delay along S1's path (exclude the sink).
        let path = layout.routing().path(layout.source(FlowId(0)));
        let total = plan.path_mean_delay(&path[..path.len() - 1]);
        // 7 private hops at the single-flow mean + 8 trunk hops at 1/4 it.
        let single = plan.for_node(layout.source(FlowId(0))).mean();
        let expected = 7.0 * single + 8.0 * single / 4.0;
        assert!(
            (total - expected).abs() < 1e-6,
            "total {total} vs {expected}"
        );
    }
}

//! Delay strategies — the privacy mechanism.
//!
//! Each node on the source–sink path buffers every packet for a random
//! time before forwarding it (paper §2, §3.3). The delay distribution is
//! the designer's main knob: the paper argues for exponential delays
//! (maximal entropy per unit of mean latency) and the ablation benches
//! compare the alternatives provided here.

use serde::{Deserialize, Serialize};
use tempriv_net::ids::NodeId;
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimDuration;

/// A per-node packet delay distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DelayStrategy {
    /// Forward immediately — the paper's baseline case 1.
    None,
    /// Exponential delay with the given mean — the paper's choice
    /// (1/μ = 30 in the evaluation).
    Exponential {
        /// Mean delay `1/μ`.
        mean: f64,
    },
    /// Uniform delay on `[0, 2·mean]` (same mean, lower entropy).
    Uniform {
        /// Mean delay.
        mean: f64,
    },
    /// Constant delay (same mean, zero entropy — adds latency, hides
    /// nothing; kept for the ablation).
    Constant {
        /// The fixed delay.
        delay: f64,
    },
}

impl DelayStrategy {
    /// Exponential delay with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite.
    #[must_use]
    pub fn exponential(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "delay mean must be positive, got {mean}"
        );
        DelayStrategy::Exponential { mean }
    }

    /// Uniform delay on `[0, 2·mean]`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite.
    #[must_use]
    pub fn uniform(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "delay mean must be positive, got {mean}"
        );
        DelayStrategy::Uniform { mean }
    }

    /// Constant delay of `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    #[must_use]
    pub fn constant(delay: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be non-negative, got {delay}"
        );
        DelayStrategy::Constant { delay }
    }

    /// Mean of the delay distribution (what a deployment-aware adversary
    /// knows by Kerckhoff's principle).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            DelayStrategy::None => 0.0,
            DelayStrategy::Exponential { mean } | DelayStrategy::Uniform { mean } => mean,
            DelayStrategy::Constant { delay } => delay,
        }
    }

    /// Variance of the delay distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            DelayStrategy::None | DelayStrategy::Constant { .. } => 0.0,
            DelayStrategy::Exponential { mean } => mean * mean,
            DelayStrategy::Uniform { mean } => (2.0 * mean) * (2.0 * mean) / 12.0,
        }
    }

    /// `true` if this strategy never buffers.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, DelayStrategy::None)
    }

    /// Samples one buffering delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DelayStrategy::None => SimDuration::ZERO,
            DelayStrategy::Exponential { mean } => SimDuration::from_units(rng.sample_exp(mean)),
            DelayStrategy::Uniform { mean } => {
                SimDuration::from_units(rng.sample_uniform(0.0, 2.0 * mean))
            }
            DelayStrategy::Constant { delay } => SimDuration::from_units(delay),
        }
    }
}

/// Assignment of delay strategies to nodes (§3.3: the delay process can be
/// decomposed non-uniformly across the path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayPlan {
    /// Every node uses the same strategy — the paper's evaluation setup.
    Shared(DelayStrategy),
    /// Per-node strategies, indexed by node id (e.g. the rate-controlled
    /// assignment of §4). Nodes beyond the vector use the fallback.
    PerNode {
        /// Per-node strategies, indexed by [`NodeId`].
        strategies: Vec<DelayStrategy>,
        /// Strategy for nodes not covered by `strategies`.
        fallback: DelayStrategy,
    },
}

impl DelayPlan {
    /// A plan where every node delays exponentially with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite.
    #[must_use]
    pub fn shared_exponential(mean: f64) -> Self {
        DelayPlan::Shared(DelayStrategy::exponential(mean))
    }

    /// A plan with no artificial delay anywhere.
    #[must_use]
    pub const fn no_delay() -> Self {
        DelayPlan::Shared(DelayStrategy::None)
    }

    /// The strategy node `node` uses.
    #[must_use]
    pub fn for_node(&self, node: NodeId) -> DelayStrategy {
        match self {
            DelayPlan::Shared(s) => *s,
            DelayPlan::PerNode {
                strategies,
                fallback,
            } => strategies.get(node.index()).copied().unwrap_or(*fallback),
        }
    }

    /// Expected artificial delay along a path of delaying nodes.
    #[must_use]
    pub fn path_mean_delay<'a, I: IntoIterator<Item = &'a NodeId>>(&self, path: I) -> f64 {
        path.into_iter().map(|&n| self.for_node(n).mean()).sum()
    }

    /// `true` if no node ever buffers.
    #[must_use]
    pub fn is_no_delay(&self) -> bool {
        match self {
            DelayPlan::Shared(s) => s.is_none(),
            DelayPlan::PerNode {
                strategies,
                fallback,
            } => strategies.iter().all(DelayStrategy::is_none) && fallback.is_none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    fn rng() -> SimRng {
        RngFactory::new(1).stream(7)
    }

    #[test]
    fn exponential_sample_mean() {
        let s = DelayStrategy::exponential(30.0);
        let mut r = rng();
        let n = 50_000;
        let total: f64 = (0..n).map(|_| s.sample(&mut r).as_units()).sum();
        assert!((total / n as f64 - 30.0).abs() < 0.5);
        assert_eq!(s.mean(), 30.0);
        assert_eq!(s.variance(), 900.0);
    }

    #[test]
    fn uniform_sample_band_and_mean() {
        let s = DelayStrategy::uniform(30.0);
        let mut r = rng();
        let mut total = 0.0;
        for _ in 0..50_000 {
            let d = s.sample(&mut r).as_units();
            assert!((0.0..60.0).contains(&d));
            total += d;
        }
        assert!((total / 50_000.0 - 30.0).abs() < 0.3);
        assert!((s.variance() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn constant_and_none_are_degenerate() {
        let mut r = rng();
        assert_eq!(
            DelayStrategy::constant(5.0).sample(&mut r),
            SimDuration::from_units(5.0)
        );
        assert_eq!(DelayStrategy::None.sample(&mut r), SimDuration::ZERO);
        assert!(DelayStrategy::None.is_none());
        assert_eq!(DelayStrategy::None.mean(), 0.0);
        assert_eq!(DelayStrategy::constant(5.0).variance(), 0.0);
    }

    #[test]
    fn shared_plan_is_uniform_across_nodes() {
        let plan = DelayPlan::shared_exponential(30.0);
        assert_eq!(plan.for_node(NodeId(0)).mean(), 30.0);
        assert_eq!(plan.for_node(NodeId(999)).mean(), 30.0);
        assert!(!plan.is_no_delay());
        assert!(DelayPlan::no_delay().is_no_delay());
    }

    #[test]
    fn per_node_plan_with_fallback() {
        let plan = DelayPlan::PerNode {
            strategies: vec![
                DelayStrategy::None,
                DelayStrategy::exponential(10.0),
                DelayStrategy::exponential(20.0),
            ],
            fallback: DelayStrategy::exponential(5.0),
        };
        assert_eq!(plan.for_node(NodeId(1)).mean(), 10.0);
        assert_eq!(plan.for_node(NodeId(7)).mean(), 5.0);
        let path = [NodeId(1), NodeId(2), NodeId(7)];
        assert!((plan.path_mean_delay(path.iter()) - 35.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_mean_rejected() {
        let _ = DelayStrategy::exponential(-1.0);
    }
}

//! Adversary models (paper §2.1 and §5.4).
//!
//! The adversary sits at the sink, reads cleartext headers and arrival
//! times, and — being deployment-aware per Kerckhoff's principle — knows
//! the topology, the routing hop counts, the per-hop transmission delay τ,
//! the advertised delay distribution, and the buffer sizes. It never sees
//! payloads, so [`Observation`] deliberately carries only the
//! adversary-visible fields plus a scoring handle.
//!
//! * [`BaselineAdversary`] (§2.1, §5.1): estimates
//!   `x̂ = z − h·τ − h·E[Y]`, trusting the advertised delay distribution
//!   and ignoring preemption.
//! * [`AdaptiveAdversary`] (§5.4): measures per-flow arrival rates at the
//!   sink, evaluates the Erlang loss probability of the aggregate, and —
//!   when preemption must dominate (loss above a threshold, 0.1 in the
//!   paper) — switches the per-hop delay estimate to `k/λ̂_i`.
//! * [`RouteAwareAdversary`] (extension): applies the saturation analysis
//!   per node on the known routing tree — the strongest header-only
//!   attack shipped here.
//! * [`WindowedAdaptiveAdversary`] (extension): an *online* adaptive
//!   model estimating rates in a sliding window, able to track bursty
//!   on/off sources.
//! * [`OracleAdversary`]: a calibration upper bound that knows each flow's
//!   *realized* mean latency (the best constant-offset estimator; its MSE
//!   equals the latency variance).

use serde::{Deserialize, Serialize};
use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_queueing::erlang::erlang_b;
use tempriv_sim::time::{SimDuration, SimTime};

/// What the eavesdropper sees when one packet reaches the sink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Arrival instant `z` at the sink.
    pub arrival: SimTime,
    /// Cleartext routing origin — identifies the flow to a
    /// deployment-aware adversary.
    pub origin: NodeId,
    /// Cleartext hop count `h` accumulated on the path.
    pub hop_count: u32,
    /// The flow, as the adversary reconstructs it from `origin` and its
    /// deployment knowledge.
    pub flow: FlowId,
    /// Scoring handle joining the observation to the simulator's truth
    /// log. **Not adversary-visible**: estimators must not use it.
    pub packet: PacketId,
}

/// Everything the deployment-aware adversary knows a priori.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryKnowledge {
    /// Per-hop transmission delay τ.
    pub tau: f64,
    /// Advertised mean buffering delay per node, `E[Y] = 1/μ`
    /// (0 when the network adds no delay).
    pub delay_mean: f64,
    /// Buffer slots per node, if finite.
    pub buffer_slots: Option<usize>,
    /// Hop count of each flow, indexed by [`FlowId`].
    pub flow_hops: Vec<u32>,
    /// Flows whose routes converge at least one hop before the sink (the
    /// aggregate whose Erlang loss the adaptive adversary evaluates).
    pub converging_flows: Vec<FlowId>,
    /// The delaying nodes on each flow's route (source first, sink
    /// excluded), indexed by [`FlowId`]. Deployment awareness (§2) gives
    /// the adversary the full routing topology.
    pub flow_paths: Vec<Vec<NodeId>>,
    /// Expected *total* artificial delay along each flow's path, indexed
    /// by [`FlowId`]. By Kerckhoff's principle the adversary knows the
    /// advertised per-node delay distributions, so for per-node plans
    /// this is the exact path sum (for a shared plan it equals
    /// `hops · delay_mean`).
    pub path_delay_means: Vec<f64>,
}

impl AdversaryKnowledge {
    /// Hop count of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn hops(&self, flow: FlowId) -> u32 {
        self.flow_hops[flow.index()]
    }

    /// Number of flows.
    #[must_use]
    pub fn num_flows(&self) -> usize {
        self.flow_hops.len()
    }

    /// Expected artificial path delay for `flow`, falling back to
    /// `hops · delay_mean` if the per-flow table is missing an entry.
    #[must_use]
    pub fn path_delay_mean(&self, flow: FlowId) -> f64 {
        self.path_delay_means
            .get(flow.index())
            .copied()
            .unwrap_or_else(|| f64::from(self.hops(flow)) * self.delay_mean)
    }
}

/// An estimator of packet creation times from sink observations.
///
/// Implementations receive the full (time-ordered) observation sequence at
/// once, mirroring an offline traffic analyst; online adversaries can be
/// expressed by ignoring future entries.
pub trait Adversary {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Estimates the creation time (in time units) of every observation.
    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        knowledge: &AdversaryKnowledge,
    ) -> Vec<f64>;
}

/// The paper's baseline adversary: `x̂ = z − h·τ − E[Σ Y]`, where the
/// expected total buffering delay along the flow's path comes from the
/// advertised per-node distributions (for the paper's shared plan this is
/// exactly `h·(τ + 1/μ)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineAdversary;

impl Adversary for BaselineAdversary {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        knowledge: &AdversaryKnowledge,
    ) -> Vec<f64> {
        observations
            .iter()
            .map(|obs| {
                let h = knowledge.hops(obs.flow) as f64;
                obs.arrival.as_units() - h * knowledge.tau - knowledge.path_delay_mean(obs.flow)
            })
            .collect()
    }
}

/// The paper's adaptive adversary (§5.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveAdversary {
    /// Erlang-loss probability above which the adversary assumes
    /// preemption dominates (the paper uses 0.1).
    pub threshold: f64,
}

impl AdaptiveAdversary {
    /// Creates an adaptive adversary with the given switching threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1)`.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1), got {threshold}"
        );
        AdaptiveAdversary { threshold }
    }

    /// The paper's configuration: threshold 0.1.
    #[must_use]
    pub fn paper_default() -> Self {
        AdaptiveAdversary::new(0.1)
    }

    /// Per-flow arrival rate estimates from the observation sequence:
    /// the number of arrivals between the 10th and 90th percentile
    /// arrival instants, divided by that span. Restricting to the central
    /// window discards the warm-up and drain transients of a finite
    /// observation (which would otherwise bias the rate low — the
    /// steady-state sink arrival rate equals the creation rate λ).
    /// `None` for flows whose central window is degenerate.
    #[must_use]
    pub fn estimate_flow_rates(observations: &[Observation], num_flows: usize) -> Vec<Option<f64>> {
        let mut arrivals: Vec<Vec<SimTime>> = vec![Vec::new(); num_flows];
        for obs in observations {
            if let Some(per_flow) = arrivals.get_mut(obs.flow.index()) {
                per_flow.push(obs.arrival);
            }
        }
        arrivals
            .into_iter()
            .map(|mut times| {
                if times.len() < 2 {
                    return None;
                }
                times.sort_unstable();
                let m = times.len();
                let lo = (m - 1) / 10;
                let hi = (m - 1) * 9 / 10;
                if hi <= lo {
                    return None;
                }
                let span = (times[hi] - times[lo]).as_units();
                (span > 0.0).then(|| (hi - lo) as f64 / span)
            })
            .collect()
    }
}

impl Adversary for AdaptiveAdversary {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        knowledge: &AdversaryKnowledge,
    ) -> Vec<f64> {
        // With no artificial delay advertised, or unlimited buffers, the
        // adaptive refinement has nothing to adapt to.
        let (Some(k), true) = (knowledge.buffer_slots, knowledge.delay_mean > 0.0) else {
            return BaselineAdversary.estimate_creation_times(observations, knowledge);
        };
        let rates = Self::estimate_flow_rates(observations, knowledge.num_flows());
        // Aggregate rate of the converging flows (paper: λ_tot from n
        // sources converging at least one hop prior to the sink).
        let lambda_tot: f64 = knowledge
            .converging_flows
            .iter()
            .filter_map(|f| rates.get(f.index()).copied().flatten())
            .sum();
        let mu = 1.0 / knowledge.delay_mean;
        let preemption_dominates =
            lambda_tot > 0.0 && erlang_b(lambda_tot / mu, k as u32) > self.threshold;
        observations
            .iter()
            .map(|obs| {
                let h = knowledge.hops(obs.flow) as f64;
                let per_hop_delay = if preemption_dominates {
                    match rates.get(obs.flow.index()).copied().flatten() {
                        // Saturated buffers: each hop holds ~k packets of
                        // this... of the flow mix; the paper's estimate for
                        // flow i is k/λ_i.
                        Some(lambda_i) if lambda_i > 0.0 => {
                            // Preemption can only shorten delays, so the
                            // estimate is capped by the advertised mean.
                            (k as f64 / lambda_i).min(knowledge.delay_mean)
                        }
                        _ => knowledge.delay_mean,
                    }
                } else {
                    knowledge.delay_mean
                };
                obs.arrival.as_units() - h * (knowledge.tau + per_hop_delay)
            })
            .collect()
    }
}

/// Online variant of the adaptive adversary: instead of one whole-trace
/// rate per flow, it estimates each flow's rate from the arrivals inside
/// a sliding time window ending at the current observation — so it can
/// track *bursty* traffic ([`tempriv_net::traffic::TrafficModel::OnOff`]
/// sources), switching regimes per packet as bursts start and end. The
/// per-observation estimate is otherwise the §5.4 rule with the same
/// Erlang-loss switch and advertised-mean cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedAdaptiveAdversary {
    /// Sliding window length (time units).
    pub window: f64,
    /// Erlang-loss switching threshold (0.1 in the paper).
    pub threshold: f64,
}

impl WindowedAdaptiveAdversary {
    /// Creates a windowed adversary.
    ///
    /// # Panics
    ///
    /// Panics if `window` is non-positive/not finite or `threshold` is
    /// not in `(0, 1)`.
    #[must_use]
    pub fn new(window: f64, threshold: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive, got {window}"
        );
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1), got {threshold}"
        );
        WindowedAdaptiveAdversary { window, threshold }
    }

    /// A window of 100 time units with the paper's 0.1 threshold —
    /// several burst lengths at the evaluation's traffic scales.
    #[must_use]
    pub fn paper_default() -> Self {
        WindowedAdaptiveAdversary::new(100.0, 0.1)
    }
}

impl Adversary for WindowedAdaptiveAdversary {
    fn name(&self) -> &'static str {
        "windowed-adaptive"
    }

    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        knowledge: &AdversaryKnowledge,
    ) -> Vec<f64> {
        let (Some(k), true) = (knowledge.buffer_slots, knowledge.delay_mean > 0.0) else {
            return BaselineAdversary.estimate_creation_times(observations, knowledge);
        };
        let num_flows = knowledge.num_flows();
        // Per-flow arrival times in arrival order, plus each observation's
        // index within its flow, for O(1) sliding-window lookups.
        let mut per_flow: Vec<Vec<SimTime>> = vec![Vec::new(); num_flows];
        let mut index_in_flow = Vec::with_capacity(observations.len());
        for obs in observations {
            let i = obs.flow.index();
            index_in_flow.push(per_flow.get(i).map_or(0, Vec::len));
            if let Some(list) = per_flow.get_mut(i) {
                list.push(obs.arrival);
            }
        }
        let mu = 1.0 / knowledge.delay_mean;
        let window = SimDuration::from_units(self.window);
        observations
            .iter()
            .zip(&index_in_flow)
            .map(|(obs, &idx)| {
                let h = knowledge.hops(obs.flow) as f64;
                let per_hop = match per_flow.get(obs.flow.index()) {
                    Some(arrivals) if idx > 0 => {
                        let cutoff =
                            SimTime::from_ticks(obs.arrival.ticks().saturating_sub(window.ticks()));
                        // Count this flow's arrivals in (cutoff, arrival].
                        let start = arrivals[..=idx].partition_point(|&t| t <= cutoff);
                        let count = idx + 1 - start;
                        let span = (obs.arrival - arrivals[start]).as_units();
                        if count >= 2 && span > 0.0 {
                            let lambda_i = (count - 1) as f64 / span;
                            // All converging flows burst together in the
                            // evaluation; scale the aggregate accordingly.
                            let lambda_tot =
                                lambda_i * knowledge.converging_flows.len().max(1) as f64;
                            if erlang_b(lambda_tot / mu, k as u32) > self.threshold {
                                (k as f64 / lambda_i).min(knowledge.delay_mean)
                            } else {
                                knowledge.delay_mean
                            }
                        } else {
                            knowledge.delay_mean
                        }
                    }
                    _ => knowledge.delay_mean,
                };
                obs.arrival.as_units() - h * (knowledge.tau + per_hop)
            })
            .collect()
    }
}

/// Calibration adversary: knows each flow's realized mean end-to-end
/// latency (e.g. from a long prior observation of the very same network)
/// and subtracts it. No real adversary can do better with a constant
/// per-flow offset, so this bounds the achievable MSE from below by the
/// latency variance.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleAdversary {
    mean_latency_per_flow: Vec<f64>,
}

impl OracleAdversary {
    /// Creates the oracle from realized per-flow mean latencies.
    #[must_use]
    pub fn new(mean_latency_per_flow: Vec<f64>) -> Self {
        OracleAdversary {
            mean_latency_per_flow,
        }
    }
}

/// Deployment-aware extension of the adaptive adversary: instead of one
/// per-flow saturation estimate, it applies the paper's single-node
/// analysis (§5.4: a saturated k-slot buffer cycles in `k/λ` time) to
/// *every node on the route individually*, using its knowledge of the
/// routing tree to aggregate the estimated flow rates each node carries:
///
/// ```text
/// x̂ = z − h·τ − Σ_{v ∈ path} min(1/μ, k/λ̂_v),   λ̂_v = Σ_{flows i through v} λ̂_i
/// ```
///
/// This is strictly stronger than [`AdaptiveAdversary`] on converging
/// topologies (it knows trunk nodes cycle faster) and is the strongest
/// header-only attack shipped here; the [`OracleAdversary`] bounds what
/// any constant-offset estimator could add beyond it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteAwareAdversary {
    /// Erlang-loss threshold above which a node is treated as saturated
    /// (as in the paper's adaptive model; 0.1 in the evaluation).
    pub threshold: f64,
}

impl RouteAwareAdversary {
    /// Creates a route-aware adversary with the given saturation
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1)`.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1), got {threshold}"
        );
        RouteAwareAdversary { threshold }
    }

    /// The evaluation configuration: threshold 0.1.
    #[must_use]
    pub fn paper_default() -> Self {
        RouteAwareAdversary::new(0.1)
    }
}

impl Adversary for RouteAwareAdversary {
    fn name(&self) -> &'static str {
        "route-aware"
    }

    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        knowledge: &AdversaryKnowledge,
    ) -> Vec<f64> {
        let (Some(k), true) = (knowledge.buffer_slots, knowledge.delay_mean > 0.0) else {
            return BaselineAdversary.estimate_creation_times(observations, knowledge);
        };
        let rates = AdaptiveAdversary::estimate_flow_rates(observations, knowledge.num_flows());
        // Aggregate estimated rate through every node named in any path.
        let mut node_rates: std::collections::HashMap<NodeId, f64> =
            std::collections::HashMap::new();
        for (i, path) in knowledge.flow_paths.iter().enumerate() {
            let Some(rate) = rates.get(i).copied().flatten() else {
                continue;
            };
            for &node in path {
                *node_rates.entry(node).or_insert(0.0) += rate;
            }
        }
        let mu = 1.0 / knowledge.delay_mean;
        // Per-node expected delay: advertised mean unless the node's
        // Erlang loss says preemption dominates, then k/lambda_v.
        let node_delay = |node: NodeId| -> f64 {
            match node_rates.get(&node) {
                Some(&lambda_v) if lambda_v > 0.0 => {
                    if erlang_b(lambda_v / mu, k as u32) > self.threshold {
                        (k as f64 / lambda_v).min(knowledge.delay_mean)
                    } else {
                        knowledge.delay_mean
                    }
                }
                _ => knowledge.delay_mean,
            }
        };
        // Precompute each flow's expected path delay once.
        let path_delays: Vec<f64> = knowledge
            .flow_paths
            .iter()
            .map(|path| path.iter().map(|&v| node_delay(v)).sum())
            .collect();
        observations
            .iter()
            .map(|obs| {
                let h = knowledge.hops(obs.flow) as f64;
                let buffering = path_delays
                    .get(obs.flow.index())
                    .copied()
                    .unwrap_or(h * knowledge.delay_mean);
                obs.arrival.as_units() - h * knowledge.tau - buffering
            })
            .collect()
    }
}

impl Adversary for OracleAdversary {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn estimate_creation_times(
        &self,
        observations: &[Observation],
        _knowledge: &AdversaryKnowledge,
    ) -> Vec<f64> {
        observations
            .iter()
            .map(|obs| {
                let offset = self
                    .mean_latency_per_flow
                    .get(obs.flow.index())
                    .copied()
                    .unwrap_or(0.0);
                obs.arrival.as_units() - offset
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(arrival: f64, flow: u32, hops: u32, packet: u64) -> Observation {
        Observation {
            arrival: SimTime::from_units(arrival),
            origin: NodeId(flow + 100),
            hop_count: hops,
            flow: FlowId(flow),
            packet: PacketId(packet),
        }
    }

    fn knowledge(delay_mean: f64, slots: Option<usize>) -> AdversaryKnowledge {
        // Two flows sharing a trunk of 8 delaying nodes (ids 1..=8).
        let trunk: Vec<NodeId> = (1..=8).rev().map(NodeId).collect();
        let path = |private: u32, base: u32| -> Vec<NodeId> {
            let mut p: Vec<NodeId> = (0..private).map(|i| NodeId(base + i)).collect();
            p.extend(trunk.iter().copied());
            p
        };
        AdversaryKnowledge {
            tau: 1.0,
            delay_mean,
            buffer_slots: slots,
            flow_hops: vec![15, 22],
            converging_flows: vec![FlowId(0), FlowId(1)],
            flow_paths: vec![path(7, 100), path(14, 200)],
            path_delay_means: vec![15.0 * delay_mean, 22.0 * delay_mean],
        }
    }

    #[test]
    fn baseline_subtracts_expected_path_delay() {
        let k = knowledge(30.0, Some(10));
        let observations = vec![obs(500.0, 0, 15, 1)];
        let est = BaselineAdversary.estimate_creation_times(&observations, &k);
        // 500 - 15*(1 + 30) = 35.
        assert!((est[0] - 35.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_no_delay_network() {
        let k = knowledge(0.0, None);
        let observations = vec![obs(20.0, 0, 15, 1)];
        let est = BaselineAdversary.estimate_creation_times(&observations, &k);
        assert!((est[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_estimation_counts_gaps() {
        // 11 arrivals over 20 units => rate 0.5.
        let observations: Vec<Observation> =
            (0..11).map(|i| obs(i as f64 * 2.0, 0, 15, i)).collect();
        let rates = AdaptiveAdversary::estimate_flow_rates(&observations, 2);
        assert!((rates[0].unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(rates[1], None);
    }

    #[test]
    fn adaptive_switches_at_high_rate() {
        // Both flows arriving every 2 units => lambda_tot = 1.0,
        // rho = 30 >> k = 10 => loss far above 0.1 => rate-based estimate.
        let mut observations = Vec::new();
        for i in 0..200 {
            observations.push(obs(i as f64 * 2.0, 0, 15, i * 2));
            observations.push(obs(i as f64 * 2.0 + 1.0, 1, 22, i * 2 + 1));
        }
        observations.sort_by_key(|o| o.arrival);
        let k = knowledge(30.0, Some(10));
        let adaptive = AdaptiveAdversary::paper_default();
        let est = adaptive.estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        // Rate-based per-hop delay: k/lambda_0 = 10/0.5 = 20 < 30, so the
        // adaptive estimate is strictly later than the baseline's.
        assert!(est[0] > base[0]);
        let expected = observations[0].arrival.as_units() - 15.0 * (1.0 + 20.0);
        assert!(
            (est[0] - expected).abs() < 0.5,
            "est {} vs {expected}",
            est[0]
        );
    }

    #[test]
    fn adaptive_keeps_baseline_at_low_rate() {
        // Arrivals every 40 units per flow => lambda_tot = 0.05,
        // rho = 1.5, loss(1.5, 10) ~ 1e-5 << 0.1.
        let mut observations = Vec::new();
        for i in 0..50 {
            observations.push(obs(i as f64 * 40.0, 0, 15, i * 2));
            observations.push(obs(i as f64 * 40.0 + 7.0, 1, 22, i * 2 + 1));
        }
        let k = knowledge(30.0, Some(10));
        let adaptive = AdaptiveAdversary::paper_default();
        let est = adaptive.estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        for (a, b) in est.iter().zip(&base) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn adaptive_degrades_to_baseline_without_buffers() {
        let observations = vec![obs(500.0, 0, 15, 1)];
        let k = knowledge(30.0, None);
        let est = AdaptiveAdversary::paper_default().estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        assert_eq!(est, base);
    }

    #[test]
    fn adaptive_caps_estimate_at_advertised_mean() {
        // Very slow observed rate with preemption triggered via the other
        // flow would give k/lambda > 1/mu; the cap keeps it at 1/mu.
        let mut observations = Vec::new();
        // Flow 0: rapid (drives aggregate over threshold).
        for i in 0..400 {
            observations.push(obs(i as f64 * 0.5, 0, 15, i));
        }
        // Flow 1: sparse.
        observations.push(obs(10.0, 1, 22, 1000));
        observations.push(obs(210.0, 1, 22, 1001));
        observations.sort_by_key(|o| o.arrival);
        let k = knowledge(30.0, Some(10));
        let est = AdaptiveAdversary::paper_default().estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        // Flow 1's k/lambda = 10/0.005 = 2000 >> 30: capped to baseline.
        let idx = observations
            .iter()
            .position(|o| o.flow == FlowId(1))
            .unwrap();
        assert!((est[idx] - base[idx]).abs() < 1e-9);
    }

    #[test]
    fn oracle_subtracts_realized_latency() {
        let oracle = OracleAdversary::new(vec![180.0]);
        let k = knowledge(30.0, Some(10));
        let est = oracle.estimate_creation_times(&[obs(500.0, 0, 15, 1)], &k);
        assert!((est[0] - 320.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = AdaptiveAdversary::new(1.5);
    }

    #[test]
    fn windowed_adversary_tracks_rate_changes() {
        // Burst of arrivals every 2 units, then silence, then another
        // burst: inside bursts the windowed adversary switches to the
        // rate-based estimate; the lone packet long after reverts.
        let mut observations = Vec::new();
        let mut id = 0;
        for burst_start in [0.0, 5_000.0] {
            for i in 0..60 {
                observations.push(obs(burst_start + i as f64 * 2.0, 0, 15, id));
                id += 1;
            }
        }
        observations.push(obs(20_000.0, 0, 15, id));
        let k = knowledge(30.0, Some(10));
        let windowed = WindowedAdaptiveAdversary::new(100.0, 0.1);
        let est = windowed.estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        // Deep inside the first burst: rate-based (k/0.5 = 20 < 30).
        let inside = 30;
        let expected = observations[inside].arrival.as_units() - 15.0 * (1.0 + 20.0);
        assert!(
            (est[inside] - expected).abs() < 5.0,
            "est {} vs {expected}",
            est[inside]
        );
        // The straggler after 15k units of silence: baseline.
        let last = observations.len() - 1;
        assert!((est[last] - base[last]).abs() < 1e-9);
    }

    #[test]
    fn windowed_adversary_baseline_without_buffers() {
        let observations = vec![obs(500.0, 0, 15, 1)];
        let k = knowledge(30.0, None);
        let est =
            WindowedAdaptiveAdversary::paper_default().estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        assert_eq!(est, base);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn windowed_rejects_bad_window() {
        let _ = WindowedAdaptiveAdversary::new(0.0, 0.1);
    }

    #[test]
    fn route_aware_uses_per_node_saturation() {
        // Both flows arrive every 2 units: private nodes carry 0.5,
        // trunk nodes carry 1.0. With 1/mu = 30 and k = 10, every node
        // saturates: private delay -> 20, trunk delay -> 10.
        let mut observations = Vec::new();
        for i in 0..400 {
            observations.push(obs(i as f64 * 2.0, 0, 15, i * 2));
            observations.push(obs(i as f64 * 2.0 + 1.0, 1, 22, i * 2 + 1));
        }
        observations.sort_by_key(|o| o.arrival);
        let k = knowledge(30.0, Some(10));
        let est = RouteAwareAdversary::paper_default().estimate_creation_times(&observations, &k);
        // Flow 0: 15 tau + 7 private * 20 + 8 trunk * 10 = 235 subtracted.
        let expected = observations[0].arrival.as_units() - 15.0 - 140.0 - 80.0;
        assert!(
            (est[0] - expected).abs() < 2.0,
            "est {} vs {expected}",
            est[0]
        );
    }

    #[test]
    fn route_aware_matches_baseline_at_low_rate() {
        let mut observations = Vec::new();
        for i in 0..60 {
            observations.push(obs(i as f64 * 80.0, 0, 15, i * 2));
            observations.push(obs(i as f64 * 80.0 + 11.0, 1, 22, i * 2 + 1));
        }
        let k = knowledge(30.0, Some(10));
        let est = RouteAwareAdversary::paper_default().estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        for (a, b) in est.iter().zip(&base) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn route_aware_degrades_to_baseline_without_buffers() {
        let observations = vec![obs(500.0, 0, 15, 1)];
        let k = knowledge(30.0, None);
        let est = RouteAwareAdversary::paper_default().estimate_creation_times(&observations, &k);
        let base = BaselineAdversary.estimate_creation_times(&observations, &k);
        assert_eq!(est, base);
    }
}

//! Multi-seed replication and confidence intervals.
//!
//! The paper reports single simulation runs; a production study replicates
//! each configuration across independent seeds and reports means with
//! confidence intervals. [`replicate`] runs any per-seed measurement on the
//! bounded worker pool; [`ReplicatedMetric`] summarizes the results.

use serde::{Deserialize, Serialize};
use tempriv_runtime::WorkerPool;
use tempriv_sim::rng::splitmix64;
use tempriv_sim::stats::mean_ci95;

/// Derives the seed for replication `i` of a study keyed by `base_seed`.
///
/// This is the `i`-th output of a splitmix64 stream seeded at
/// `base_seed` — i.e. `splitmix64(base_seed + (i + 1) · golden)` where
/// `golden` is the splitmix64 increment. Earlier versions used
/// `base_seed + i`, which made the seed sets of adjacent studies overlap
/// almost entirely (base 100 and base 101 share all but one seed) and fed
/// correlated low-entropy seeds straight into the generators. The hash
/// gives every `(base_seed, i)` pair a well-mixed, effectively disjoint
/// seed while staying fully reproducible.
#[must_use]
pub fn replication_seed(base_seed: u64, i: u32) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    splitmix64(base_seed.wrapping_add(u64::from(i).wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// Runs `measure(seed)` for `replications` derived seeds on the bounded
/// worker pool, preserving replication order. Seeds come from
/// [`replication_seed`], so reruns are reproducible and independent of
/// the worker count.
///
/// # Panics
///
/// Panics if `replications == 0` or a worker panics.
#[must_use]
pub fn replicate<T, F>(base_seed: u64, replications: u32, measure: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    replicate_on(&WorkerPool::new(), base_seed, replications, measure)
}

/// [`replicate`] on an explicit worker pool (inject a single-worker pool
/// for serial debugging or a sized one for batch studies).
///
/// # Panics
///
/// Panics if `replications == 0` or a worker panics.
#[must_use]
pub fn replicate_on<T, F>(
    pool: &WorkerPool,
    base_seed: u64,
    replications: u32,
    measure: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(replications > 0, "need at least one replication");
    pool.map_indexed(replications as usize, |i| {
        measure(replication_seed(base_seed, i as u32))
    })
}

/// A replicated scalar measurement: mean, 95% half-width, and extremes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedMetric {
    /// Sample mean across seeds.
    pub mean: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of replications.
    pub n: u32,
}

impl ReplicatedMetric {
    /// Summarizes per-seed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let (mean, ci95) = mean_ci95(values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ReplicatedMetric {
            mean,
            ci95,
            min,
            max,
            n: values.len() as u32,
        }
    }

    /// `true` if `value` lies within the 95% interval around the mean.
    #[must_use]
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::BaselineAdversary;
    use crate::config::ExperimentConfig;
    use crate::metrics::evaluate_adversary;
    use tempriv_net::ids::FlowId;

    #[test]
    fn replicate_is_ordered_and_reproducible() {
        let a = replicate(100, 4, |seed| seed ^ 1);
        let expected: Vec<u64> = (0..4).map(|i| replication_seed(100, i) ^ 1).collect();
        assert_eq!(a, expected);
        let b = replicate(100, 4, |seed| seed ^ 1);
        assert_eq!(a, b);
        // And the result is independent of the worker count.
        let serial = replicate_on(&WorkerPool::with_workers(1), 100, 4, |seed| seed ^ 1);
        assert_eq!(a, serial);
    }

    #[test]
    fn replication_seeds_are_well_mixed() {
        // Adjacent bases must not share seeds (the old `base + i` scheme
        // overlapped almost entirely), and seeds within a study differ.
        let study_a: Vec<u64> = (0..8).map(|i| replication_seed(100, i)).collect();
        let study_b: Vec<u64> = (0..8).map(|i| replication_seed(101, i)).collect();
        for (i, a) in study_a.iter().enumerate() {
            assert!(!study_b.contains(a), "seed {i} shared across bases");
            assert!(!study_a[..i].contains(a), "seed {i} repeated in study");
        }
    }

    #[test]
    fn replicated_metric_summary() {
        let m = ReplicatedMetric::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert_eq!(m.n, 3);
        assert!(m.covers(2.0));
        assert!(!m.covers(100.0));
    }

    #[test]
    fn replicated_mse_is_stable_across_seeds() {
        // Five seeds of the paper setup at 1/lambda = 2: the MSE spread
        // should be modest (the mechanism, not the seed, drives it).
        let values = replicate(5000, 5, |seed| {
            let mut cfg = ExperimentConfig::paper_default();
            cfg.packets_per_source = 400;
            cfg.seed = seed;
            let sim = cfg.build().unwrap();
            let outcome = sim.run();
            evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge())
                .mse(FlowId(0))
        });
        let m = ReplicatedMetric::from_values(&values);
        assert!(m.mean > 20_000.0, "mean {}", m.mean);
        assert!(m.ci95 < 0.35 * m.mean, "ci {} vs mean {}", m.ci95, m.mean);
        assert!(m.min > 0.5 * m.mean && m.max < 1.6 * m.mean);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = replicate(0, 0, |s| s);
    }
}

//! Multi-seed replication and confidence intervals.
//!
//! The paper reports single simulation runs; a production study replicates
//! each configuration across independent seeds and reports means with
//! confidence intervals. [`replicate`] runs any per-seed measurement on
//! parallel threads; [`ReplicatedMetric`] summarizes the results.

use serde::{Deserialize, Serialize};
use tempriv_sim::stats::mean_ci95;

/// Runs `measure(seed)` for `replications` derived seeds on parallel
/// threads, preserving seed order. Seeds are `base_seed + i` so reruns
/// are reproducible.
///
/// # Panics
///
/// Panics if `replications == 0` or a worker panics.
#[must_use]
pub fn replicate<T, F>(base_seed: u64, replications: u32, measure: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(replications > 0, "need at least one replication");
    let measure = &measure;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..replications)
            .map(|i| scope.spawn(move || measure(base_seed.wrapping_add(u64::from(i)))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    })
}

/// A replicated scalar measurement: mean, 95% half-width, and extremes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedMetric {
    /// Sample mean across seeds.
    pub mean: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of replications.
    pub n: u32,
}

impl ReplicatedMetric {
    /// Summarizes per-seed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let (mean, ci95) = mean_ci95(values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ReplicatedMetric {
            mean,
            ci95,
            min,
            max,
            n: values.len() as u32,
        }
    }

    /// `true` if `value` lies within the 95% interval around the mean.
    #[must_use]
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::BaselineAdversary;
    use crate::config::ExperimentConfig;
    use crate::metrics::evaluate_adversary;
    use tempriv_net::ids::FlowId;

    #[test]
    fn replicate_is_ordered_and_reproducible() {
        let a = replicate(100, 4, |seed| seed * 2);
        assert_eq!(a, vec![200, 202, 204, 206]);
        let b = replicate(100, 4, |seed| seed * 2);
        assert_eq!(a, b);
    }

    #[test]
    fn replicated_metric_summary() {
        let m = ReplicatedMetric::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert_eq!(m.n, 3);
        assert!(m.covers(2.0));
        assert!(!m.covers(100.0));
    }

    #[test]
    fn replicated_mse_is_stable_across_seeds() {
        // Five seeds of the paper setup at 1/lambda = 2: the MSE spread
        // should be modest (the mechanism, not the seed, drives it).
        let values = replicate(5000, 5, |seed| {
            let mut cfg = ExperimentConfig::paper_default();
            cfg.packets_per_source = 400;
            cfg.seed = seed;
            let sim = cfg.build().unwrap();
            let outcome = sim.run();
            evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge())
                .mse(FlowId(0))
        });
        let m = ReplicatedMetric::from_values(&values);
        assert!(m.mean > 20_000.0, "mean {}", m.mean);
        assert!(m.ci95 < 0.35 * m.mean, "ci {} vs mean {}", m.ci95, m.mean);
        assert!(m.min > 0.5 * m.mean && m.max < 1.6 * m.mean);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = replicate(0, 0, |s| s);
    }
}

//! Serializable experiment configurations.
//!
//! [`ExperimentConfig`] is the on-disk description of one simulation run:
//! layout, workload, privacy mechanism, and seed. The benchmark harness
//! and the CLI-style binaries build [`NetworkSimulation`]s from these, so
//! every number in EXPERIMENTS.md is regenerable from a small JSON value.

use serde::{Deserialize, Serialize};
use tempriv_net::convergecast::Convergecast;
use tempriv_net::ids::NodeId;
use tempriv_net::link::LinkModel;
use tempriv_net::routing::RoutingTree;
use tempriv_net::topology::Topology;
use tempriv_net::traffic::TrafficModel;
use tempriv_sim::time::SimDuration;

use crate::buffer::BufferPolicy;
use crate::delay::DelayPlan;
use crate::sim_driver::{BuildError, NetworkSimulation};

/// Which deployment to simulate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayoutSpec {
    /// The paper's Figure 1 evaluation layout (flows of 15/22/9/11 hops,
    /// 8-hop shared trunk).
    PaperFigure1,
    /// A custom convergecast layout.
    Convergecast {
        /// Hops shared by every flow directly before the sink.
        trunk_hops: u32,
        /// Total hop count per flow.
        flow_hops: Vec<u32>,
    },
    /// A single line: one source, `hops` hops from the sink.
    Line {
        /// Source-to-sink hop count.
        hops: u32,
    },
    /// A `width × height` grid with BFS routing to `sink` and the given
    /// source nodes.
    Grid {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// The sink node id (`y·width + x`).
        sink: u32,
        /// Source node ids.
        sources: Vec<u32>,
    },
}

impl LayoutSpec {
    /// Materializes the routing tree and source list.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutBuildError`] if the spec is internally inconsistent
    /// (bad hop counts, unknown grid nodes, ...).
    pub fn build(&self) -> Result<(RoutingTree, Vec<NodeId>), LayoutBuildError> {
        match self {
            LayoutSpec::PaperFigure1 => {
                let layout = Convergecast::paper_figure1();
                Ok((layout.routing().clone(), layout.sources().to_vec()))
            }
            LayoutSpec::Convergecast {
                trunk_hops,
                flow_hops,
            } => {
                let layout = Convergecast::builder()
                    .trunk_hops(*trunk_hops)
                    .flows(flow_hops.iter().copied())
                    .build()
                    .map_err(|e| LayoutBuildError(e.to_string()))?;
                Ok((layout.routing().clone(), layout.sources().to_vec()))
            }
            LayoutSpec::Line { hops } => {
                if *hops == 0 {
                    return Err(LayoutBuildError(
                        "a line layout needs at least one hop".into(),
                    ));
                }
                let topo = Topology::line(*hops as usize + 1);
                let routing = RoutingTree::shortest_path(&topo, NodeId(0))
                    .map_err(|e| LayoutBuildError(e.to_string()))?;
                Ok((routing, vec![NodeId(*hops)]))
            }
            LayoutSpec::Grid {
                width,
                height,
                sink,
                sources,
            } => {
                let topo = Topology::grid(*width as usize, *height as usize);
                let routing = RoutingTree::shortest_path(&topo, NodeId(*sink))
                    .map_err(|e| LayoutBuildError(e.to_string()))?;
                if sources.is_empty() {
                    return Err(LayoutBuildError("grid layout needs sources".into()));
                }
                Ok((routing, sources.iter().map(|&s| NodeId(s)).collect()))
            }
        }
    }
}

/// Errors from [`LayoutSpec::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutBuildError(String);

impl core::fmt::Display for LayoutBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid layout: {}", self.0)
    }
}

impl std::error::Error for LayoutBuildError {}

/// One fully described experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The deployment.
    pub layout: LayoutSpec,
    /// Per-source traffic.
    pub traffic: TrafficModel,
    /// Packets each source creates.
    pub packets_per_source: u32,
    /// The delay plan.
    pub delay: DelayPlan,
    /// The buffer policy.
    pub buffer: BufferPolicy,
    /// Per-hop transmission delay τ.
    pub link_delay: f64,
    /// Per-transmission loss probability.
    pub link_loss: f64,
    /// Uniform MAC jitter width added per hop (0 = the paper's constant-τ
    /// abstraction).
    #[serde(default)]
    pub link_jitter: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's §5.2 defaults: Figure 1 layout, periodic traffic at
    /// inter-arrival 2, 1000 packets per source, exponential delay mean
    /// 30, RCAD with 10 slots, τ = 1, lossless links.
    #[must_use]
    pub fn paper_default() -> Self {
        ExperimentConfig {
            layout: LayoutSpec::PaperFigure1,
            traffic: TrafficModel::periodic(2.0),
            packets_per_source: 1000,
            delay: DelayPlan::shared_exponential(30.0),
            buffer: BufferPolicy::paper_rcad(),
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed: 0,
        }
    }

    /// Builds the runnable simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the layout or simulation parameters are
    /// invalid.
    pub fn build(&self) -> Result<NetworkSimulation, ConfigError> {
        let (routing, sources) = self.layout.build()?;
        let mut link = LinkModel::constant(SimDuration::from_units(self.link_delay));
        if self.link_loss > 0.0 {
            link = link.with_loss(self.link_loss);
        }
        if self.link_jitter > 0.0 {
            link = link.with_jitter(self.link_jitter);
        }
        let sim = NetworkSimulation::builder(routing, sources)
            .traffic(self.traffic)
            .packets_per_source(self.packets_per_source)
            .delay_plan(self.delay.clone())
            .buffer_policy(self.buffer)
            .link(link)
            .seed(self.seed)
            .build()?;
        Ok(sim)
    }
}

/// Errors from [`ExperimentConfig::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The layout spec failed to materialize.
    Layout(LayoutBuildError),
    /// The simulation parameters failed validation.
    Simulation(BuildError),
}

impl From<LayoutBuildError> for ConfigError {
    fn from(e: LayoutBuildError) -> Self {
        ConfigError::Layout(e)
    }
}

impl From<BuildError> for ConfigError {
    fn from(e: BuildError) -> Self {
        ConfigError::Simulation(e)
    }
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::Layout(e) => write!(f, "{e}"),
            ConfigError::Simulation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_net::ids::FlowId;

    #[test]
    fn paper_default_builds_and_matches_paper_numbers() {
        let cfg = ExperimentConfig::paper_default();
        let sim = cfg.build().unwrap();
        let k = sim.adversary_knowledge();
        assert_eq!(k.flow_hops, vec![15, 22, 9, 11]);
        assert_eq!(k.buffer_slots, Some(10));
        assert_eq!(k.delay_mean, 30.0);
    }

    #[test]
    fn config_json_round_trip() {
        let cfg = ExperimentConfig::paper_default();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn line_layout_builds() {
        let (routing, sources) = LayoutSpec::Line { hops: 15 }.build().unwrap();
        assert_eq!(routing.hops(sources[0]), Some(15));
    }

    #[test]
    fn grid_layout_builds() {
        let (routing, sources) = LayoutSpec::Grid {
            width: 5,
            height: 5,
            sink: 0,
            sources: vec![24, 20],
        }
        .build()
        .unwrap();
        assert_eq!(routing.hops(sources[0]), Some(8));
        assert_eq!(routing.hops(sources[1]), Some(4));
    }

    #[test]
    fn custom_convergecast_builds() {
        let (routing, sources) = LayoutSpec::Convergecast {
            trunk_hops: 3,
            flow_hops: vec![5, 7],
        }
        .build()
        .unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(routing.hops(sources[1]), Some(7));
    }

    #[test]
    fn invalid_specs_error() {
        assert!(LayoutSpec::Line { hops: 0 }.build().is_err());
        assert!(LayoutSpec::Convergecast {
            trunk_hops: 9,
            flow_hops: vec![5],
        }
        .build()
        .is_err());
        assert!(LayoutSpec::Grid {
            width: 2,
            height: 2,
            sink: 0,
            sources: vec![],
        }
        .build()
        .is_err());
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 0;
        assert!(matches!(cfg.build(), Err(ConfigError::Simulation(_))));
    }

    #[test]
    fn built_simulation_runs() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 50;
        let out = cfg.build().unwrap().run();
        assert_eq!(out.total_delivered(), 200);
        assert_eq!(out.flows[FlowId(0).index()].hops, 15);
    }
}

//! Zero-allocation struct-of-arrays packet data plane.
//!
//! The simulation driver used to carry 80-byte [`Packet`] values inside
//! events and park them in per-node `BTreeMap`s, paying one or more heap
//! allocations per hop. [`PacketStore`] replaces that with a slab: every
//! in-flight packet is a dense `u32` slot into parallel column `Vec`s
//! (flow, origin, hop count, creation time, buffer timestamps), and a
//! free list recycles slots so the steady-state path allocates nothing.
//! Events and cross-shard handoffs ship plain slot indices.
//!
//! [`StoreBuffer`] is the companion per-node buffer: a `PacketId`-sorted
//! `Vec` of `(id, slot)` entries plus optional sorted victim-index `Vec`s
//! that replicate the exact selection and tie-break semantics of
//! [`crate::buffer::NodeBuffer`]'s BTreeSet indexes (which remain as the
//! reference model for the property tests) — same victims, same RNG draw
//! counts, byte-identical outcomes.
//!
//! [`Packet`]: tempriv_net::packet::Packet

use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_sim::queue::EventId;
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimTime;

use crate::buffer::{BufferPolicy, VictimPolicy};

/// Slab of in-flight packet state in struct-of-arrays layout.
///
/// Slots are dense `u32` indices; freed slots are recycled in LIFO
/// order, so a steady-state simulation touches the same few cache lines
/// forever and the columns never grow past the peak in-flight count.
#[derive(Debug, Default)]
pub struct PacketStore {
    pid: Vec<PacketId>,
    flow: Vec<FlowId>,
    origin: Vec<NodeId>,
    hop_count: Vec<u32>,
    created_at: Vec<SimTime>,
    reading: Vec<f64>,
    buffered_at: Vec<SimTime>,
    release_at: Vec<SimTime>,
    timer: Vec<Option<EventId>>,
    free: Vec<u32>,
}

impl PacketStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// An empty store with column capacity for `cap` concurrent packets.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        PacketStore {
            pid: Vec::with_capacity(cap),
            flow: Vec::with_capacity(cap),
            origin: Vec::with_capacity(cap),
            hop_count: Vec::with_capacity(cap),
            created_at: Vec::with_capacity(cap),
            reading: Vec::with_capacity(cap),
            buffered_at: Vec::with_capacity(cap),
            release_at: Vec::with_capacity(cap),
            timer: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Admits a fresh packet, reusing a freed slot when one exists.
    pub fn alloc(
        &mut self,
        pid: PacketId,
        flow: FlowId,
        origin: NodeId,
        created_at: SimTime,
        reading: f64,
    ) -> u32 {
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.pid[i] = pid;
            self.flow[i] = flow;
            self.origin[i] = origin;
            self.hop_count[i] = 0;
            self.created_at[i] = created_at;
            self.reading[i] = reading;
            self.buffered_at[i] = SimTime::ZERO;
            self.release_at[i] = SimTime::ZERO;
            self.timer[i] = None;
            slot
        } else {
            let slot = u32::try_from(self.pid.len()).expect("more than u32::MAX live packets");
            self.pid.push(pid);
            self.flow.push(flow);
            self.origin.push(origin);
            self.hop_count.push(0);
            self.created_at.push(created_at);
            self.reading.push(reading);
            self.buffered_at.push(SimTime::ZERO);
            self.release_at.push(SimTime::ZERO);
            self.timer.push(None);
            slot
        }
    }

    /// Returns `slot` to the free list (delivered, dropped, or lost).
    pub fn release(&mut self, slot: u32) {
        debug_assert!(!self.free.contains(&slot), "slot {slot} released twice");
        self.free.push(slot);
    }

    /// The packet's simulation-unique id.
    #[must_use]
    #[inline]
    pub fn pid(&self, slot: u32) -> PacketId {
        self.pid[slot as usize]
    }

    /// The packet's flow.
    #[must_use]
    #[inline]
    pub fn flow(&self, slot: u32) -> FlowId {
        self.flow[slot as usize]
    }

    /// The packet's origin node.
    #[must_use]
    #[inline]
    pub fn origin(&self, slot: u32) -> NodeId {
        self.origin[slot as usize]
    }

    /// Hops recorded so far.
    #[must_use]
    #[inline]
    pub fn hop_count(&self, slot: u32) -> u32 {
        self.hop_count[slot as usize]
    }

    /// Overwrites the hop count (cross-shard handoff restore).
    #[inline]
    pub fn set_hop_count(&mut self, slot: u32, hops: u32) {
        self.hop_count[slot as usize] = hops;
    }

    /// The packet's creation instant.
    #[must_use]
    #[inline]
    pub fn created_at(&self, slot: u32) -> SimTime {
        self.created_at[slot as usize]
    }

    /// The sealed sensor reading.
    #[must_use]
    #[inline]
    pub fn reading(&self, slot: u32) -> f64 {
        self.reading[slot as usize]
    }

    /// Records a forwarding hop.
    #[inline]
    pub fn record_hop(&mut self, slot: u32) {
        self.hop_count[slot as usize] += 1;
    }

    /// When the packet entered its current buffer.
    #[must_use]
    #[inline]
    pub fn buffered_at(&self, slot: u32) -> SimTime {
        self.buffered_at[slot as usize]
    }

    /// When the packet's current buffer will release it.
    #[must_use]
    #[inline]
    pub fn release_at(&self, slot: u32) -> SimTime {
        self.release_at[slot as usize]
    }

    /// The pending release timer, if any.
    #[must_use]
    #[inline]
    pub fn timer(&self, slot: u32) -> Option<EventId> {
        self.timer[slot as usize]
    }

    /// Stamps the buffering state when a packet is parked at a node.
    #[inline]
    pub fn park(
        &mut self,
        slot: u32,
        buffered_at: SimTime,
        release_at: SimTime,
        timer: Option<EventId>,
    ) {
        let i = slot as usize;
        self.buffered_at[i] = buffered_at;
        self.release_at[i] = release_at;
        self.timer[i] = timer;
    }

    /// Slots currently live (allocated and not freed).
    #[must_use]
    pub fn live(&self) -> usize {
        self.pid.len() - self.free.len()
    }

    /// Column length — the in-flight high-water mark.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.pid.len()
    }
}

/// Which sorted victim index a [`StoreBuffer`] maintains, decided once
/// from the buffer policy exactly as `NodeBuffer::for_policy` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VictimKeys {
    /// No index: drop-tail, unlimited, mixes, and random victims (the
    /// id-sorted entry list itself is the random index).
    None,
    /// `(release_at, id)`-sorted — shortest/longest-remaining victims.
    ByRelease,
    /// `(buffered_at, id)`-sorted — oldest-first victims.
    ByBuffered,
}

/// Per-node buffer over [`PacketStore`] slots.
///
/// Entries are kept sorted by `PacketId` in a plain `Vec` (binary-search
/// insert; occupancies are tens, not thousands), with the victim index
/// as a second sorted `Vec`. Cleared capacity is retained, so after
/// warm-up the buffer never allocates again.
#[derive(Debug)]
pub struct StoreBuffer {
    entries: Vec<(PacketId, u32)>,
    index: Vec<(SimTime, PacketId)>,
    keys: VictimKeys,
    high_water: usize,
}

impl StoreBuffer {
    /// A buffer with the victim index `policy` requires.
    #[must_use]
    pub fn for_policy(policy: &BufferPolicy) -> Self {
        let keys = match policy {
            BufferPolicy::Rcad { victim, .. } => match victim {
                VictimPolicy::ShortestRemaining | VictimPolicy::LongestRemaining => {
                    VictimKeys::ByRelease
                }
                VictimPolicy::Oldest => VictimKeys::ByBuffered,
                VictimPolicy::Random => VictimKeys::None,
            },
            _ => VictimKeys::None,
        };
        StoreBuffer {
            entries: Vec::new(),
            index: Vec::new(),
            keys,
            high_water: 0,
        }
    }

    /// Buffered packet count.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak occupancy ever seen.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts a parked packet. The store must already carry the slot's
    /// buffering state (see [`PacketStore::park`]).
    ///
    /// # Panics
    ///
    /// Panics if the packet id is already buffered here.
    pub fn insert(&mut self, store: &PacketStore, slot: u32) {
        let pid = store.pid(slot);
        match self.entries.binary_search_by(|e| e.0.cmp(&pid)) {
            Ok(_) => panic!("packet {pid:?} already buffered"),
            Err(pos) => self.entries.insert(pos, (pid, slot)),
        }
        if let Some(key) = self.index_key(store, slot) {
            let pos = self.index.partition_point(|&e| e < key);
            self.index.insert(pos, key);
        }
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Removes a buffered packet by id, returning its slot.
    #[must_use]
    pub fn remove(&mut self, store: &PacketStore, pid: PacketId) -> Option<u32> {
        let pos = self.entries.binary_search_by(|e| e.0.cmp(&pid)).ok()?;
        let (_, slot) = self.entries.remove(pos);
        if let Some(key) = self.index_key(store, slot) {
            let pos = self.index.partition_point(|&e| e < key);
            debug_assert!(
                self.index.get(pos) == Some(&key),
                "victim index out of sync"
            );
            self.index.remove(pos);
        }
        Some(slot)
    }

    /// The victim-index key for `slot`, if this buffer keeps one.
    fn index_key(&self, store: &PacketStore, slot: u32) -> Option<(SimTime, PacketId)> {
        match self.keys {
            VictimKeys::None => None,
            VictimKeys::ByRelease => Some((store.release_at(slot), store.pid(slot))),
            VictimKeys::ByBuffered => Some((store.buffered_at(slot), store.pid(slot))),
        }
    }

    /// Picks the packet `policy` sacrifices, identically (selection and
    /// RNG draws) to `NodeBuffer::select_victim`: shortest-remaining is
    /// the earliest `(release, id)`; longest-remaining the maximal
    /// release with the smallest id among ties; oldest the earliest
    /// `(buffered, id)`; random one uniform index draw into the
    /// id-sorted entries.
    pub fn select_victim(&self, policy: VictimPolicy, rng: &mut SimRng) -> Option<PacketId> {
        if self.entries.is_empty() {
            return None;
        }
        match policy {
            VictimPolicy::ShortestRemaining => Some(self.index[0].1),
            VictimPolicy::LongestRemaining => {
                let max_release = self.index.last().expect("non-empty index").0;
                let first = self.index.partition_point(|&(t, _)| t < max_release);
                Some(self.index[first].1)
            }
            VictimPolicy::Oldest => Some(self.index[0].1),
            VictimPolicy::Random => {
                let idx = rng.sample_index(self.entries.len());
                Some(self.entries[idx].0)
            }
        }
    }

    /// Drains every buffered slot into `out` in ascending packet-id
    /// order (the mix flush order), clearing the buffer but keeping its
    /// capacity.
    pub fn drain_slots_into(&mut self, out: &mut Vec<u32>) {
        out.extend(self.entries.iter().map(|&(_, slot)| slot));
        self.entries.clear();
        self.index.clear();
    }

    /// Buffered `(id, slot)` entries in ascending id order.
    #[must_use]
    pub fn entries(&self) -> &[(PacketId, u32)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn store_with(packets: &[(u64, f64)]) -> (PacketStore, Vec<u32>) {
        let mut store = PacketStore::new();
        let slots = packets
            .iter()
            .map(|&(pid, release)| {
                let slot = store.alloc(PacketId(pid), FlowId(0), NodeId(1), t(0.0), 0.0);
                store.park(slot, t(0.0), t(release), None);
                slot
            })
            .collect();
        (store, slots)
    }

    #[test]
    fn slots_recycle_through_the_free_list() {
        let mut store = PacketStore::new();
        let a = store.alloc(PacketId(0), FlowId(0), NodeId(1), t(0.0), 1.0);
        let b = store.alloc(PacketId(1), FlowId(0), NodeId(2), t(1.0), 2.0);
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.live(), 2);
        store.release(a);
        let c = store.alloc(PacketId(2), FlowId(1), NodeId(3), t(2.0), 3.0);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(store.pid(c), PacketId(2));
        assert_eq!(store.hop_count(c), 0, "recycled slot state is reset");
        assert_eq!(store.capacity(), 2);
    }

    #[test]
    fn victim_selection_matches_policy_semantics() {
        let rcad = |victim| BufferPolicy::Rcad {
            capacity: 4,
            victim,
        };
        // Two packets share the max release; the smaller id must win
        // the longest-remaining tie-break, as the BTreeSet range scan
        // had it.
        let (store, slots) = store_with(&[(5, 9.0), (2, 9.0), (7, 3.0)]);
        let mut rng = RngFactory::new(1).stream(0);

        let mut buf = StoreBuffer::for_policy(&rcad(VictimPolicy::ShortestRemaining));
        for &s in &slots {
            buf.insert(&store, s);
        }
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut rng),
            Some(PacketId(7))
        );

        let mut buf = StoreBuffer::for_policy(&rcad(VictimPolicy::LongestRemaining));
        for &s in &slots {
            buf.insert(&store, s);
        }
        assert_eq!(
            buf.select_victim(VictimPolicy::LongestRemaining, &mut rng),
            Some(PacketId(2))
        );
        assert_eq!(rng.draws(), 0, "deterministic policies never draw");

        let mut buf = StoreBuffer::for_policy(&rcad(VictimPolicy::Random));
        for &s in &slots {
            buf.insert(&store, s);
        }
        let picked = buf
            .select_victim(VictimPolicy::Random, &mut rng)
            .expect("non-empty");
        assert_eq!(rng.draws(), 1, "random victims cost exactly one draw");
        assert!([PacketId(2), PacketId(5), PacketId(7)].contains(&picked));
    }

    #[test]
    fn drain_is_in_packet_id_order_and_capacity_is_kept() {
        let (store, slots) = store_with(&[(9, 1.0), (3, 2.0), (6, 3.0)]);
        let mut buf = StoreBuffer::for_policy(&BufferPolicy::ThresholdMix { threshold: 3 });
        for &s in &slots {
            buf.insert(&store, s);
        }
        assert_eq!(buf.high_water(), 3);
        let mut out = Vec::new();
        buf.drain_slots_into(&mut out);
        let ids: Vec<u64> = out.iter().map(|&s| store.pid(s).0).collect();
        assert_eq!(ids, vec![3, 6, 9]);
        assert!(buf.is_empty());
        assert!(buf.entries.capacity() >= 3, "capacity survives the drain");
    }

    #[test]
    fn remove_keeps_the_index_in_sync() {
        let (store, slots) = store_with(&[(1, 5.0), (2, 4.0), (3, 6.0)]);
        let mut buf = StoreBuffer::for_policy(&BufferPolicy::Rcad {
            capacity: 4,
            victim: VictimPolicy::ShortestRemaining,
        });
        for &s in &slots {
            buf.insert(&store, s);
        }
        let mut rng = RngFactory::new(2).stream(0);
        assert_eq!(
            buf.remove(&store, PacketId(2)).map(|s| store.pid(s)),
            Some(PacketId(2))
        );
        assert_eq!(
            buf.select_victim(VictimPolicy::ShortestRemaining, &mut rng),
            Some(PacketId(1))
        );
        assert!(buf.remove(&store, PacketId(42)).is_none());
    }
}

//! Delay decomposition across the routing path (paper §3.3).
//!
//! The end-to-end delay process `Y_j = Y_{0j} + Y_{1j} + ⋯ + Y_{N−1,j}`
//! can be split across the path's nodes in any proportion: all at the
//! source (the two-party case of §3.1), evenly (the §5 evaluation), or —
//! as §3.3 suggests, since "traffic loads in sensor networks accumulate
//! near network sinks" — weighted so that nodes *further from the sink*
//! carry more of the delay budget.
//!
//! With exponential per-node delays the split changes nothing about the
//! mean latency but everything about the *variance* (privacy) and the
//! *buffer load profile*: concentrating a budget `B` at one node yields
//! delay variance `B²`, while spreading it over `h` nodes yields `h·(B/h)²
//! = B²/h` — a factor-h privacy loss in exchange for a factor-h reduction
//! in the hottest buffer. The E2 experiment quantifies this trade-off.

use serde::{Deserialize, Serialize};
use tempriv_net::ids::NodeId;
use tempriv_net::routing::RoutingTree;

use crate::delay::{DelayPlan, DelayStrategy};

/// How a flow's delay budget is spread across its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DecompositionShape {
    /// Equal mean delay at every node — the paper's §5 evaluation setup.
    Uniform,
    /// The entire budget at the source node (§3.1's two-party network).
    AtSource,
    /// Mean delay proportional to the node's hop distance from the sink —
    /// §3.3's suggestion: more delay where traffic has not yet aggregated.
    FarFromSink,
    /// Mean delay inversely proportional to hop distance from the sink
    /// (the contrarian control: concentrate delay where traffic is
    /// heaviest).
    NearSink,
}

impl DecompositionShape {
    /// Relative weight of a delaying node at hop-distance `depth` ≥ 1
    /// from the sink.
    #[must_use]
    pub fn weight(self, depth: u32) -> f64 {
        debug_assert!(depth >= 1, "the sink does not delay");
        match self {
            DecompositionShape::Uniform => 1.0,
            // AtSource is handled structurally in `decomposed_plan`.
            DecompositionShape::AtSource => 0.0,
            DecompositionShape::FarFromSink => f64::from(depth),
            DecompositionShape::NearSink => 1.0 / f64::from(depth),
        }
    }
}

/// Builds a per-node exponential [`DelayPlan`] that spreads a delay
/// budget along every flow's path according to `shape`.
///
/// The budget is enforced exactly for the *reference flow* (flow 0): the
/// expected artificial delay along its path equals `flow_budget`. Other
/// flows, sharing trunk nodes, receive totals proportional to their own
/// path weights. For [`DecompositionShape::AtSource`] every flow's source
/// gets its entire budget, so the budget is exact for all flows.
///
/// # Panics
///
/// Panics if `sources` is empty, `flow_budget` is non-positive or not
/// finite, or a source is not covered by `routing`.
#[must_use]
pub fn decomposed_plan(
    routing: &RoutingTree,
    sources: &[NodeId],
    flow_budget: f64,
    shape: DecompositionShape,
) -> DelayPlan {
    assert!(!sources.is_empty(), "need at least one flow");
    assert!(
        flow_budget.is_finite() && flow_budget > 0.0,
        "delay budget must be positive, got {flow_budget}"
    );
    let mut strategies = vec![DelayStrategy::None; routing.len()];
    if shape == DecompositionShape::AtSource {
        for &src in sources {
            assert!(
                routing.hops(src).is_some(),
                "source {src} is not covered by the routing tree"
            );
            strategies[src.index()] = DelayStrategy::exponential(flow_budget);
        }
        return DelayPlan::PerNode {
            strategies,
            fallback: DelayStrategy::None,
        };
    }
    // Scale chosen so the reference flow's path sums to the budget.
    let reference_path = routing.path(sources[0]);
    let reference_weight: f64 = reference_path[..reference_path.len() - 1]
        .iter()
        .map(|&v| shape.weight(routing.hops(v).expect("path node")))
        .sum();
    assert!(
        reference_weight > 0.0,
        "reference flow has no delaying nodes"
    );
    let scale = flow_budget / reference_weight;
    for &src in sources {
        let path = routing.path(src);
        for &v in &path[..path.len() - 1] {
            let depth = routing.hops(v).expect("path node");
            let mean = scale * shape.weight(depth);
            if mean > 0.0 {
                strategies[v.index()] = DelayStrategy::exponential(mean);
            }
        }
    }
    DelayPlan::PerNode {
        strategies,
        fallback: DelayStrategy::None,
    }
}

/// Analytic delay variance of the reference flow under a plan (sum of
/// per-node exponential variances along its path) — the privacy scale a
/// mean-correcting adversary faces on an unlimited-buffer network.
#[must_use]
pub fn reference_delay_variance(
    routing: &RoutingTree,
    sources: &[NodeId],
    plan: &DelayPlan,
) -> f64 {
    let path = routing.path(sources[0]);
    path[..path.len() - 1]
        .iter()
        .map(|&v| plan.for_node(v).variance())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_net::convergecast::Convergecast;
    use tempriv_net::ids::FlowId;

    fn layout() -> Convergecast {
        Convergecast::paper_figure1()
    }

    fn budget_of(plan: &DelayPlan, layout: &Convergecast, flow: FlowId) -> f64 {
        let path = layout.routing().path(layout.source(flow));
        plan.path_mean_delay(&path[..path.len() - 1])
    }

    #[test]
    fn uniform_decomposition_matches_shared_plan() {
        let l = layout();
        let plan = decomposed_plan(l.routing(), l.sources(), 450.0, DecompositionShape::Uniform);
        // Reference flow (S1, 15 hops): 450/15 = 30 per node.
        let path = l.routing().path(l.source(FlowId(0)));
        for &v in &path[..path.len() - 1] {
            assert!((plan.for_node(v).mean() - 30.0).abs() < 1e-9);
        }
        assert!((budget_of(&plan, &l, FlowId(0)) - 450.0).abs() < 1e-9);
    }

    #[test]
    fn at_source_gives_every_flow_its_full_budget() {
        let l = layout();
        let plan = decomposed_plan(
            l.routing(),
            l.sources(),
            450.0,
            DecompositionShape::AtSource,
        );
        for i in 0..l.num_flows() {
            let flow = FlowId(i as u32);
            assert!((budget_of(&plan, &l, flow) - 450.0).abs() < 1e-9);
            assert!((plan.for_node(l.source(flow)).mean() - 450.0).abs() < 1e-9);
        }
        // Forwarders do not delay.
        assert!(plan.for_node(tempriv_net::ids::NodeId(1)).is_none());
    }

    #[test]
    fn far_from_sink_is_monotone_in_depth() {
        let l = layout();
        let plan = decomposed_plan(
            l.routing(),
            l.sources(),
            450.0,
            DecompositionShape::FarFromSink,
        );
        let path = l.routing().path(l.source(FlowId(0)));
        let means: Vec<f64> = path[..path.len() - 1]
            .iter()
            .map(|&v| plan.for_node(v).mean())
            .collect();
        // Path runs source (depth 15) -> ... -> depth 1: means decrease.
        for w in means.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!((budget_of(&plan, &l, FlowId(0)) - 450.0).abs() < 1e-9);
    }

    #[test]
    fn near_sink_is_reversed() {
        let l = layout();
        let plan = decomposed_plan(
            l.routing(),
            l.sources(),
            450.0,
            DecompositionShape::NearSink,
        );
        let path = l.routing().path(l.source(FlowId(0)));
        let means: Vec<f64> = path[..path.len() - 1]
            .iter()
            .map(|&v| plan.for_node(v).mean())
            .collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((budget_of(&plan, &l, FlowId(0)) - 450.0).abs() < 1e-9);
    }

    #[test]
    fn variance_ordering_concentration_wins() {
        // At equal mean budget: Var(AtSource) = B^2 > Var(FarFromSink) >
        // Var(Uniform) = B^2/h for exponential node delays.
        let l = layout();
        let b = 450.0;
        let var = |shape| {
            let plan = decomposed_plan(l.routing(), l.sources(), b, shape);
            reference_delay_variance(l.routing(), l.sources(), &plan)
        };
        let at_source = var(DecompositionShape::AtSource);
        let far = var(DecompositionShape::FarFromSink);
        let uniform = var(DecompositionShape::Uniform);
        assert!((at_source - b * b).abs() < 1e-6);
        assert!((uniform - b * b / 15.0).abs() < 1e-6);
        assert!(
            at_source > far && far > uniform,
            "{at_source} > {far} > {uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let l = layout();
        let _ = decomposed_plan(l.routing(), l.sources(), 0.0, DecompositionShape::Uniform);
    }
}

//! Simulation outcomes and privacy metrics.
//!
//! The paper's two headline measurements (§5.1): the adversary's **mean
//! square error** in estimating packet creation times (privacy — higher
//! is better) and the **average end-to-end delivery latency** (overhead —
//! lower is better). [`SimOutcome`] carries everything a run produced;
//! [`evaluate_adversary`] scores any [`Adversary`] against the truth log.

use serde::{Deserialize, Serialize};
use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_sim::stats::{Histogram, MseAccumulator, OnlineStats};
use tempriv_sim::time::SimTime;

use crate::adversary::{Adversary, AdversaryKnowledge, Observation, OracleAdversary};

/// Ground truth for one packet (the legitimate receiver's decrypted view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthRecord {
    /// The packet.
    pub packet: PacketId,
    /// Its flow.
    pub flow: FlowId,
    /// When the source created it — the secret being protected.
    pub created_at: SimTime,
}

/// Per-flow delivery results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: FlowId,
    /// Its source node.
    pub source: NodeId,
    /// Its hop count to the sink.
    pub hops: u32,
    /// Packets created at the source.
    pub created: u64,
    /// Packets that reached the sink.
    pub delivered: u64,
    /// End-to-end latency statistics (time units).
    pub latency: OnlineStats,
    /// Latency distribution (fixed-bin histogram; range set on the
    /// simulation builder, default `[0, 2000)` in 400 bins).
    pub latency_histogram: Histogram,
}

impl FlowOutcome {
    /// Delivery ratio in `[0, 1]`.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.delivered as f64 / self.created as f64
        }
    }

    /// Approximate latency quantile from the histogram (`None` until a
    /// packet is delivered).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.latency_histogram.quantile(q)
    }

    /// Median latency (`None` until a packet is delivered).
    #[must_use]
    pub fn latency_p50(&self) -> Option<f64> {
        self.latency_quantile(0.5)
    }

    /// 95th-percentile latency — the figure a delay-*tolerant* (but not
    /// delay-insensitive, §2) application actually cares about.
    #[must_use]
    pub fn latency_p95(&self) -> Option<f64> {
        self.latency_quantile(0.95)
    }
}

/// Per-node buffering behaviour over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Time-weighted mean buffer occupancy.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy.
    pub peak_occupancy: u64,
    /// Time-weighted occupancy PMF: `(packets buffered, fraction of the
    /// run spent in that state)` — comparable to the Poisson(ρ) law of §4.
    pub occupancy_pmf: Vec<(u64, f64)>,
    /// RCAD preemptions performed.
    pub preemptions: u64,
    /// Packets dropped because the buffer was full (drop-tail only).
    pub drops: u64,
    /// Batch flushes performed (threshold mixes only).
    pub flushes: u64,
    /// Packets still buffered when the run ended (threshold mixes whose
    /// final batch never filled).
    pub stranded: u64,
    /// Packets this node transmitted.
    pub transmissions: u64,
    /// Packets this node received off the radio.
    pub receptions: u64,
}

/// Everything one simulation run produced.
///
/// Equality compares simulation content only: the allocation gauges
/// (`allocs`, `alloc_bytes`) are instrumentation readings that vary
/// with which probes happen to be attached, so — like wall-clock time —
/// they are excluded from both [`PartialEq`] and
/// [`digest`](SimOutcome::digest).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// When the last event fired.
    pub end_time: SimTime,
    /// Per-flow delivery results, indexed by [`FlowId`].
    pub flows: Vec<FlowOutcome>,
    /// The adversary-visible arrival log, in arrival order.
    pub observations: Vec<Observation>,
    /// Ground truth, indexed by `PacketId` (dense: ids are assigned
    /// sequentially from 0).
    pub truth: Vec<TruthRecord>,
    /// Per-node buffer behaviour.
    pub nodes: Vec<NodeReport>,
    /// Packets lost on the radio (lossy-link experiments only).
    pub link_losses: u64,
    /// Total RNG draws consumed across every stream of the run. Probes
    /// observe without sampling, so this count must be identical with any
    /// probe attached — the determinism tests assert exactly that.
    /// Defaults to 0 when deserializing outcomes recorded before the
    /// counter existed.
    #[serde(default)]
    pub rng_draws: u64,
    /// Total events the engine delivered over the run. A pure function of
    /// the schedule, so it is identical across probed/unprobed runs.
    /// Defaults to 0 when deserializing older outcomes.
    #[serde(default)]
    pub events: u64,
    /// High-water mark of the future-event set (pending, non-cancelled
    /// events). Defaults to 0 when deserializing older outcomes.
    #[serde(default)]
    pub peak_fes: u64,
    /// Heap allocations made on the driver thread during the run, as
    /// counted by `tempriv_telemetry::memprof` — 0 unless a counting
    /// allocator is installed and enabled. Excluded from equality and
    /// digests: attached probes allocate, simulation content does not
    /// change. Defaults to 0 when deserializing older outcomes.
    #[serde(default)]
    pub allocs: u64,
    /// Bytes requested by those allocations. Excluded from equality and
    /// digests, like [`allocs`](SimOutcome::allocs). Defaults to 0 when
    /// deserializing older outcomes.
    #[serde(default)]
    pub alloc_bytes: u64,
    /// Per-shard execution statistics when the run used the sharded
    /// engine; empty for serial runs. Describes how the work was
    /// partitioned, not what the simulation computed, so it is excluded
    /// from equality and digests (a sharded run that reproduces a serial
    /// trajectory digests identically). Defaults to empty when
    /// deserializing older outcomes.
    #[serde(default)]
    pub shards: Vec<ShardStats>,
}

/// How one shard of a sharded run behaved (see [`SimOutcome::shards`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Nodes assigned to this shard.
    pub nodes: u64,
    /// Events this shard's private engine delivered.
    pub events: u64,
    /// Cross-shard packet handoffs this shard emitted.
    pub handoffs_out: u64,
    /// High-water mark of this shard's private future-event set.
    pub peak_fes: u64,
}

impl PartialEq for SimOutcome {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the allocation gauges, which measure the
        // instrumentation rather than the simulation.
        self.end_time == other.end_time
            && self.flows == other.flows
            && self.observations == other.observations
            && self.truth == other.truth
            && self.nodes == other.nodes
            && self.link_losses == other.link_losses
            && self.rng_draws == other.rng_draws
            && self.events == other.events
            && self.peak_fes == other.peak_fes
    }
}

impl SimOutcome {
    /// Creation time of a packet, from the truth log.
    ///
    /// # Panics
    ///
    /// Panics if the packet id is unknown.
    #[must_use]
    pub fn creation_time(&self, packet: PacketId) -> SimTime {
        let rec = &self.truth[packet.0 as usize];
        debug_assert_eq!(rec.packet, packet);
        rec.created_at
    }

    /// Total packets delivered across all flows.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.flows.iter().map(|f| f.delivered).sum()
    }

    /// Mean end-to-end latency across all delivered packets.
    #[must_use]
    pub fn overall_mean_latency(&self) -> f64 {
        let mut all = OnlineStats::new();
        for f in &self.flows {
            all.merge(&f.latency);
        }
        all.mean()
    }

    /// Total RCAD preemptions across all nodes.
    #[must_use]
    pub fn total_preemptions(&self) -> u64 {
        self.nodes.iter().map(|n| n.preemptions).sum()
    }

    /// Total full-buffer drops across all nodes.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.drops).sum()
    }

    /// Total packets stranded in unfinished mix batches at run end.
    #[must_use]
    pub fn total_stranded(&self) -> u64 {
        self.nodes.iter().map(|n| n.stranded).sum()
    }

    /// Total mix batch flushes across all nodes.
    #[must_use]
    pub fn total_flushes(&self) -> u64 {
        self.nodes.iter().map(|n| n.flushes).sum()
    }

    /// Total radio energy spent across the network under `model`.
    /// Artificial buffering delays cost nothing here — the asymmetry
    /// that makes the paper's mechanism affordable on motes.
    #[must_use]
    pub fn total_energy(&self, model: &tempriv_net::energy::EnergyModel) -> f64 {
        model.total_energy(self.nodes.iter().map(|n| (n.transmissions, n.receptions)))
    }

    /// Radio energy per delivered packet under `model` (infinite if
    /// nothing was delivered).
    #[must_use]
    pub fn energy_per_delivered(&self, model: &tempriv_net::energy::EnergyModel) -> f64 {
        model.energy_per_delivered(
            self.nodes.iter().map(|n| (n.transmissions, n.receptions)),
            self.total_delivered(),
        )
    }

    /// Heap allocations per delivered packet — the figure ROADMAP
    /// item 2 (zero-alloc data plane) drives toward zero. Infinite if
    /// nothing was delivered; 0 unless a counting allocator was active
    /// during the run.
    #[must_use]
    pub fn allocs_per_delivered(&self) -> f64 {
        let delivered = self.total_delivered();
        if delivered == 0 {
            if self.allocs == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.allocs as f64 / delivered as f64
        }
    }

    /// The calibration oracle for this run (per-flow realized mean
    /// latencies); see [`OracleAdversary`].
    #[must_use]
    pub fn oracle(&self) -> OracleAdversary {
        OracleAdversary::new(self.flows.iter().map(|f| f.latency.mean()).collect())
    }

    /// A 64-bit FNV-1a fingerprint of the run (observations, truth, and
    /// per-node counters): two runs are byte-identical iff their digests
    /// match, giving CI a one-number regression check on simulator
    /// determinism.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hasher = tempriv_telemetry::audit::digest::Fnv64::new();
        let mut eat = |bytes: &[u8]| hasher.update(bytes);
        eat(&self.end_time.ticks().to_le_bytes());
        for obs in &self.observations {
            eat(&obs.arrival.ticks().to_le_bytes());
            eat(&obs.origin.0.to_le_bytes());
            eat(&obs.hop_count.to_le_bytes());
            eat(&obs.packet.0.to_le_bytes());
        }
        for rec in &self.truth {
            eat(&rec.created_at.ticks().to_le_bytes());
            eat(&rec.flow.0.to_le_bytes());
        }
        for node in &self.nodes {
            eat(&node.preemptions.to_le_bytes());
            eat(&node.drops.to_le_bytes());
            eat(&node.transmissions.to_le_bytes());
        }
        eat(&self.link_losses.to_le_bytes());
        hasher.finish()
    }

    /// Per-packet latencies of `flow` in arrival order (reconstructed
    /// from the observation and truth logs).
    #[must_use]
    pub fn latency_series(&self, flow: FlowId) -> Vec<f64> {
        self.observations
            .iter()
            .filter(|o| o.flow == flow)
            .map(|o| (o.arrival - self.creation_time(o.packet)).as_units())
            .collect()
    }

    /// Latency statistics of `flow` with the first `discard_frac` and
    /// last `discard_frac` of arrivals dropped — the steady-state view
    /// that excludes the cold-start ramp (see
    /// `tempriv_queueing::mm_inf::MmInf::warmup_time`) and the drain
    /// tail.
    ///
    /// # Panics
    ///
    /// Panics if `discard_frac` is not in `[0, 0.5)`.
    #[must_use]
    pub fn steady_state_latency(&self, flow: FlowId, discard_frac: f64) -> OnlineStats {
        assert!(
            (0.0..0.5).contains(&discard_frac),
            "discard fraction must be in [0, 0.5), got {discard_frac}"
        );
        let series = self.latency_series(flow);
        let skip = (series.len() as f64 * discard_frac) as usize;
        let mut stats = OnlineStats::new();
        for &l in &series[skip..series.len() - skip] {
            stats.record(l);
        }
        stats
    }

    /// Fraction of adjacent sink arrivals of `flow` that are out of
    /// application order — how thoroughly independent per-hop delays
    /// scramble the sequence (§3.2: the adversary only ever sees the
    /// *sorted* process `Z̃`, and this measures how much sorting hides).
    ///
    /// Returns 0 for flows with fewer than two observations.
    #[must_use]
    pub fn reordering_fraction(&self, flow: FlowId) -> f64 {
        let seq: Vec<u64> = self
            .observations
            .iter()
            .filter(|o| o.flow == flow)
            .map(|o| self.truth[o.packet.0 as usize].packet.0)
            .collect();
        if seq.len() < 2 {
            return 0.0;
        }
        let inversions = seq.windows(2).filter(|w| w[0] > w[1]).count();
        inversions as f64 / (seq.len() - 1) as f64
    }

    /// Paired (creation, arrival) samples for a flow, for empirical
    /// mutual-information estimation.
    #[must_use]
    pub fn creation_arrival_pairs(&self, flow: FlowId) -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut zs = Vec::new();
        for obs in &self.observations {
            if obs.flow == flow {
                xs.push(self.creation_time(obs.packet).as_units());
                zs.push(obs.arrival.as_units());
            }
        }
        (xs, zs)
    }
}

/// An adversary's scored performance on one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// The adversary's name.
    pub adversary: String,
    /// MSE per flow, indexed by [`FlowId`].
    pub per_flow: Vec<MseAccumulator>,
    /// MSE across every observation.
    pub overall: MseAccumulator,
}

impl AdversaryReport {
    /// The paper's headline number: MSE for one flow (S1 in the figures).
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn mse(&self, flow: FlowId) -> f64 {
        self.per_flow[flow.index()].mse()
    }
}

/// Runs `adversary` over the observation log and scores it against truth.
///
/// # Panics
///
/// Panics if the adversary returns the wrong number of estimates.
#[must_use]
pub fn evaluate_adversary(
    outcome: &SimOutcome,
    adversary: &dyn Adversary,
    knowledge: &AdversaryKnowledge,
) -> AdversaryReport {
    let estimates = adversary.estimate_creation_times(&outcome.observations, knowledge);
    assert_eq!(
        estimates.len(),
        outcome.observations.len(),
        "adversary must estimate every observation"
    );
    let mut per_flow = vec![MseAccumulator::new(); outcome.flows.len()];
    let mut overall = MseAccumulator::new();
    for (obs, est) in outcome.observations.iter().zip(&estimates) {
        let truth = outcome.creation_time(obs.packet).as_units();
        let err = est - truth;
        per_flow[obs.flow.index()].record_error(err);
        overall.record_error(err);
    }
    AdversaryReport {
        adversary: adversary.name().to_string(),
        per_flow,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::BaselineAdversary;

    fn outcome_with_one_flow() -> SimOutcome {
        let truth = vec![
            TruthRecord {
                packet: PacketId(0),
                flow: FlowId(0),
                created_at: SimTime::from_units(10.0),
            },
            TruthRecord {
                packet: PacketId(1),
                flow: FlowId(0),
                created_at: SimTime::from_units(20.0),
            },
        ];
        let observations = vec![
            Observation {
                arrival: SimTime::from_units(100.0),
                origin: NodeId(5),
                hop_count: 2,
                flow: FlowId(0),
                packet: PacketId(0),
            },
            Observation {
                arrival: SimTime::from_units(130.0),
                origin: NodeId(5),
                hop_count: 2,
                flow: FlowId(0),
                packet: PacketId(1),
            },
        ];
        let mut latency = OnlineStats::new();
        let mut latency_histogram = Histogram::new(0.0, 2_000.0, 400);
        for l in [90.0, 110.0] {
            latency.record(l);
            latency_histogram.record(l);
        }
        SimOutcome {
            end_time: SimTime::from_units(130.0),
            flows: vec![FlowOutcome {
                flow: FlowId(0),
                source: NodeId(5),
                hops: 2,
                created: 2,
                delivered: 2,
                latency,
                latency_histogram,
            }],
            observations,
            truth,
            nodes: vec![],
            link_losses: 0,
            rng_draws: 0,
            events: 0,
            peak_fes: 0,
            allocs: 0,
            alloc_bytes: 0,
            shards: Vec::new(),
        }
    }

    fn knowledge() -> AdversaryKnowledge {
        AdversaryKnowledge {
            tau: 1.0,
            delay_mean: 40.0,
            buffer_slots: Some(10),
            flow_hops: vec![2],
            converging_flows: vec![FlowId(0)],
            flow_paths: vec![vec![NodeId(5), NodeId(3)]],
            path_delay_means: vec![80.0],
        }
    }

    #[test]
    fn evaluate_baseline_mse() {
        let outcome = outcome_with_one_flow();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge());
        // Estimates: 100 - 2*41 = 18 (truth 10, err 8); 130 - 82 = 48
        // (truth 20, err 28). MSE = (64 + 784)/2 = 424.
        assert!((report.mse(FlowId(0)) - 424.0).abs() < 1e-9);
        assert_eq!(report.overall.count(), 2);
        assert_eq!(report.adversary, "baseline");
    }

    #[test]
    fn oracle_mse_equals_latency_variance() {
        let outcome = outcome_with_one_flow();
        let oracle = outcome.oracle();
        let report = evaluate_adversary(&outcome, &oracle, &knowledge());
        // Latencies 90 and 110, mean 100: errors are ±10 => MSE 100.
        assert!((report.mse(FlowId(0)) - 100.0).abs() < 1e-9);
        // And that is exactly the latency population variance.
        assert!(
            (report.mse(FlowId(0)) - outcome.flows[0].latency.population_variance()).abs() < 1e-9
        );
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = outcome_with_one_flow();
        let b = outcome_with_one_flow();
        assert_eq!(a.digest(), b.digest());
        let mut c = outcome_with_one_flow();
        c.link_losses = 1;
        assert_ne!(a.digest(), c.digest());
        let mut d = outcome_with_one_flow();
        d.observations.swap(0, 1);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn allocation_gauges_are_outside_equality_and_digest() {
        let a = outcome_with_one_flow();
        let mut b = outcome_with_one_flow();
        b.allocs = 12345;
        b.alloc_bytes = 67890;
        assert_eq!(a, b, "alloc gauges must not affect equality");
        assert_eq!(a.digest(), b.digest(), "alloc gauges must not be hashed");
        assert!((b.allocs_per_delivered() - 12345.0 / 2.0).abs() < 1e-9);
        assert_eq!(a.allocs_per_delivered(), 0.0);
        let mut empty = outcome_with_one_flow();
        empty.flows[0].delivered = 0;
        empty.allocs = 1;
        assert!(empty.allocs_per_delivered().is_infinite());
    }

    #[test]
    fn latency_series_and_steady_state() {
        let outcome = outcome_with_one_flow();
        assert_eq!(outcome.latency_series(FlowId(0)), vec![90.0, 110.0]);
        let ss = outcome.steady_state_latency(FlowId(0), 0.0);
        assert_eq!(ss.count(), 2);
        assert_eq!(ss.mean(), 100.0);
    }

    #[test]
    fn reordering_fraction_counts_inversions() {
        let mut outcome = outcome_with_one_flow();
        // In creation order: packets 0 then 1 -> no inversions.
        assert_eq!(outcome.reordering_fraction(FlowId(0)), 0.0);
        // Swap arrival order: one adjacent inversion out of one pair.
        outcome.observations.swap(0, 1);
        assert_eq!(outcome.reordering_fraction(FlowId(0)), 1.0);
    }

    #[test]
    fn outcome_accessors() {
        let outcome = outcome_with_one_flow();
        assert_eq!(
            outcome.creation_time(PacketId(1)),
            SimTime::from_units(20.0)
        );
        assert_eq!(outcome.total_delivered(), 2);
        assert!((outcome.overall_mean_latency() - 100.0).abs() < 1e-9);
        assert_eq!(outcome.total_preemptions(), 0);
        assert_eq!(outcome.flows[0].delivery_ratio(), 1.0);
        let (xs, zs) = outcome.creation_arrival_pairs(FlowId(0));
        assert_eq!(xs, vec![10.0, 20.0]);
        assert_eq!(zs, vec![100.0, 130.0]);
    }
}

//! One-call privacy assessment of a simulation run.
//!
//! [`PrivacyAssessment::assess`] scores every shipped adversary against a
//! run and gathers the paper's full dashboard — per-flow privacy (MSE
//! under each attacker), overhead (latency mean and percentiles), buffer
//! behaviour (preemptions/drops/stranded), ordering, and radio energy —
//! into one serializable value. The CLI's `run` command and downstream
//! analysis scripts consume this instead of re-implementing the wiring.

use serde::{Deserialize, Serialize};
use tempriv_net::energy::EnergyModel;
use tempriv_net::ids::FlowId;

use crate::adversary::{AdaptiveAdversary, BaselineAdversary, RouteAwareAdversary};
use crate::metrics::{evaluate_adversary, SimOutcome};
use crate::sim_driver::NetworkSimulation;

/// Privacy numbers for one flow under every shipped adversary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowAssessment {
    /// The flow.
    pub flow: FlowId,
    /// Its hop count.
    pub hops: u32,
    /// Mean end-to-end latency (time units).
    pub mean_latency: f64,
    /// Median latency, if anything was delivered.
    pub latency_p50: Option<f64>,
    /// 95th-percentile latency, if anything was delivered.
    pub latency_p95: Option<f64>,
    /// MSE of the §2.1 baseline adversary.
    pub baseline_mse: f64,
    /// MSE of the §5.4 adaptive adversary.
    pub adaptive_mse: f64,
    /// MSE of the route-aware extension adversary.
    pub route_aware_mse: f64,
    /// MSE of the constant-offset oracle (the floor; equals the latency
    /// variance).
    pub oracle_mse: f64,
    /// Fraction of adjacent arrivals out of creation order.
    pub reordering: f64,
    /// Delivery ratio.
    pub delivery_ratio: f64,
}

/// The full dashboard for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAssessment {
    /// Per-flow results, indexed by [`FlowId`].
    pub flows: Vec<FlowAssessment>,
    /// Total RCAD preemptions.
    pub preemptions: u64,
    /// Total full-buffer drops.
    pub drops: u64,
    /// Total packets stranded in unfinished mix batches.
    pub stranded: u64,
    /// Total radio losses.
    pub link_losses: u64,
    /// Radio energy per delivered packet (Mica-2-like model).
    pub energy_per_delivered: f64,
}

impl PrivacyAssessment {
    /// Scores `outcome` (produced by `sim.run()`) against every shipped
    /// adversary.
    ///
    /// # Panics
    ///
    /// Panics if `outcome` did not come from `sim` (flow counts differ).
    #[must_use]
    pub fn assess(sim: &NetworkSimulation, outcome: &SimOutcome) -> Self {
        assert_eq!(
            outcome.flows.len(),
            sim.sources().len(),
            "outcome does not match the simulation"
        );
        let knowledge = sim.adversary_knowledge();
        let baseline = evaluate_adversary(outcome, &BaselineAdversary, &knowledge);
        let adaptive = evaluate_adversary(outcome, &AdaptiveAdversary::paper_default(), &knowledge);
        let route = evaluate_adversary(outcome, &RouteAwareAdversary::paper_default(), &knowledge);
        let oracle_adv = outcome.oracle();
        let oracle = evaluate_adversary(outcome, &oracle_adv, &knowledge);
        let flows = outcome
            .flows
            .iter()
            .map(|f| FlowAssessment {
                flow: f.flow,
                hops: f.hops,
                mean_latency: f.latency.mean(),
                latency_p50: f.latency_p50(),
                latency_p95: f.latency_p95(),
                baseline_mse: baseline.mse(f.flow),
                adaptive_mse: adaptive.mse(f.flow),
                route_aware_mse: route.mse(f.flow),
                oracle_mse: oracle.mse(f.flow),
                reordering: outcome.reordering_fraction(f.flow),
                delivery_ratio: f.delivery_ratio(),
            })
            .collect();
        PrivacyAssessment {
            flows,
            preemptions: outcome.total_preemptions(),
            drops: outcome.total_drops(),
            stranded: outcome.total_stranded(),
            link_losses: outcome.link_losses,
            energy_per_delivered: outcome.energy_per_delivered(&EnergyModel::mica2()),
        }
    }

    /// The assessment of one flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn flow(&self, flow: FlowId) -> &FlowAssessment {
        &self.flows[flow.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn assessment_covers_every_flow_and_orders_adversaries() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 500;
        let sim = cfg.build().unwrap();
        let outcome = sim.run();
        let report = PrivacyAssessment::assess(&sim, &outcome);
        assert_eq!(report.flows.len(), 4);
        for f in &report.flows {
            assert!(f.adaptive_mse <= f.baseline_mse + 1e-9);
            assert!(f.route_aware_mse <= f.adaptive_mse + 1e-9);
            assert!(f.oracle_mse <= f.route_aware_mse * 1.02);
            assert!(f.delivery_ratio == 1.0);
            assert!(f.latency_p50.unwrap() > 0.0);
            assert!(f.latency_p95.unwrap() >= f.latency_p50.unwrap());
            assert!(f.reordering > 0.0, "RCAD scrambles order");
        }
        assert!(report.preemptions > 0);
        assert_eq!(report.drops, 0);
        assert!(report.energy_per_delivered.is_finite());
        // Serializable for offline analysis.
        let json = serde_json::to_string(&report).unwrap();
        let back: PrivacyAssessment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn flow_accessor_indexes_by_id() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 100;
        let sim = cfg.build().unwrap();
        let outcome = sim.run();
        let report = PrivacyAssessment::assess(&sim, &outcome);
        assert_eq!(report.flow(FlowId(1)).hops, 22);
    }
}

//! Instrumented runs: per-job telemetry collection, queueing-theory
//! cross-checks, and sweep-level aggregation.
//!
//! This module is the bridge between the generic probes in
//! [`tempriv_telemetry`] and this crate's experiment sweeps. A sweep job
//! that runs through a [`JobTelemetryCollector`] records, per scenario it
//! simulates, the full [`SimTelemetry`] (occupancy series, preemption and
//! drop counts, latency) plus a [`TheoryReport`] comparing the measured
//! queue behaviour against what the paper's queueing model predicts:
//!
//! - **Mean occupancy.** Every delaying node is an M/G/∞ server under
//!   unlimited buffers, so by Little's law its time-weighted mean
//!   occupancy is `ρ = λ/μ` regardless of the arrival process. With a
//!   `k`-slot buffer the M/M/k/k mean `ρ·(1 − B(ρ, k))` is used instead.
//! - **Occupancy distribution.** For Poisson arrivals, exponential
//!   delays, and unlimited buffers the stationary occupancy is exactly
//!   Poisson(ρ) (§4 of the paper); the check is an L1 distance on PMFs.
//! - **Loss / preemption fraction.** A `k`-slot DropTail buffer under
//!   Poisson arrivals drops the Erlang-B fraction `B(ρ, k)`. RCAD with a
//!   *random* victim follows the same occupancy chain (a preemption is
//!   an arrival paired with a forced departure of a uniformly chosen
//!   packet, which leaves the remaining residuals i.i.d. exponential by
//!   memorylessness), so its preemption fraction obeys the same formula.
//!   RCAD's other victim policies bias which residual leaves — e.g.
//!   ShortestRemaining evicts the packet that would have departed
//!   soonest, leaving the *larger* order statistics behind — so their
//!   occupancy chains have no Erlang closed form and get no finite-buffer
//!   checks (measured preemption runs well above `B(ρ, k)`).
//!
//! Collection is strictly opt-in: when the [`Runtime`] has no
//! [`TelemetrySink`], the collector runs plain [`NetworkSimulation::run`]
//! and the simulation output is byte-identical to an uninstrumented run.

use serde::{Deserialize, Serialize};
use tempriv_net::ids::{FlowId, NodeId};
use tempriv_net::traffic::TrafficModel;
use tempriv_queueing::erlang::erlang_b;
use tempriv_runtime::{Runtime, TelemetrySink};
use tempriv_sim::profile::PhaseTimer;
use tempriv_telemetry::{
    memprof, BtqParams, DigestProbe, FlightLog, FlightRecorder, FlowAoi, FlowPrivacyConfig,
    MemBreakdown, MemScopeTimer, MemSnapshot, MetricsRegistry, PhaseBreakdown, PhaseProfiler,
    PrivacyProbe, PrivacySeries, RecordingProbe, RunDigest, SimProbe, SimTelemetry, SpanRecord,
    SpanSet, TelemetrySnapshot, TheoryCheck, TheoryReport, TheoryTolerance, TraceCtx,
};

use crate::buffer::BufferPolicy;
use crate::delay::DelayStrategy;
use crate::metrics::SimOutcome;
use crate::sim_driver::{NetworkSimulation, Workload};

/// The expected steady-state load at one node, derived from the
/// simulation's configuration (not from its output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLoadModel {
    /// Aggregate packet arrival rate `λ` at the node (flows through it ×
    /// per-source rate).
    pub lambda: f64,
    /// Service rate `μ = 1 / mean delay`.
    pub mu: f64,
    /// Offered load `ρ = λ/μ`.
    pub rho: f64,
    /// Arrivals are Poisson (source traffic model is Poisson).
    pub poisson_arrivals: bool,
    /// Holding times are exponential (delay strategy is exponential).
    pub exponential_delay: bool,
}

/// Per-node expected loads for `sim`, indexed by node. `None` for nodes
/// the model cannot predict: the sink, pass-through (no-delay) nodes,
/// nodes no flow crosses, threshold-mix nodes (which ignore the delay
/// plan), and any run driven by explicit schedules instead of a traffic
/// model.
#[must_use]
pub fn expected_loads(sim: &NetworkSimulation) -> Vec<Option<NodeLoadModel>> {
    let n = sim.routing().len();
    let mut loads = vec![None; n];
    let Workload::Model(model) = sim.workload() else {
        return loads;
    };
    if matches!(sim.buffer_policy(), BufferPolicy::ThresholdMix { .. }) {
        return loads;
    }
    let rate = model.mean_rate();
    if rate <= 0.0 {
        return loads;
    }
    // Flows through each node: every source's path, sink excluded (the
    // sink consumes packets and never delays them).
    let mut flows_through = vec![0u32; n];
    for &src in sim.sources() {
        let mut path = sim.routing().path(src);
        path.pop();
        for hop in path {
            flows_through[hop.index()] += 1;
        }
    }
    let poisson_arrivals = matches!(model, TrafficModel::Poisson { .. });
    for (i, load) in loads.iter_mut().enumerate() {
        let flows = flows_through[i];
        if flows == 0 {
            continue;
        }
        #[allow(clippy::cast_possible_truncation)]
        let strategy = sim.delay_plan().for_node(NodeId(i as u32));
        if strategy.is_none() {
            continue;
        }
        let mean = strategy.mean();
        if mean <= 0.0 {
            continue;
        }
        let lambda = f64::from(flows) * rate;
        let mu = 1.0 / mean;
        *load = Some(NodeLoadModel {
            lambda,
            mu,
            rho: lambda / mu,
            poisson_arrivals,
            exponential_delay: matches!(strategy, DelayStrategy::Exponential { .. }),
        });
    }
    loads
}

/// Builds the theory cross-check report for one instrumented run:
/// measured telemetry versus the per-node [`expected_loads`] of `sim`.
///
/// Checks are only emitted where the model applies (see the module docs
/// for the exact conditions); a run with no predictable nodes yields an
/// empty — vacuously passing — report.
#[must_use]
pub fn theory_report(
    sim: &NetworkSimulation,
    telemetry: &SimTelemetry,
    tol: &TheoryTolerance,
) -> TheoryReport {
    let mut report = TheoryReport::new();
    // Which station model the buffer policy admits: `None` boxes the
    // infinite-server model, `Some((k, event))` the Erlang M/M/k/k loss
    // model. Policies with no closed form (RCAD with a biased victim)
    // get no node checks at all.
    let finite: Option<Option<(usize, &str)>> = match sim.buffer_policy() {
        BufferPolicy::Unlimited => Some(None),
        BufferPolicy::DropTail { capacity } => Some(Some((capacity, "drop"))),
        BufferPolicy::Rcad {
            capacity,
            victim: crate::buffer::VictimPolicy::Random,
        } => Some(Some((capacity, "preemption"))),
        BufferPolicy::Rcad { .. } | BufferPolicy::ThresholdMix { .. } => None,
    };
    let Some(finite) = finite else {
        return report;
    };
    for (i, load) in expected_loads(sim).iter().enumerate() {
        let Some(load) = load else { continue };
        let Some(node) = telemetry.nodes.get(i) else {
            continue;
        };
        // A node the model expects traffic at but that saw none: the run
        // was too short to measure anything meaningful there.
        if node.arrivals == 0 {
            continue;
        }
        match finite {
            None => {
                // Infinite-server station: Little's law gives mean
                // occupancy ρ = λ/μ for *any* arrival process.
                report.push(TheoryCheck::mean_occupancy(
                    format!("node{i}_mean_occupancy"),
                    load.rho,
                    node.mean_occupancy,
                    tol,
                ));
                // The full Poisson(ρ) occupancy distribution needs the
                // M/M/∞ assumptions.
                if load.poisson_arrivals && load.exponential_delay {
                    report.push(TheoryCheck::poisson_occupancy_pmf(
                        format!("node{i}_occupancy_pmf"),
                        load.rho,
                        &node.occupancy_pmf,
                        tol,
                    ));
                }
            }
            // Erlang's loss model needs Poisson arrivals; a finite
            // buffer under other traffic has no closed form here.
            Some((capacity, event)) if load.poisson_arrivals => {
                #[allow(clippy::cast_possible_truncation)]
                let k = capacity as u32;
                report.push(TheoryCheck::mean_occupancy(
                    format!("node{i}_mean_occupancy"),
                    load.rho * (1.0 - erlang_b(load.rho, k)),
                    node.mean_occupancy,
                    tol,
                ));
                let measured = if event == "drop" {
                    node.drop_fraction()
                } else {
                    node.preemption_fraction()
                };
                report.push(TheoryCheck::erlang_loss(
                    format!("node{i}_{event}_fraction"),
                    load.rho,
                    k,
                    measured,
                    tol,
                ));
            }
            Some(_) => {}
        }
    }
    report
}

/// Exp(μ) cross-checks of the empirical per-hop residence distribution
/// (reconstructed from a flight recording) against the delay plan — the
/// §4 tandem-network assumption made testable.
///
/// Checks are only emitted where the recorded residences *are* the
/// sampled delays: under `Unlimited` and `DropTail` buffers every
/// enqueued packet sits for exactly its sampled delay, so a node with an
/// exponential strategy must show Exp(μ) residences. RCAD eviction
/// biases which sampled delays survive (ShortestRemaining removes the
/// small order statistics), and threshold mixes ignore the delay plan,
/// so neither gets a check. Nodes with fewer than 200 completed
/// residences are skipped: the expected sampling L1 alone (~2/√n over
/// these bins) would swamp the tolerance.
#[must_use]
pub fn residence_checks(
    sim: &NetworkSimulation,
    log: &FlightLog,
    tol: &TheoryTolerance,
) -> Vec<TheoryCheck> {
    const MIN_SAMPLES: usize = 200;
    let mut checks = Vec::new();
    if !matches!(
        sim.buffer_policy(),
        BufferPolicy::Unlimited | BufferPolicy::DropTail { .. }
    ) {
        return checks;
    }
    for (node, samples) in log.residence_by_node() {
        if samples.len() < MIN_SAMPLES {
            continue;
        }
        #[allow(clippy::cast_possible_truncation)]
        let strategy = sim.delay_plan().for_node(NodeId(node as u32));
        let DelayStrategy::Exponential { mean } = strategy else {
            continue;
        };
        checks.push(TheoryCheck::exponential_residence(
            format!("node{node}_residence_exp"),
            mean,
            &samples,
            tol,
        ));
    }
    checks
}

/// Builds the streaming privacy probe matching `sim`'s configuration,
/// with the default histogram resolution. `interval` is the number of
/// deliveries between journaled snapshots. See
/// [`privacy_flow_configs`] for how the per-flow envelopes are derived.
#[must_use]
pub fn privacy_probe_for(sim: &NetworkSimulation, interval: u64) -> PrivacyProbe {
    PrivacyProbe::new(privacy_flow_configs(sim), interval)
}

/// Per-flow privacy configuration matching `sim`: one
/// [`FlowPrivacyConfig`] per flow, with the baseline adversary's
/// constant offset `h·τ + E[path delay]` taken from
/// [`NetworkSimulation::adversary_knowledge`] and the eq. 4 envelope
/// parameters `(μ, λ)` filled in when the workload advertises a rate and
/// the delay plan a positive mean (trace-driven schedules get MI-only
/// tracking).
#[must_use]
pub fn privacy_flow_configs(sim: &NetworkSimulation) -> Vec<FlowPrivacyConfig> {
    let knowledge = sim.adversary_knowledge();
    let lambda = match sim.workload() {
        Workload::Model(model) if model.mean_rate() > 0.0 => Some(model.mean_rate()),
        Workload::Model(_) | Workload::Schedules(_) => None,
    };
    (0..knowledge.num_flows())
        .map(|flow| {
            #[allow(clippy::cast_possible_truncation)]
            let flow_id = FlowId(flow as u32);
            let hops = f64::from(knowledge.hops(flow_id));
            let path_mean = knowledge.path_delay_mean(flow_id);
            let btq = match (lambda, path_mean > 0.0 && hops > 0.0) {
                // The adversary's advertised per-hop mean delay: the
                // path average, exactly what its estimator uses.
                (Some(lambda), true) => Some(BtqParams {
                    mu: hops / path_mean,
                    lambda,
                }),
                _ => None,
            };
            FlowPrivacyConfig {
                adversary_offset: hops * knowledge.tau + path_mean,
                btq,
            }
        })
        .collect()
}

/// One instrumented scenario within a job (a sweep point may simulate
/// several — e.g. Figure 2 runs no-delay, unlimited, and RCAD per point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTelemetry {
    /// Scenario label within the job (e.g. `"rcad"`).
    pub label: String,
    /// The recorded simulation telemetry.
    pub sim: SimTelemetry,
    /// Queueing-theory cross-checks for this scenario.
    pub theory: TheoryReport,
    /// Per-flow Age-of-Information summary, derived from the flight
    /// recording's creation→arrival spans. Empty when flight recording
    /// was off (and in blobs written before AoI existed).
    #[serde(default)]
    pub aoi: Vec<FlowAoi>,
}

/// Everything one job attaches to its manifest record when telemetry is
/// on: per-scenario telemetry plus wall-time spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobTelemetry {
    /// One entry per simulated scenario, in execution order.
    pub scenarios: Vec<ScenarioTelemetry>,
    /// Wall-clock time per scenario (profiling metadata; excluded from
    /// all deterministic outputs).
    pub spans: SpanSet,
}

impl JobTelemetry {
    /// Total theory checks across all scenarios.
    #[must_use]
    pub fn theory_checks(&self) -> usize {
        self.scenarios.iter().map(|s| s.theory.checks.len()).sum()
    }

    /// Theory checks that exceeded their tolerance.
    #[must_use]
    pub fn theory_flagged(&self) -> usize {
        self.scenarios
            .iter()
            .flat_map(|s| &s.theory.checks)
            .filter(|c| !c.passed)
            .count()
    }
}

/// One traced scenario within a job: the label plus its frozen flight
/// recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTrace {
    /// Scenario label within the job (matches the telemetry label).
    pub label: String,
    /// The frozen flight recording.
    pub log: FlightLog,
}

/// Everything one job attaches as its manifest *trace* blob when flight
/// recording is on: one [`FlightLog`] per simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobTrace {
    /// One entry per traced scenario, in execution order.
    pub scenarios: Vec<ScenarioTrace>,
}

/// One scenario's streaming privacy series within a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPrivacy {
    /// Scenario label within the job (matches the telemetry label).
    pub label: String,
    /// The frozen privacy convergence series.
    pub series: PrivacySeries,
}

/// Everything one job attaches as its manifest *privacy* blob when the
/// streaming privacy observatory is on: one [`PrivacySeries`] per
/// simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobPrivacy {
    /// One entry per observed scenario, in execution order.
    pub scenarios: Vec<ScenarioPrivacy>,
}

/// One scenario's engine phase breakdown within a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioProfile {
    /// Scenario label within the job (matches the telemetry label).
    pub label: String,
    /// Wall-time attribution across the engine's kernel phases.
    pub profile: PhaseBreakdown,
}

/// Everything one job attaches as its manifest *spans* blob when
/// cross-layer span tracing is on: wall-clock spans carrying the
/// request's trace id down to each simulated scenario, plus one engine
/// phase breakdown per scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobSpans {
    /// The job span followed by one span per scenario, all sharing the
    /// run's trace id. Timestamps are microseconds since the owning
    /// sink's epoch.
    pub spans: Vec<SpanRecord>,
    /// One phase breakdown per profiled scenario, in execution order.
    pub profiles: Vec<ScenarioProfile>,
}

/// One scenario's determinism-audit digest within a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioAudit {
    /// Scenario label within the job (matches the telemetry label).
    pub label: String,
    /// The windowed checkpoint digests and run root for this scenario.
    pub digest: RunDigest,
}

/// Everything one job attaches as its manifest *audit* blob when the
/// determinism audit is on: one [`RunDigest`] per simulated scenario
/// plus a job-level root folding the scenario roots together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobAudit {
    /// One entry per audited scenario, in execution order.
    pub scenarios: Vec<ScenarioAudit>,
    /// Digest over every `label:root` pair in order — one line to
    /// compare when asking "did this job replay identically?".
    pub root: String,
}

impl JobAudit {
    /// The job root implied by the current scenario list: the content
    /// digest of each scenario's `label:root` line, in order.
    #[must_use]
    pub fn compute_root(&self) -> String {
        let mut lines = String::new();
        for scenario in &self.scenarios {
            lines.push_str(&scenario.label);
            lines.push(':');
            lines.push_str(&scenario.digest.root);
            lines.push('\n');
        }
        tempriv_telemetry::audit::digest::content_digest(lines.as_bytes())
    }
}

/// One scenario's allocation ledger within a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMem {
    /// Scenario label within the job (matches the telemetry label).
    pub label: String,
    /// Per-slot allocation attribution for this scenario's run window
    /// (kernel phases plus the pipeline layers).
    pub ledger: MemBreakdown,
    /// Heap allocations made on the driver thread during the run.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Packets the scenario delivered (the ratio's denominator).
    pub delivered: u64,
    /// Allocations per delivered packet (0 when nothing was delivered)
    /// — the figure the zero-alloc data-plane work drives to zero.
    pub allocs_per_delivered: f64,
}

/// Everything one job attaches as its manifest *mem* blob when memory
/// profiling is on: one [`ScenarioMem`] per simulated scenario plus
/// process-wide allocator gauges sampled when the job finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobMem {
    /// One entry per profiled scenario, in execution order.
    pub scenarios: Vec<ScenarioMem>,
    /// Process-wide allocator counters when the job finished (shared
    /// across workers; per-scenario numbers above are thread-exact).
    #[serde(default)]
    pub process: Option<MemSnapshot>,
    /// Peak resident set size in bytes (`/proc/self/status` `VmHWM`),
    /// `None` off-Linux.
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
}

/// Runs `sim` with `base` (plus whichever optional probe halves are
/// active), keeping probe composition monomorphized without enumerating
/// every on/off combination at the call site: the caller picks the base
/// probe type (metrics alone, or metrics paired with a digest probe) and
/// this helper handles the remaining three optional halves.
fn run_with_base<P: SimProbe, T: PhaseTimer>(
    sim: &NetworkSimulation,
    base: &mut P,
    flight: Option<&mut FlightRecorder>,
    privacy: Option<&mut PrivacyProbe>,
    timer: Option<&mut T>,
) -> SimOutcome {
    match (flight, privacy, timer) {
        (Some(f), Some(p), Some(t)) => sim.run_profiled(&mut ((base, f), p), t),
        (Some(f), None, Some(t)) => sim.run_profiled(&mut (base, f), t),
        (None, Some(p), Some(t)) => sim.run_profiled(&mut (base, p), t),
        (None, None, Some(t)) => sim.run_profiled(base, t),
        (Some(f), Some(p), None) => sim.run_probed(&mut ((base, f), p)),
        (Some(f), None, None) => sim.run_probed(&mut (base, f)),
        (None, Some(p), None) => sim.run_probed(&mut (base, p)),
        (None, None, None) => sim.run_probed(base),
    }
}

/// Runs a job's simulations, recording telemetry when the runtime has a
/// [`TelemetrySink`] and running the plain, probe-free path otherwise.
///
/// Construct one per job with [`JobTelemetryCollector::for_job`], route
/// every `sim.run()` through [`JobTelemetryCollector::run`], and call
/// [`JobTelemetryCollector::finish`] before returning the row. When the
/// sink is absent this is a zero-cost pass-through: the simulation runs
/// with [`NullProbe`](tempriv_telemetry::NullProbe) exactly as an
/// uninstrumented build would.
#[derive(Debug)]
pub struct JobTelemetryCollector<'a> {
    sink: Option<(&'a TelemetrySink, usize)>,
    trace_capacity: usize,
    privacy_interval: usize,
    span_batch: usize,
    digest_window: usize,
    mem_profile: bool,
    epoch: std::time::Instant,
    job_ctx: TraceCtx,
    /// Parent span id for the job span: the serve/CLI root span when the
    /// sink carries one, 0 (trace root) otherwise.
    job_parent: u64,
    job_started: std::time::Instant,
    tolerance: TheoryTolerance,
    sim_shards: u32,
    job: JobTelemetry,
    trace: JobTrace,
    privacy: JobPrivacy,
    spans: JobSpans,
    audit: JobAudit,
    mem: JobMem,
}

impl<'a> JobTelemetryCollector<'a> {
    /// A collector for job `index` of a run on `runtime`. Collection is
    /// active only when the runtime carries a telemetry sink; flight
    /// recording additionally requires the sink's
    /// [`trace_capacity`](TelemetrySink::trace_capacity) to be non-zero,
    /// and the streaming privacy observatory its
    /// [`privacy_interval`](TelemetrySink::privacy_interval).
    #[must_use]
    pub fn for_job(runtime: &'a Runtime, index: usize) -> Self {
        let sink = runtime.telemetry_sink();
        // The job's trace context is a deterministic child of the run's
        // root context: the serve layer mints a root per HTTP request and
        // plants it on the sink; standalone runs fall back to a fixed
        // root so exported traces still carry consistent ids.
        let root = sink.and_then(TelemetrySink::root_ctx).map_or_else(
            || TraceCtx::root(0, "run"),
            |(trace_id, span_id)| TraceCtx { trace_id, span_id },
        );
        let job_parent = sink
            .and_then(TelemetrySink::root_ctx)
            .map_or(0, |(_, span_id)| span_id);
        JobTelemetryCollector {
            sink: sink.map(|sink| (sink, index)),
            trace_capacity: sink.map_or(0, TelemetrySink::trace_capacity),
            privacy_interval: sink.map_or(0, TelemetrySink::privacy_interval),
            span_batch: sink.map_or(0, TelemetrySink::span_batch),
            digest_window: sink.map_or(0, TelemetrySink::digest_window),
            mem_profile: sink.is_some_and(TelemetrySink::mem_profile),
            epoch: sink.map_or_else(std::time::Instant::now, TelemetrySink::epoch),
            job_ctx: root.child(index as u64),
            job_parent,
            job_started: std::time::Instant::now(),
            tolerance: TheoryTolerance::default(),
            sim_shards: runtime.sim_shards(),
            job: JobTelemetry::default(),
            trace: JobTrace::default(),
            privacy: JobPrivacy::default(),
            spans: JobSpans::default(),
            audit: JobAudit::default(),
            mem: JobMem::default(),
        }
    }

    /// Whether telemetry is being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Runs `sim`, probed iff collection is active. The returned
    /// [`SimOutcome`] is identical either way: probes observe the event
    /// loop, they never consume randomness or reorder events.
    pub fn run(&mut self, sim: &NetworkSimulation, label: &str) -> SimOutcome {
        if self.sink.is_none() {
            // The sharded engine supports only probe-free runs (per-event
            // probes observe the serial event order), so the runtime's
            // shard knob applies exactly when no telemetry is collected.
            if self.sim_shards > 1 {
                return sim.run_sharded(self.sim_shards, 1);
            }
            return sim.run();
        }
        let started = std::time::Instant::now();
        let mut probe = RecordingProbe::new(sim.routing().len());
        // Optional probe halves compose through the pair probe, which
        // fans every hook out to both sides in one monomorphized pass.
        let mut flight =
            (self.trace_capacity > 0).then(|| FlightRecorder::with_capacity(self.trace_capacity));
        let mut privacy = (self.privacy_interval > 0)
            .then(|| privacy_probe_for(sim, self.privacy_interval as u64));
        let mut profiler = (self.span_batch > 0)
            .then(|| PhaseProfiler::with_batch(u32::try_from(self.span_batch).unwrap_or(u32::MAX)));
        let mut digest = (self.digest_window > 0).then(|| DigestProbe::new(self.digest_window));
        // The allocation-scope timer rides the same phase-switch hooks
        // as the profiler; it must be constructed *after* the probes so
        // their setup allocations stay outside its baseline.
        let mut mem_timer = self.mem_profile.then(|| {
            memprof::set_enabled(true);
            MemScopeTimer::new()
        });
        // Optional instrumentation composes through monomorphized pair
        // probes and a statically dispatched timer, so every disabled
        // half costs nothing on the event path. The digest probe picks
        // the *base* probe type, the profiler and mem timer pair up as
        // the timer, and the other halves stay a single match.
        let outcome = match (digest.as_mut(), profiler.as_mut(), mem_timer.as_mut()) {
            (Some(d), Some(p), Some(m)) => {
                let mut timer = (p, m);
                run_with_base(
                    sim,
                    &mut (&mut probe, d),
                    flight.as_mut(),
                    privacy.as_mut(),
                    Some(&mut timer),
                )
            }
            (Some(d), Some(p), None) => run_with_base(
                sim,
                &mut (&mut probe, d),
                flight.as_mut(),
                privacy.as_mut(),
                Some(p),
            ),
            (Some(d), None, Some(m)) => run_with_base(
                sim,
                &mut (&mut probe, d),
                flight.as_mut(),
                privacy.as_mut(),
                Some(m),
            ),
            (Some(d), None, None) => run_with_base::<_, PhaseProfiler>(
                sim,
                &mut (&mut probe, d),
                flight.as_mut(),
                privacy.as_mut(),
                None,
            ),
            (None, Some(p), Some(m)) => {
                let mut timer = (p, m);
                run_with_base(
                    sim,
                    &mut probe,
                    flight.as_mut(),
                    privacy.as_mut(),
                    Some(&mut timer),
                )
            }
            (None, Some(p), None) => {
                run_with_base(sim, &mut probe, flight.as_mut(), privacy.as_mut(), Some(p))
            }
            (None, None, Some(m)) => {
                run_with_base(sim, &mut probe, flight.as_mut(), privacy.as_mut(), Some(m))
            }
            (None, None, None) => run_with_base::<_, PhaseProfiler>(
                sim,
                &mut probe,
                flight.as_mut(),
                privacy.as_mut(),
                None,
            ),
        };
        let flight_log = flight.map(|f| f.finish(outcome.end_time));
        let privacy_series = privacy.map(|p| p.finish(outcome.end_time));
        let telemetry = probe.finish(outcome.end_time);
        let mut theory = theory_report(sim, &telemetry, &self.tolerance);
        if let Some(log) = &flight_log {
            for check in residence_checks(sim, log, &self.tolerance) {
                theory.push(check);
            }
        }
        self.job
            .spans
            .record(label, started.elapsed().as_secs_f64());
        if let Some(profiler) = profiler {
            // Scenario children hang off the job span; index 0 is
            // reserved for the job itself, so scenarios start at 1.
            let scenario_ctx = self.job_ctx.child(self.spans.profiles.len() as u64 + 1);
            #[allow(clippy::cast_possible_truncation)]
            let start_us = started.saturating_duration_since(self.epoch).as_micros() as u64;
            #[allow(clippy::cast_possible_truncation)]
            let dur_us = started.elapsed().as_micros() as u64;
            self.spans.spans.push(SpanRecord {
                trace_id: scenario_ctx.trace_id,
                span_id: scenario_ctx.span_id,
                parent_id: self.job_ctx.span_id,
                name: label.to_string(),
                layer: "scenario".to_string(),
                start_us,
                dur_us,
            });
            self.spans.profiles.push(ScenarioProfile {
                label: label.to_string(),
                profile: profiler.finish(),
            });
        }
        let aoi = flight_log
            .as_ref()
            .map(FlightLog::aoi_by_flow)
            .unwrap_or_default();
        self.job.scenarios.push(ScenarioTelemetry {
            label: label.to_string(),
            sim: telemetry,
            theory,
            aoi,
        });
        if let Some(log) = flight_log {
            self.trace.scenarios.push(ScenarioTrace {
                label: label.to_string(),
                log,
            });
        }
        if let Some(series) = privacy_series {
            self.privacy.scenarios.push(ScenarioPrivacy {
                label: label.to_string(),
                series,
            });
        }
        if let Some(digest) = digest {
            self.audit.scenarios.push(ScenarioAudit {
                label: label.to_string(),
                digest: digest.finish(),
            });
        }
        if let Some(timer) = mem_timer {
            let delivered = outcome.total_delivered();
            self.mem.scenarios.push(ScenarioMem {
                label: label.to_string(),
                ledger: timer.finish(),
                allocs: outcome.allocs,
                alloc_bytes: outcome.alloc_bytes,
                delivered,
                // Stored as 0.0 (not inf) when nothing was delivered so
                // the blob stays JSON-serializable.
                allocs_per_delivered: if delivered > 0 {
                    #[allow(clippy::cast_precision_loss)]
                    {
                        outcome.allocs as f64 / delivered as f64
                    }
                } else {
                    0.0
                },
            });
        }
        outcome
    }

    /// Serializes the collected telemetry (and, when flight recording or
    /// the privacy observatory was on, those blobs too) and attaches them
    /// to the job's sink slots. No-op when collection is inactive.
    pub fn finish(mut self) {
        if let Some((sink, index)) = self.sink {
            let json = serde_json::to_string(&self.job).expect("job telemetry serializes");
            sink.attach(index, json);
            if !self.trace.scenarios.is_empty() {
                let json = serde_json::to_string(&self.trace).expect("job trace serializes");
                sink.attach_trace(index, json);
            }
            if !self.privacy.scenarios.is_empty() {
                let json = serde_json::to_string(&self.privacy).expect("job privacy serializes");
                sink.attach_privacy(index, json);
            }
            if !self.audit.scenarios.is_empty() {
                self.audit.root = self.audit.compute_root();
                let json = serde_json::to_string(&self.audit).expect("job audit serializes");
                sink.attach_audit(index, json);
            }
            if !self.mem.scenarios.is_empty() {
                self.mem.process = Some(memprof::snapshot());
                self.mem.peak_rss_bytes = memprof::peak_rss_bytes();
                let json = serde_json::to_string(&self.mem).expect("job mem serializes");
                sink.attach_mem(index, json);
            }
            if self.span_batch > 0 {
                #[allow(clippy::cast_possible_truncation)]
                let start_us = self
                    .job_started
                    .saturating_duration_since(self.epoch)
                    .as_micros() as u64;
                #[allow(clippy::cast_possible_truncation)]
                let dur_us = self.job_started.elapsed().as_micros() as u64;
                // The job span leads the blob so readers see parents
                // before children.
                self.spans.spans.insert(
                    0,
                    SpanRecord {
                        trace_id: self.job_ctx.trace_id,
                        span_id: self.job_ctx.span_id,
                        parent_id: self.job_parent,
                        name: format!("job {index}"),
                        layer: "job".to_string(),
                        start_us,
                        dur_us,
                    },
                );
                let json = serde_json::to_string(&self.spans).expect("job spans serialize");
                sink.attach_spans(index, json);
            }
        }
    }
}

/// Sweep-level telemetry: every job's [`JobTelemetry`] plus aggregate
/// counters, per-node gauges, and the flagged theory checks — what
/// `tempriv sweep --telemetry` writes and `tempriv report` renders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryExport {
    /// Experiment kind the telemetry came from (e.g. `"fig2"`).
    pub experiment: String,
    /// Jobs in the run.
    pub jobs: usize,
    /// Jobs that attached telemetry (cache-served jobs attach none).
    pub instrumented_jobs: usize,
    /// Scenarios recorded across all instrumented jobs.
    pub scenarios: usize,
    /// Theory checks evaluated across all scenarios.
    pub theory_checks: usize,
    /// Theory checks that exceeded tolerance.
    pub theory_flagged: usize,
    /// The failing checks themselves, in job order.
    pub flagged: Vec<TheoryCheck>,
    /// Aggregated metrics registry snapshot (canonical JSON +
    /// Prometheus-exportable).
    pub metrics: TelemetrySnapshot,
    /// Raw per-job telemetry, indexed by job (None = not instrumented).
    pub job_telemetry: Vec<Option<JobTelemetry>>,
    /// Raw per-job streaming-privacy series, indexed by job (None = the
    /// job ran without the privacy observatory). Absent in exports
    /// written before the observatory existed.
    #[serde(default)]
    pub job_privacy: Vec<Option<JobPrivacy>>,
    /// Raw per-job memory ledgers, indexed by job (None = the job ran
    /// without the allocation observatory). Absent in exports written
    /// before memory profiling existed.
    #[serde(default)]
    pub job_mem: Vec<Option<JobMem>>,
}

impl TelemetryExport {
    /// Aggregates per-job telemetry blobs (as journaled in a manifest or
    /// drained from a [`TelemetrySink`]) into one export.
    /// `privacy_blobs` carries the parallel privacy-series blobs and
    /// `mem_blobs` the parallel allocation-ledger blobs; pass `&[]` for
    /// either when the run had no such observatory.
    ///
    /// # Errors
    ///
    /// Returns a message naming the job whose blob fails to parse.
    pub fn collect(
        experiment: &str,
        blobs: &[Option<String>],
        privacy_blobs: &[Option<String>],
        mem_blobs: &[Option<String>],
    ) -> Result<Self, String> {
        let mut job_telemetry: Vec<Option<JobTelemetry>> = Vec::with_capacity(blobs.len());
        for (i, blob) in blobs.iter().enumerate() {
            match blob {
                None => job_telemetry.push(None),
                Some(json) => job_telemetry.push(Some(
                    serde_json::from_str(json)
                        .map_err(|e| format!("job {i}: bad telemetry blob: {e}"))?,
                )),
            }
        }
        let mut job_privacy: Vec<Option<JobPrivacy>> = Vec::with_capacity(blobs.len());
        for i in 0..blobs.len() {
            match privacy_blobs.get(i).and_then(Option::as_ref) {
                None => job_privacy.push(None),
                Some(json) => job_privacy.push(Some(
                    serde_json::from_str(json)
                        .map_err(|e| format!("job {i}: bad privacy blob: {e}"))?,
                )),
            }
        }

        let mut job_mem: Vec<Option<JobMem>> = Vec::with_capacity(blobs.len());
        for i in 0..blobs.len() {
            match mem_blobs.get(i).and_then(Option::as_ref) {
                None => job_mem.push(None),
                Some(json) => job_mem.push(Some(
                    serde_json::from_str(json)
                        .map_err(|e| format!("job {i}: bad mem blob: {e}"))?,
                )),
            }
        }

        let mut registry = MetricsRegistry::new();
        let deliveries = registry.counter(
            "tempriv_deliveries_total",
            "Packets delivered to the sink across instrumented scenarios",
        );
        let preemptions = registry.counter(
            "tempriv_preemptions_total",
            "RCAD victim preemptions across instrumented scenarios",
        );
        let drops = registry.counter(
            "tempriv_drops_total",
            "DropTail rejections across instrumented scenarios",
        );
        let flushes = registry.counter(
            "tempriv_flushes_total",
            "Threshold-mix batch flushes across instrumented scenarios",
        );
        let evicted = registry.counter(
            "tempriv_trace_evicted_total",
            "Probe trace records evicted by the bounded ring buffer",
        );
        let checks_total = registry.counter(
            "tempriv_theory_checks_total",
            "Queueing-theory cross-checks evaluated",
        );
        let flagged_total = registry.counter(
            "tempriv_theory_flagged_total",
            "Queueing-theory cross-checks outside tolerance",
        );
        let engine_events = registry.counter(
            "tempriv_engine_events_total",
            "Discrete events executed by the simulation engine across instrumented scenarios",
        );
        let queue_compactions = registry.counter(
            "tempriv_engine_queue_compactions_total",
            "Tombstone compaction sweeps run by the future-event queue across instrumented scenarios",
        );
        let latency_hist = registry.histogram(
            "tempriv_scenario_mean_latency",
            "Mean end-to-end delivery latency per instrumented scenario (time units)",
            0.0,
            1000.0,
            20,
        );

        // Per-node aggregates across every instrumented scenario: the
        // occupancy gauge averages scenario means, peak and high-water
        // take the max.
        let n_nodes = job_telemetry
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .map(|s| s.sim.nodes.len())
            .max()
            .unwrap_or(0);
        let mut occ_sum = vec![0.0f64; n_nodes];
        let mut occ_count = vec![0u64; n_nodes];
        let mut peak = vec![0u64; n_nodes];
        let mut high_water = vec![0u64; n_nodes];

        let mut instrumented_jobs = 0;
        let mut scenarios = 0;
        let mut theory_checks = 0;
        let mut theory_flagged = 0;
        let mut flagged = Vec::new();
        let mut engine_events_total = 0u64;
        let mut engine_wall_secs = 0.0f64;
        let mut peak_fes = 0u64;
        let mut queue_footprint = 0u64;
        for job in job_telemetry.iter().flatten() {
            instrumented_jobs += 1;
            scenarios += job.scenarios.len();
            theory_checks += job.theory_checks();
            theory_flagged += job.theory_flagged();
            engine_wall_secs += job.spans.total_seconds();
            for scenario in &job.scenarios {
                registry.inc(deliveries, scenario.sim.deliveries);
                registry.inc(preemptions, scenario.sim.total_preemptions());
                registry.inc(drops, scenario.sim.total_drops());
                registry.inc(flushes, scenario.sim.total_flushes());
                registry.inc(evicted, scenario.sim.trace_evicted);
                registry.inc(engine_events, scenario.sim.engine_events);
                registry.inc(queue_compactions, scenario.sim.queue_compactions);
                engine_events_total += scenario.sim.engine_events;
                peak_fes = peak_fes.max(scenario.sim.peak_fes);
                queue_footprint = queue_footprint.max(scenario.sim.queue_footprint);
                if scenario.sim.deliveries > 0 {
                    registry.observe(latency_hist, scenario.sim.mean_latency);
                }
                for node in &scenario.sim.nodes {
                    let i = node.node;
                    occ_sum[i] += node.mean_occupancy;
                    occ_count[i] += 1;
                    peak[i] = peak[i].max(node.peak_occupancy);
                    high_water[i] = high_water[i].max(node.high_water);
                }
                flagged.extend(scenario.theory.checks.iter().filter(|c| !c.passed).cloned());
            }
        }
        registry.inc(checks_total, theory_checks as u64);
        registry.inc(flagged_total, theory_flagged as u64);

        // Engine throughput gauges: events/sec over the jobs' recorded
        // wall-time spans, peak future-event-set size as a high-water
        // mark. Pre-overhaul blobs default both fields to zero and get
        // no gauges, so old manifests render unchanged.
        if engine_events_total > 0 {
            if engine_wall_secs > 0.0 {
                let g = registry.gauge(
                    "tempriv_engine_events_per_sec",
                    "Engine event throughput: events executed over recorded scenario wall time",
                );
                #[allow(clippy::cast_precision_loss)]
                registry.set(g, engine_events_total as f64 / engine_wall_secs);
            }
            let g = registry.gauge(
                "tempriv_engine_peak_fes",
                "Peak future-event-set size across instrumented scenarios",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, peak_fes as f64);
        }
        // Queue-memory introspection: pre-audit blobs default the
        // footprint to zero and get no gauge, so old manifests render
        // unchanged.
        if queue_footprint > 0 {
            let g = registry.gauge(
                "tempriv_engine_queue_footprint_bytes",
                "Event-queue heap footprint in bytes, max across instrumented scenarios",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, queue_footprint as f64);
        }
        for i in 0..n_nodes {
            if occ_count[i] == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let mean = occ_sum[i] / occ_count[i] as f64;
            let g = registry.gauge(
                format!("tempriv_node_occupancy_mean{{node=\"{i}\"}}"),
                "Time-weighted mean buffer occupancy, averaged over instrumented scenarios",
            );
            registry.set(g, mean);
            let g = registry.gauge(
                format!("tempriv_node_occupancy_peak{{node=\"{i}\"}}"),
                "Peak instantaneous buffer occupancy across instrumented scenarios",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, peak[i] as f64);
            let g = registry.gauge(
                format!("tempriv_node_high_water{{node=\"{i}\"}}"),
                "Buffer high-water mark across instrumented scenarios",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, high_water[i] as f64);
        }

        // Per-flow privacy aggregates across every observed scenario:
        // the MI / margin / adversary-MSE gauges average scenario-final
        // summaries, mirroring the occupancy-mean convention above.
        let n_flows = job_privacy
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .flat_map(|s| &s.series.summary)
            .map(|f| f.flow + 1)
            .max()
            .unwrap_or(0);
        let mut mi_sum = vec![0.0f64; n_flows];
        let mut mi_count = vec![0u64; n_flows];
        let mut margin_sum = vec![0.0f64; n_flows];
        let mut margin_count = vec![0u64; n_flows];
        let mut mse_sum = vec![0.0f64; n_flows];
        let mut mse_count = vec![0u64; n_flows];
        for flow in job_privacy
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .flat_map(|s| &s.series.summary)
        {
            mi_sum[flow.flow] += flow.mi_nats;
            mi_count[flow.flow] += 1;
            if let Some(margin) = flow.margin_nats {
                margin_sum[flow.flow] += margin;
                margin_count[flow.flow] += 1;
            }
            if let Some(mse) = flow.mse {
                mse_sum[flow.flow] += mse;
                mse_count[flow.flow] += 1;
            }
        }
        for i in 0..n_flows {
            #[allow(clippy::cast_precision_loss)]
            if mi_count[i] > 0 {
                let g = registry.gauge(
                    format!("tempriv_privacy_mi_nats{{flow=\"{i}\"}}"),
                    "Empirical streaming I(X;Z) in nats, averaged over observed scenarios",
                );
                registry.set(g, mi_sum[i] / mi_count[i] as f64);
            }
            #[allow(clippy::cast_precision_loss)]
            if margin_count[i] > 0 {
                let g = registry.gauge(
                    format!("tempriv_privacy_margin_nats{{flow=\"{i}\"}}"),
                    "Analytic BTQ bound minus empirical MI (nats), averaged over observed scenarios",
                );
                registry.set(g, margin_sum[i] / margin_count[i] as f64);
            }
            #[allow(clippy::cast_precision_loss)]
            if mse_count[i] > 0 {
                let g = registry.gauge(
                    format!("tempriv_privacy_adversary_mse{{flow=\"{i}\"}}"),
                    "Baseline adversary mean squared error, averaged over observed scenarios",
                );
                registry.set(g, mse_sum[i] / mse_count[i] as f64);
            }
        }

        // Per-flow Age-of-Information gauges from the flight recorder's
        // creation→arrival spans: mean AoI averages over traced
        // scenarios, peak AoI takes the max (it is a worst case).
        let n_aoi_flows = job_telemetry
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .flat_map(|s| &s.aoi)
            .map(|a| a.flow + 1)
            .max()
            .unwrap_or(0);
        let mut aoi_mean_sum = vec![0.0f64; n_aoi_flows];
        let mut aoi_count = vec![0u64; n_aoi_flows];
        let mut aoi_peak = vec![0.0f64; n_aoi_flows];
        for aoi in job_telemetry
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .flat_map(|s| &s.aoi)
        {
            aoi_mean_sum[aoi.flow] += aoi.mean;
            aoi_count[aoi.flow] += 1;
            aoi_peak[aoi.flow] = aoi_peak[aoi.flow].max(aoi.peak);
        }
        for i in 0..n_aoi_flows {
            if aoi_count[i] == 0 {
                continue;
            }
            let g = registry.gauge(
                format!("tempriv_aoi_mean{{flow=\"{i}\"}}"),
                "Time-averaged Age of Information at the sink (time units), averaged over traced scenarios",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, aoi_mean_sum[i] / aoi_count[i] as f64);
            let g = registry.gauge(
                format!("tempriv_aoi_peak{{flow=\"{i}\"}}"),
                "Peak Age of Information at the sink (time units), max across traced scenarios",
            );
            registry.set(g, aoi_peak[i]);
        }

        // Allocation-observatory aggregates: totals sum over scenario
        // ledgers, the allocs-per-delivered gauge ratios the sums, and
        // the peak gauges take the max (they are worst cases). Runs
        // without memory profiling attach no mem blobs and get none of
        // these, so old manifests render unchanged.
        let mut mem_allocs = 0u64;
        let mut mem_bytes = 0u64;
        let mut mem_delivered = 0u64;
        let mut mem_peak_live = 0u64;
        let mut mem_peak_rss = 0u64;
        for job in job_mem.iter().flatten() {
            for scenario in &job.scenarios {
                mem_allocs += scenario.allocs;
                mem_bytes += scenario.alloc_bytes;
                mem_delivered += scenario.delivered;
            }
            if let Some(process) = &job.process {
                mem_peak_live = mem_peak_live.max(process.peak_live_bytes);
            }
            if let Some(rss) = job.peak_rss_bytes {
                mem_peak_rss = mem_peak_rss.max(rss);
            }
        }
        if mem_allocs > 0 {
            let c = registry.counter(
                "tempriv_allocs_total",
                "Heap allocations inside instrumented simulation runs",
            );
            registry.inc(c, mem_allocs);
            let c = registry.counter(
                "tempriv_alloc_bytes_total",
                "Heap bytes requested inside instrumented simulation runs",
            );
            registry.inc(c, mem_bytes);
            if mem_delivered > 0 {
                let g = registry.gauge(
                    "tempriv_allocs_per_delivered",
                    "Heap allocations per delivered packet across instrumented scenarios",
                );
                #[allow(clippy::cast_precision_loss)]
                registry.set(g, mem_allocs as f64 / mem_delivered as f64);
            }
        }
        if mem_peak_live > 0 {
            let g = registry.gauge(
                "tempriv_mem_peak_live_bytes",
                "Peak live heap bytes observed by the counting allocator",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, mem_peak_live as f64);
        }
        if mem_peak_rss > 0 {
            let g = registry.gauge(
                "tempriv_mem_peak_rss_bytes",
                "Peak resident set size (VmHWM) of the sweep process",
            );
            #[allow(clippy::cast_precision_loss)]
            registry.set(g, mem_peak_rss as f64);
        }

        Ok(TelemetryExport {
            experiment: experiment.to_string(),
            jobs: blobs.len(),
            instrumented_jobs,
            scenarios,
            theory_checks,
            theory_flagged,
            flagged,
            metrics: registry.snapshot(),
            job_telemetry,
            job_privacy,
            job_mem,
        })
    }

    /// Canonical JSON of the export — what `--telemetry PATH` writes.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string(self).expect("telemetry export serializes")
    }

    /// Human-readable summary for the console.
    #[must_use]
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: experiment={} jobs={} instrumented={} scenarios={}\n",
            self.experiment, self.jobs, self.instrumented_jobs, self.scenarios
        ));
        out.push_str(&format!(
            "theory checks: {} evaluated, {} flagged\n",
            self.theory_checks, self.theory_flagged
        ));
        for check in &self.flagged {
            out.push_str(&format!(
                "  FLAGGED {}: predicted {:.4}, measured {:.4}, deviation {:.4} > tol {:.4}\n",
                check.name, check.predicted, check.measured, check.deviation, check.tolerance
            ));
        }
        // Engine introspection counters surface in the text summary too:
        // queue compactions and flight-ring evictions are the "did the
        // engine shed state" signals an operator scans for first.
        for counter in &self.metrics.counters {
            if matches!(
                counter.name.as_str(),
                "tempriv_engine_queue_compactions_total" | "tempriv_trace_evicted_total"
            ) {
                out.push_str(&format!("  {} = {}\n", counter.name, counter.value));
            }
        }
        for gauge in &self.metrics.gauges {
            out.push_str(&format!("  {} = {:.4}\n", gauge.name, gauge.value));
        }
        if let Some(mem) = self.memory_text() {
            out.push_str(&mem);
        }
        out
    }

    /// Memory section of the report: merged phase-attributed allocation
    /// ledger plus the steady-state allocs-per-delivered figure. `None`
    /// when no job carried a mem blob (the common, unprofiled case).
    #[must_use]
    pub fn memory_text(&self) -> Option<String> {
        let scenarios: Vec<&ScenarioMem> = self
            .job_mem
            .iter()
            .flatten()
            .flat_map(|j| &j.scenarios)
            .collect();
        if scenarios.is_empty() {
            return None;
        }
        let mut ledger = MemBreakdown::empty();
        let mut allocs = 0u64;
        let mut delivered = 0u64;
        for s in &scenarios {
            ledger.merge(&s.ledger);
            allocs += s.allocs;
            delivered += s.delivered;
        }
        let mut out = String::new();
        out.push_str(&format!(
            "memory: {} profiled scenario(s), {} alloc(s) in-run\n",
            scenarios.len(),
            allocs
        ));
        if delivered > 0 {
            #[allow(clippy::cast_precision_loss)]
            out.push_str(&format!(
                "  allocs per delivered packet = {:.3}\n",
                allocs as f64 / delivered as f64
            ));
        }
        for line in ledger.table().lines() {
            out.push_str(&format!("  {line}\n"));
        }
        if let Some(job) = self.job_mem.iter().flatten().next() {
            if let Some(process) = &job.process {
                out.push_str(&format!(
                    "  process: live={} peak_live={} allocs={}\n",
                    process.live_bytes, process.peak_live_bytes, process.allocs
                ));
            }
            if let Some(rss) = job.peak_rss_bytes {
                out.push_str(&format!("  peak RSS (VmHWM) = {rss} bytes\n"));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::VictimPolicy;
    use crate::delay::DelayPlan;
    use tempriv_net::convergecast::Convergecast;

    fn paper_sim(buffer: BufferPolicy, traffic: TrafficModel) -> NetworkSimulation {
        let layout = Convergecast::paper_figure1();
        NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(traffic)
            .packets_per_source(50)
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(buffer)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn expected_loads_follow_route_fan_in() {
        let sim = paper_sim(BufferPolicy::Unlimited, TrafficModel::poisson(0.5));
        let loads = expected_loads(&sim);
        // Every load present is λ = flows·rate, μ = 1/30.
        let present: Vec<&NodeLoadModel> = loads.iter().flatten().collect();
        assert!(!present.is_empty());
        for load in &present {
            assert!((load.mu - 1.0 / 30.0).abs() < 1e-12);
            assert!(load.poisson_arrivals);
            assert!(load.exponential_delay);
        }
        // Fan-in: some node carries more than one flow, so the max λ
        // exceeds the single-flow λ.
        let max_lambda = present.iter().map(|l| l.lambda).fold(0.0, f64::max);
        assert!(max_lambda > 0.5 + 1e-12);
        // The sink never delays: its slot is None.
        let sink = sim.routing().sink();
        assert!(loads[sink.index()].is_none());
    }

    #[test]
    fn schedules_and_mixes_have_no_model() {
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .schedules(vec![
                vec![tempriv_sim::time::SimTime::from_units(1.0)];
                layout.sources().len()
            ])
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .seed(7)
            .build()
            .unwrap();
        assert!(expected_loads(&sim).iter().all(Option::is_none));

        let mix = paper_sim(
            BufferPolicy::ThresholdMix { threshold: 4 },
            TrafficModel::poisson(0.5),
        );
        assert!(expected_loads(&mix).iter().all(Option::is_none));
    }

    #[test]
    fn collector_is_pass_through_without_a_sink() {
        let runtime = Runtime::new(tempriv_runtime::WorkerPool::with_workers(1));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        assert!(!collector.enabled());
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::periodic(2.0));
        let probed = collector.run(&sim, "rcad");
        collector.finish();
        assert_eq!(probed, sim.run());
    }

    #[test]
    fn collector_attaches_one_blob_per_job() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.reset(2);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let sim = paper_sim(BufferPolicy::Unlimited, TrafficModel::poisson(0.5));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 1);
        assert!(collector.enabled());
        let _ = collector.run(&sim, "unlimited");
        collector.finish();
        assert_eq!(sink.get(0), None);
        let blob = sink.get(1).expect("job 1 attached telemetry");
        let job: JobTelemetry = serde_json::from_str(&blob).unwrap();
        assert_eq!(job.scenarios.len(), 1);
        assert_eq!(job.scenarios[0].label, "unlimited");
        assert!(job.scenarios[0].sim.deliveries > 0);
        assert!(job.theory_checks() > 0);
    }

    #[test]
    fn export_aggregates_and_exposes_node_gauges() {
        let sim = paper_sim(BufferPolicy::Unlimited, TrafficModel::poisson(0.5));
        let mut probe = RecordingProbe::new(sim.routing().len());
        let outcome = sim.run_probed(&mut probe);
        let telemetry = probe.finish(outcome.end_time);
        let theory = theory_report(&sim, &telemetry, &TheoryTolerance::default());
        let mut spans = SpanSet::new();
        spans.record("rcad", 0.25);
        let job = JobTelemetry {
            scenarios: vec![ScenarioTelemetry {
                label: "rcad".to_string(),
                sim: telemetry,
                theory,
                aoi: Vec::new(),
            }],
            spans,
        };
        let blob = serde_json::to_string(&job).unwrap();
        let export = TelemetryExport::collect("fig2", &[Some(blob), None], &[], &[]).unwrap();
        assert_eq!(export.jobs, 2);
        assert_eq!(export.instrumented_jobs, 1);
        assert_eq!(export.scenarios, 1);
        assert!(export.theory_checks > 0);
        assert!(export
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_node_occupancy_mean{node=")));
        // Engine totals surface as a counter plus throughput gauges.
        let events = export
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "tempriv_engine_events_total")
            .expect("engine event counter");
        assert!(events.value > 0);
        let eps = export
            .metrics
            .gauges
            .iter()
            .find(|g| g.name == "tempriv_engine_events_per_sec")
            .expect("events/sec gauge");
        assert!((eps.value - events.value as f64 / 0.25).abs() < 1e-6);
        let fes = export
            .metrics
            .gauges
            .iter()
            .find(|g| g.name == "tempriv_engine_peak_fes")
            .expect("peak FES gauge");
        assert!(fes.value > 0.0);
        // Round-trips through canonical JSON.
        let back: TelemetryExport = serde_json::from_str(&export.to_canonical_json()).unwrap();
        assert_eq!(back, export);
        // The summary renders without panicking and names the experiment.
        assert!(export.summary_text().contains("experiment=fig2"));
    }

    #[test]
    fn collector_traces_when_capacity_is_set() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.set_trace_capacity(1 << 16);
        sink.reset(1);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::poisson(0.5))
            .packets_per_source(300)
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .seed(7)
            .build()
            .unwrap();
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        let outcome = collector.run(&sim, "unlimited");
        collector.finish();
        // Tracing observes without perturbing the outcome.
        assert_eq!(outcome, sim.run());
        let blob = sink.get_trace(0).expect("trace attached");
        let trace: JobTrace = serde_json::from_str(&blob).unwrap();
        assert_eq!(trace.scenarios.len(), 1);
        let log = &trace.scenarios[0].log;
        assert!(!log.events.is_empty());
        assert_eq!(log.capacity, 1 << 16);
        // Delivered lineages reconstruct with a full span.
        let delivered = log.lineages().iter().filter(|l| l.span().is_some()).count();
        assert!(delivered > 0);
        // The Exp(mu) residence checks rode into the theory report and
        // pass on an unlimited-buffer exponential run.
        let telemetry_blob = sink.get(0).unwrap();
        let job: JobTelemetry = serde_json::from_str(&telemetry_blob).unwrap();
        let residence: Vec<&TheoryCheck> = job.scenarios[0]
            .theory
            .checks
            .iter()
            .filter(|c| c.name.ends_with("_residence_exp"))
            .collect();
        assert!(!residence.is_empty());
        assert!(
            residence.iter().all(|c| c.passed),
            "residence checks flagged: {residence:?}"
        );
    }

    #[test]
    fn residence_checks_skip_rcad_and_sparse_nodes() {
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let mut flight = FlightRecorder::new();
        let _ = sim.run_probed(&mut flight);
        let log = flight.finish(tempriv_sim::time::SimTime::from_units(1.0));
        assert!(
            residence_checks(&sim, &log, &TheoryTolerance::default()).is_empty(),
            "RCAD eviction biases survivors: no Exp check applies"
        );
    }

    #[test]
    fn bad_blob_is_a_named_error() {
        let err = TelemetryExport::collect("fig2", &[Some("not json".to_string())], &[], &[])
            .unwrap_err();
        assert!(err.contains("job 0"));
        let err = TelemetryExport::collect("fig2", &[None], &[Some("not json".to_string())], &[])
            .unwrap_err();
        assert!(err.contains("bad privacy blob"));
    }

    #[test]
    fn rcad_preemption_fraction_checks_against_erlang() {
        let sim = paper_sim(
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Random,
            },
            TrafficModel::poisson(0.5),
        );
        let mut probe = RecordingProbe::new(sim.routing().len());
        let outcome = sim.run_probed(&mut probe);
        let telemetry = probe.finish(outcome.end_time);
        let report = theory_report(&sim, &telemetry, &TheoryTolerance::default());
        assert!(report
            .checks
            .iter()
            .any(|c| c.name.ends_with("_preemption_fraction")));
        assert!(
            !report
                .checks
                .iter()
                .any(|c| c.name.ends_with("_occupancy_pmf")),
            "pmf check requires unlimited buffers"
        );

        // A biased victim policy breaks the memoryless occupancy chain:
        // no Erlang prediction is emitted for it.
        let biased = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let mut probe = RecordingProbe::new(biased.routing().len());
        let outcome = biased.run_probed(&mut probe);
        let telemetry = probe.finish(outcome.end_time);
        let report = theory_report(&biased, &telemetry, &TheoryTolerance::default());
        assert!(report.checks.is_empty());
    }

    #[test]
    fn privacy_probe_is_invisible_to_the_simulation() {
        // The observatory only observes: the outcome must be
        // byte-identical and the RNG draw count unchanged.
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let plain = sim.run();
        let mut probe = privacy_probe_for(&sim, 10);
        let probed = sim.run_probed(&mut probe);
        assert_eq!(probed.rng_draws, plain.rng_draws);
        assert_eq!(probed, plain);
        assert_eq!(
            serde_json::to_string(&probed).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "probed outcome serializes byte-identically"
        );
        assert!(probe.deliveries() > 0, "the probe did observe deliveries");
    }

    #[test]
    fn collector_attaches_privacy_blob_when_interval_is_set() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.set_privacy_interval(25);
        sink.reset(1);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let sim = paper_sim(BufferPolicy::Unlimited, TrafficModel::poisson(0.5));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        let outcome = collector.run(&sim, "unlimited");
        collector.finish();
        // The observatory observes without perturbing the outcome.
        assert_eq!(outcome, sim.run());
        let blob = sink.get_privacy(0).expect("privacy blob attached");
        let privacy: JobPrivacy = serde_json::from_str(&blob).unwrap();
        assert_eq!(privacy.scenarios.len(), 1);
        assert_eq!(privacy.scenarios[0].label, "unlimited");
        let series = &privacy.scenarios[0].series;
        assert!(!series.points.is_empty());
        assert!(series.deliveries > 0);
        assert!(!series.summary.is_empty());
        // The blob aggregates into per-flow gauges through collect().
        let export = TelemetryExport::collect(
            "fig2",
            &[Some(
                serde_json::to_string(&JobTelemetry::default()).unwrap(),
            )],
            &[Some(blob)],
            &[],
        )
        .unwrap();
        assert!(export
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_privacy_mi_nats{flow=")));
        let back: TelemetryExport = serde_json::from_str(&export.to_canonical_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn collector_attaches_spans_and_profiles_when_batch_is_set() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.set_span_batch(16);
        sink.set_root_ctx(0xdead_beef, 0x1234_5678);
        sink.reset(1);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        let outcome = collector.run(&sim, "rcad");
        collector.finish();
        // The profiler observes without perturbing the outcome or the
        // RNG draw count.
        let plain = sim.run();
        assert_eq!(outcome, plain);
        assert_eq!(outcome.rng_draws, plain.rng_draws);
        assert_eq!(
            serde_json::to_string(&outcome).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "profiled outcome serializes byte-identically"
        );
        let blob = sink.get_spans(0).expect("spans attached");
        let spans: JobSpans = serde_json::from_str(&blob).unwrap();
        // Job span first, then one scenario span, all on one trace.
        assert_eq!(spans.spans.len(), 2);
        assert_eq!(spans.spans[0].layer, "job");
        assert_eq!(spans.spans[1].layer, "scenario");
        assert_eq!(spans.spans[1].name, "rcad");
        assert!(spans.spans.iter().all(|s| s.trace_id != 0));
        assert_eq!(spans.spans[0].trace_id, spans.spans[1].trace_id);
        assert_eq!(spans.spans[1].parent_id, spans.spans[0].span_id);
        assert_eq!(
            spans.spans[0].parent_id, 0x1234_5678,
            "serve root is the parent"
        );
        // One phase breakdown whose phases sum to its total.
        assert_eq!(spans.profiles.len(), 1);
        let profile = &spans.profiles[0].profile;
        assert_eq!(profile.batch, 16);
        let sum: f64 = profile.phases.iter().map(|p| p.secs).sum();
        assert!((sum - profile.total_secs).abs() < 1e-9);
        assert!(profile
            .phases
            .iter()
            .any(|p| p.phase == "victim_select" && p.count > 0));
    }

    #[test]
    fn job_ctx_is_deterministic_per_index() {
        // Two collectors for the same job index derive the same trace
        // context; different indices diverge.
        let runtime = Runtime::new(tempriv_runtime::WorkerPool::with_workers(1));
        let a = JobTelemetryCollector::for_job(&runtime, 3);
        let b = JobTelemetryCollector::for_job(&runtime, 3);
        let c = JobTelemetryCollector::for_job(&runtime, 4);
        assert_eq!(a.job_ctx, b.job_ctx);
        assert_ne!(a.job_ctx.span_id, c.job_ctx.span_id);
        assert_eq!(a.job_ctx.trace_id, c.job_ctx.trace_id);
    }

    #[test]
    fn aoi_rides_the_flight_recording_into_gauges() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.set_trace_capacity(1 << 16);
        sink.reset(1);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let sim = paper_sim(BufferPolicy::Unlimited, TrafficModel::poisson(0.5));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        let _ = collector.run(&sim, "unlimited");
        collector.finish();
        let blob = sink.get(0).unwrap();
        let job: JobTelemetry = serde_json::from_str(&blob).unwrap();
        let aoi = &job.scenarios[0].aoi;
        assert!(!aoi.is_empty(), "flight recording yields AoI per flow");
        for flow in aoi {
            assert!(flow.deliveries > 0);
            assert!(flow.mean > 0.0);
            assert!(flow.peak >= flow.mean);
        }
        // The blob aggregates into per-flow AoI gauges through collect().
        let export = TelemetryExport::collect("fig2", &[Some(blob)], &[], &[]).unwrap();
        assert!(export
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_aoi_mean{flow=")));
        assert!(export
            .metrics
            .gauges
            .iter()
            .any(|g| g.name.starts_with("tempriv_aoi_peak{flow=")));
    }

    #[test]
    fn digest_probe_is_invisible_to_the_simulation() {
        // The audit probe only observes: outcome byte-identical, RNG
        // draw count unchanged — auditing can never perturb what it
        // attests.
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let plain = sim.run();
        let mut digest = DigestProbe::new(256);
        let probed = sim.run_probed(&mut digest);
        assert_eq!(probed.rng_draws, plain.rng_draws);
        assert_eq!(probed, plain);
        assert_eq!(
            serde_json::to_string(&probed).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "audited outcome serializes byte-identically"
        );
        assert!(digest.events() > 0, "the probe did observe events");
    }

    #[test]
    fn run_digest_is_invariant_to_probe_stacking() {
        // The digest must describe the *simulation*, not the
        // instrumentation: a full metrics+trace+privacy stack on top of
        // the digest probe yields the same windows and root as the
        // digest probe alone.
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::poisson(0.5));
        let mut alone = DigestProbe::new(256);
        let solo_outcome = sim.run_probed(&mut alone);

        let mut stacked = DigestProbe::new(256);
        let mut metrics = RecordingProbe::new(sim.routing().len());
        let mut flight = FlightRecorder::with_capacity(1 << 16);
        let mut privacy = privacy_probe_for(&sim, 25);
        let stacked_outcome =
            sim.run_probed(&mut (((&mut metrics, &mut stacked), &mut flight), &mut privacy));

        assert_eq!(stacked_outcome, solo_outcome);
        let solo = alone.finish();
        let full = stacked.finish();
        assert_eq!(solo.root, full.root);
        assert_eq!(solo.checkpoints, full.checkpoints);
        assert_eq!(solo, full);
    }

    #[test]
    fn collector_attaches_audit_blob_when_window_is_set() {
        use std::sync::Arc;
        let sink = Arc::new(TelemetrySink::new());
        sink.set_digest_window(256);
        sink.reset(1);
        let runtime = Runtime::builder()
            .workers(1)
            .telemetry_sink(sink.clone())
            .build()
            .unwrap();
        let sim = paper_sim(BufferPolicy::paper_rcad(), TrafficModel::periodic(2.0));
        let mut collector = JobTelemetryCollector::for_job(&runtime, 0);
        let outcome = collector.run(&sim, "rcad");
        collector.finish();
        assert_eq!(outcome, sim.run(), "auditing does not perturb the run");
        let blob = sink.get_audit(0).expect("audit blob attached");
        let audit: JobAudit = serde_json::from_str(&blob).unwrap();
        assert_eq!(audit.scenarios.len(), 1);
        assert_eq!(audit.scenarios[0].label, "rcad");
        assert_eq!(audit.root, audit.compute_root());
        assert_eq!(audit.root.len(), 16);
        // The scenario digest matches a direct probe of the same run.
        let mut direct = DigestProbe::new(256);
        let _ = sim.run_probed(&mut direct);
        assert_eq!(audit.scenarios[0].digest, direct.finish());
    }

    #[test]
    fn streaming_mi_converges_to_batch_below_the_btq_bound() {
        use tempriv_infotheory::estimators::mi_from_samples_nats;
        use tempriv_net::ids::FlowId;
        // Figure-1 topology at 1000 packets/source: the streaming
        // estimator must land within 15% of the batch estimator run over
        // the same samples, and stay below the eq. 4 mean bound.
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::poisson(0.5))
            .packets_per_source(1000)
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .seed(7)
            .build()
            .unwrap();
        let mut probe = privacy_probe_for(&sim, 100);
        let outcome = sim.run_probed(&mut probe);
        let flows = probe.num_flows();
        assert!(flows > 0);
        let mut compared = 0;
        for flow in 0..flows {
            let mi = probe.flow_mi(flow);
            if mi.count() < 200 {
                continue;
            }
            let streaming = mi.mi_nats();
            #[allow(clippy::cast_possible_truncation)]
            let (xs, zs) = outcome.creation_arrival_pairs(FlowId(flow as u32));
            let bins = mi.effective_x_bins().max(mi.effective_z_bins()).max(2);
            let batch = mi_from_samples_nats(&xs, &zs, bins).unwrap();
            assert!(
                (streaming - batch).abs() <= 0.15 * batch.max(0.2),
                "flow {flow}: streaming {streaming:.4} vs batch {batch:.4} (bins {bins})"
            );
            compared += 1;
        }
        assert!(compared > 0, "at least one flow had enough samples");
        let series = probe.finish(outcome.end_time);
        let mut bounded = 0;
        for summary in &series.summary {
            let Some(bound) = summary.btq_mean_bound_nats else {
                continue;
            };
            assert!(
                summary.mi_nats < bound,
                "flow {}: empirical MI {:.4} exceeds eq. 4 mean bound {:.4}",
                summary.flow,
                summary.mi_nats,
                bound
            );
            assert!(summary.margin_nats.unwrap() > 0.0);
            bounded += 1;
        }
        assert!(bounded > 0, "at least one flow carried a BTQ envelope");
    }
}

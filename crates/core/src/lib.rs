//! # tempriv-core — temporal privacy for delay-tolerant sensor networks
//!
//! The primary contribution of *Temporal Privacy in Wireless Sensor
//! Networks* (ICDCS 2007), reproduced in full:
//!
//! * [`delay`] — per-node random-delay strategies ([`delay::DelayPlan`]),
//! * [`buffer`] — finite buffers with drop-tail and **RCAD**
//!   (Rate-Controlled Adaptive Delaying): preempt the buffered packet with
//!   the shortest remaining delay instead of dropping (§5),
//! * [`adversary`] — the deployment-aware baseline (§2.1) and adaptive
//!   (§5.4) creation-time estimators, plus a calibration oracle,
//! * [`metrics`] — MSE privacy scoring and latency/occupancy reports,
//! * [`sim_driver`] — the deterministic event-driven network simulation
//!   tying it all together,
//! * [`config`] — serializable experiment descriptions,
//! * [`report`] — one-call [`report::PrivacyAssessment`] dashboards,
//! * [`replication`] — multi-seed replication with confidence intervals,
//! * [`experiment`] — the parameter sweeps behind every figure,
//! * [`adaptive_mu`] — the §4 rate-controlled per-node delay assignment,
//! * [`decomposition`] — the §3.3 delay-budget decomposition across paths.
//!
//! # Examples
//!
//! Reproduce the paper's headline comparison at the highest traffic rate:
//!
//! ```
//! use tempriv_core::adversary::BaselineAdversary;
//! use tempriv_core::config::ExperimentConfig;
//! use tempriv_core::metrics::evaluate_adversary;
//! use tempriv_net::ids::FlowId;
//!
//! let mut cfg = ExperimentConfig::paper_default();
//! cfg.packets_per_source = 200; // keep the doctest quick
//! let sim = cfg.build()?;
//! let outcome = sim.run();
//! let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
//! // RCAD preemptions make the adversary's estimate badly wrong:
//! assert!(report.mse(FlowId(0)) > 1_000.0);
//! # Ok::<(), tempriv_core::config::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive_mu;
pub mod adversary;
pub mod buffer;
pub mod config;
pub mod decomposition;
pub mod delay;
pub mod experiment;
pub mod metrics;
pub mod replication;
pub mod report;
pub mod sharded;
pub mod sim_driver;
pub mod store;
pub mod telemetry;

pub use adversary::{
    AdaptiveAdversary, Adversary, AdversaryKnowledge, BaselineAdversary, Observation,
    OracleAdversary, RouteAwareAdversary, WindowedAdaptiveAdversary,
};
pub use buffer::{BufferPolicy, VictimPolicy};
pub use config::{ConfigError, ExperimentConfig, LayoutSpec};
pub use delay::{DelayPlan, DelayStrategy};
pub use metrics::{
    evaluate_adversary, AdversaryReport, FlowOutcome, NodeReport, ShardStats, SimOutcome,
};
pub use replication::{replicate, replicate_on, replication_seed, ReplicatedMetric};
pub use report::{FlowAssessment, PrivacyAssessment};
pub use sharded::ShardPlan;
pub use sim_driver::{BuildError, NetworkSimulation, NetworkSimulationBuilder, Workload};

//! The event-driven network simulation (paper §5).
//!
//! Wires the substrates together: sources create packets on a traffic
//! schedule; every packet is buffered for a random delay at each node on
//! its route (source and forwarders — the sink does not delay), crosses
//! each link in τ time units, and is observed by the adversary tap when it
//! reaches the sink. Finite buffers apply their [`BufferPolicy`]: drops
//! for drop-tail, victim preemption for RCAD.
//!
//! Runs are deterministic: a given [`NetworkSimulation`] and seed always
//! produce the identical [`SimOutcome`].

use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_net::link::LinkModel;
use tempriv_net::routing::RoutingTree;
use tempriv_net::traffic::{TrafficModel, TrafficSampler};
use tempriv_sim::engine::{Engine, Scheduler};
use tempriv_sim::profile::{NoopPhaseTimer, Phase, PhaseTimer};
use tempriv_sim::rng::{RngFactory, SimRng};
use tempriv_sim::stats::{Histogram, OnlineStats, StateDwell};
use tempriv_sim::time::SimTime;
use tempriv_telemetry::{NullProbe, PacketEvent, SimProbe};

use crate::adversary::{AdversaryKnowledge, Observation};
use crate::buffer::BufferPolicy;
use crate::delay::{DelayPlan, DelayStrategy};
use crate::metrics::{FlowOutcome, NodeReport, SimOutcome, TruthRecord};
use crate::store::{PacketStore, StoreBuffer};

/// RNG stream namespaces (one per stochastic component class).
///
/// `DELAY` and `TRAFFIC` substreams are indexed per node / per flow;
/// `VICTIM`, `LINK`, and `READING` are indexed per *shard* — the serial
/// engine is the one-shard special case drawing from substream index 0,
/// so serial digests are unchanged by the sharded runner's existence.
pub(crate) mod streams {
    pub const DELAY: u64 = 1;
    pub const TRAFFIC: u64 = 2;
    pub const VICTIM: u64 = 3;
    pub const LINK: u64 = 4;
    pub const READING: u64 = 5;
}

/// How sources create packets: a stochastic model shared by every flow,
/// or explicit per-flow creation schedules (trace-driven workloads, e.g.
/// detections produced by [`tempriv_net::mobility`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Every flow samples inter-arrival gaps from the same model and
    /// creates `packets_per_source` packets.
    Model(TrafficModel),
    /// Flow `i` creates one packet at each instant of `schedules[i]`
    /// (`packets_per_source` is ignored).
    Schedules(Vec<Vec<SimTime>>),
}

/// A fully specified simulation: topology, workload, and privacy
/// mechanism. Construct it, then call [`NetworkSimulation::run`].
///
/// # Examples
///
/// ```
/// use tempriv_core::buffer::BufferPolicy;
/// use tempriv_core::delay::DelayPlan;
/// use tempriv_core::sim_driver::NetworkSimulation;
/// use tempriv_net::convergecast::Convergecast;
/// use tempriv_net::traffic::{TrafficModel, TrafficSampler};
///
/// let layout = Convergecast::paper_figure1();
/// let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
///     .traffic(TrafficModel::periodic(2.0))
///     .packets_per_source(50)
///     .delay_plan(DelayPlan::shared_exponential(30.0))
///     .buffer_policy(BufferPolicy::paper_rcad())
///     .seed(1)
///     .build()
///     .unwrap();
/// let outcome = sim.run();
/// assert_eq!(outcome.total_delivered(), 200); // RCAD never drops
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSimulation {
    pub(crate) routing: RoutingTree,
    pub(crate) sources: Vec<NodeId>,
    pub(crate) workload: Workload,
    pub(crate) packets_per_source: u32,
    pub(crate) delay_plan: DelayPlan,
    pub(crate) buffer_policy: BufferPolicy,
    pub(crate) link: LinkModel,
    pub(crate) seed: u64,
    pub(crate) latency_range: (f64, f64),
}

/// Builder for [`NetworkSimulation`].
#[derive(Debug, Clone)]
pub struct NetworkSimulationBuilder {
    routing: RoutingTree,
    sources: Vec<NodeId>,
    workload: Workload,
    packets_per_source: u32,
    delay_plan: DelayPlan,
    buffer_policy: BufferPolicy,
    link: LinkModel,
    seed: u64,
    latency_range: (f64, f64),
}

impl NetworkSimulationBuilder {
    /// Sets the per-source traffic model (default: periodic, interval 2 —
    /// the paper's fastest rate).
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.workload = Workload::Model(traffic);
        self
    }

    /// Replaces the stochastic workload with explicit per-flow creation
    /// schedules (one `Vec<SimTime>` per flow, in flow order).
    #[must_use]
    pub fn schedules(mut self, schedules: Vec<Vec<SimTime>>) -> Self {
        self.workload = Workload::Schedules(schedules);
        self
    }

    /// Sets how many packets each source creates (default 1000, as in the
    /// paper).
    #[must_use]
    pub fn packets_per_source(mut self, n: u32) -> Self {
        self.packets_per_source = n;
        self
    }

    /// Sets the delay plan (default: shared exponential, mean 30).
    #[must_use]
    pub fn delay_plan(mut self, plan: DelayPlan) -> Self {
        self.delay_plan = plan;
        self
    }

    /// Sets the buffer policy (default: RCAD with 10 slots).
    #[must_use]
    pub fn buffer_policy(mut self, policy: BufferPolicy) -> Self {
        self.buffer_policy = policy;
        self
    }

    /// Sets the link model (default: lossless, τ = 1).
    #[must_use]
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the master RNG seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the latency-histogram range (default `[0, 2000)` time units;
    /// out-of-range latencies land in overflow and still count toward
    /// the mean, only quantiles saturate).
    ///
    /// # Panics
    ///
    /// Panics (at build) if `lo >= hi`.
    #[must_use]
    pub fn latency_range(mut self, lo: f64, hi: f64) -> Self {
        self.latency_range = (lo, hi);
        self
    }

    /// Validates and builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a source is unknown or is the sink, no
    /// sources were given, the buffer policy is invalid, or the packet
    /// budget is zero.
    pub fn build(self) -> Result<NetworkSimulation, BuildError> {
        if self.sources.is_empty() {
            return Err(BuildError::NoSources);
        }
        for (i, &src) in self.sources.iter().enumerate() {
            if src.index() >= self.routing.len() {
                return Err(BuildError::UnknownSource {
                    flow: FlowId(i as u32),
                    source: src,
                });
            }
            if src == self.routing.sink() {
                return Err(BuildError::SourceIsSink { source: src });
            }
        }
        if let Err(reason) = self.buffer_policy.validate() {
            return Err(BuildError::InvalidBuffer { reason });
        }
        match &self.workload {
            Workload::Model(_) => {
                if self.packets_per_source == 0 {
                    return Err(BuildError::NoPackets);
                }
            }
            Workload::Schedules(schedules) => {
                if schedules.len() != self.sources.len() {
                    return Err(BuildError::ScheduleMismatch {
                        flows: self.sources.len(),
                        schedules: schedules.len(),
                    });
                }
                if schedules.iter().all(Vec::is_empty) {
                    return Err(BuildError::NoPackets);
                }
            }
        }
        let range_valid = self.latency_range.0.is_finite()
            && self.latency_range.1.is_finite()
            && self.latency_range.0 < self.latency_range.1;
        if !range_valid {
            return Err(BuildError::InvalidBuffer {
                reason: format!(
                    "latency histogram range [{}, {}) is empty",
                    self.latency_range.0, self.latency_range.1
                ),
            });
        }
        Ok(NetworkSimulation {
            routing: self.routing,
            sources: self.sources,
            workload: self.workload,
            packets_per_source: self.packets_per_source,
            delay_plan: self.delay_plan,
            buffer_policy: self.buffer_policy,
            link: self.link,
            seed: self.seed,
            latency_range: self.latency_range,
        })
    }
}

/// Errors from [`NetworkSimulationBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// No traffic sources were configured.
    NoSources,
    /// A source node is not part of the routing tree.
    UnknownSource {
        /// The flow whose source is unknown.
        flow: FlowId,
        /// The offending node id.
        source: NodeId,
    },
    /// A source coincides with the sink.
    SourceIsSink {
        /// The offending node id.
        source: NodeId,
    },
    /// The buffer policy failed validation.
    InvalidBuffer {
        /// Why.
        reason: String,
    },
    /// `packets_per_source` was zero (or every schedule was empty).
    NoPackets,
    /// Explicit schedules did not line up with the flow list.
    ScheduleMismatch {
        /// Number of flows configured.
        flows: usize,
        /// Number of schedules provided.
        schedules: usize,
    },
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::NoSources => write!(f, "at least one source is required"),
            BuildError::UnknownSource { flow, source } => {
                write!(f, "flow {flow} source {source} is not in the routing tree")
            }
            BuildError::SourceIsSink { source } => {
                write!(f, "source {source} is the sink")
            }
            BuildError::InvalidBuffer { reason } => write!(f, "invalid buffer policy: {reason}"),
            BuildError::NoPackets => write!(f, "packets_per_source must be positive"),
            BuildError::ScheduleMismatch { flows, schedules } => write!(
                f,
                "got {schedules} creation schedule(s) for {flows} flow(s)"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A source creates its next packet.
    Create { flow: FlowId },
    /// A packet finishes crossing a link into `node`. The payload is a
    /// [`PacketStore`] slot — 4 bytes through the queue instead of a
    /// by-value packet.
    Arrive { node: NodeId, slot: u32 },
    /// A buffered packet's delay timer fires at `node`.
    Release { node: NodeId, slot: u32 },
}

impl NetworkSimulation {
    /// Starts a builder for the given routing tree and per-flow sources.
    #[must_use]
    pub fn builder(routing: RoutingTree, sources: Vec<NodeId>) -> NetworkSimulationBuilder {
        NetworkSimulationBuilder {
            routing,
            sources,
            workload: Workload::Model(TrafficModel::periodic(2.0)),
            packets_per_source: 1000,
            delay_plan: DelayPlan::shared_exponential(30.0),
            buffer_policy: BufferPolicy::paper_rcad(),
            link: LinkModel::paper_default(),
            seed: 0,
            latency_range: (0.0, 2_000.0),
        }
    }

    /// The routing tree.
    #[must_use]
    pub const fn routing(&self) -> &RoutingTree {
        &self.routing
    }

    /// Source node per flow.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The configured delay plan.
    #[must_use]
    pub const fn delay_plan(&self) -> &DelayPlan {
        &self.delay_plan
    }

    /// The configured buffer policy.
    #[must_use]
    pub const fn buffer_policy(&self) -> BufferPolicy {
        self.buffer_policy
    }

    /// What a deployment-aware adversary knows about this network
    /// (Kerckhoff's principle, §2): hop counts, τ, the advertised delay
    /// mean, and buffer sizes. For per-node delay plans the advertised
    /// mean is the average over each flow's path, matching an adversary
    /// that integrates the advertised per-node distributions.
    #[must_use]
    pub fn adversary_knowledge(&self) -> AdversaryKnowledge {
        let flow_hops: Vec<u32> = self
            .sources
            .iter()
            .map(|&s| self.routing.hops(s).expect("validated source"))
            .collect();
        // Mean per-hop delay as the adversary computes it: path average.
        let delay_mean = match &self.delay_plan {
            DelayPlan::Shared(s) => s.mean(),
            DelayPlan::PerNode { .. } => {
                let mut total = 0.0;
                let mut hops = 0u32;
                for &src in &self.sources {
                    let path = self.routing.path(src);
                    // Delaying nodes: all but the sink.
                    for &node in &path[..path.len() - 1] {
                        total += self.delay_plan.for_node(node).mean();
                        hops += 1;
                    }
                }
                if hops == 0 {
                    0.0
                } else {
                    total / f64::from(hops)
                }
            }
        };
        let flow_paths: Vec<Vec<NodeId>> = self
            .sources
            .iter()
            .map(|&src| {
                let mut path = self.routing.path(src);
                path.pop(); // the sink does not delay
                path
            })
            .collect();
        let path_delay_means: Vec<f64> = flow_paths
            .iter()
            .map(|path| self.delay_plan.path_mean_delay(path.iter()))
            .collect();
        AdversaryKnowledge {
            tau: self.link.mean_delay(),
            delay_mean,
            buffer_slots: self.buffer_policy.capacity(),
            flow_hops,
            converging_flows: (0..self.sources.len() as u32).map(FlowId).collect(),
            flow_paths,
            path_delay_means,
        }
    }

    /// The configured workload.
    #[must_use]
    pub const fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Runs the simulation to completion (all packets created and either
    /// delivered, dropped, or lost) and returns the outcome.
    #[must_use]
    pub fn run(&self) -> SimOutcome {
        self.run_probed(&mut NullProbe)
    }

    /// Runs the simulation on the sharded conservative-parallel engine
    /// and returns the outcome.
    ///
    /// The convergecast tree is cut into `shards` partitions at trunk
    /// edges ([`crate::sharded::ShardPlan`]); each shard simulates its
    /// subtrees on a private event queue and store, exchanging packets at
    /// conservative time-window barriers (lookahead = the link delay τ).
    /// `workers` is the number of OS threads driving the shards; the
    /// outcome is byte-identical for every worker count, including 1
    /// (which runs the shards inline with no threads at all).
    ///
    /// Shard-indexed RNG streams make `shards` itself part of the random
    /// configuration: `run_sharded(1, _)` reproduces [`run`] exactly, and
    /// higher shard counts reproduce it whenever no stochastic component
    /// draws from a shared global stream (lossless links, deterministic
    /// victim policies — e.g. the paper's configurations).
    ///
    /// # Panics
    ///
    /// Panics if the link's constant delay is zero (no conservative
    /// lookahead exists) or `shards == 0`.
    ///
    /// [`run`]: NetworkSimulation::run
    #[must_use]
    pub fn run_sharded(&self, shards: u32, workers: usize) -> SimOutcome {
        crate::sharded::run_sharded(
            self,
            shards,
            workers,
            crate::sharded::CutStrategy::Exact,
            &mut NoopPhaseTimer,
        )
    }

    /// [`run_sharded`](NetworkSimulation::run_sharded) with the
    /// load-balanced cut ([`crate::sharded::ShardPlan::cut_balanced`]):
    /// subtrees are carved by transit load, so a single giant
    /// sink-subtree (a corner-sink geometric field, the Figure-1 shared
    /// trunk) spreads across every shard instead of collapsing onto one.
    ///
    /// The price is bit-exactness against [`run`]: handoffs can target
    /// interior buffering nodes, where same-instant arrival ties resolve
    /// by queue insertion order the barrier merge cannot replicate.
    /// Worker-count invariance and packet conservation still hold
    /// unconditionally; use this mode for throughput at scale, the exact
    /// cut when cross-checking digests against the serial engine.
    ///
    /// # Panics
    ///
    /// Panics if the link's constant delay is zero or `shards == 0`.
    ///
    /// [`run`]: NetworkSimulation::run
    #[must_use]
    pub fn run_sharded_balanced(&self, shards: u32, workers: usize) -> SimOutcome {
        crate::sharded::run_sharded(
            self,
            shards,
            workers,
            crate::sharded::CutStrategy::Balanced,
            &mut NoopPhaseTimer,
        )
    }

    /// [`run_sharded`](NetworkSimulation::run_sharded) with a coordinator
    /// phase timer attached: wall-time at the window barrier (waiting for
    /// shards and merging handoffs) is attributed to
    /// [`Phase::BarrierWait`], shard execution to [`Phase::EngineLoop`].
    /// Per-event phases inside shards are not attributed — shard drivers
    /// run with [`NoopPhaseTimer`], so the timer never perturbs the run.
    #[must_use]
    pub fn run_sharded_profiled<T: PhaseTimer>(
        &self,
        shards: u32,
        workers: usize,
        timer: &mut T,
    ) -> SimOutcome {
        crate::sharded::run_sharded(
            self,
            shards,
            workers,
            crate::sharded::CutStrategy::Exact,
            timer,
        )
    }

    /// Runs the simulation with a telemetry probe attached.
    ///
    /// The probe observes event boundaries (occupancy transitions,
    /// preemptions, drops, flushes, deliveries) but cannot perturb the
    /// run: probes receive no access to the scheduler or RNGs, so
    /// `run_probed` produces exactly the [`SimOutcome`] that
    /// [`NetworkSimulation::run`] does. The method is generic so the
    /// [`NullProbe`] path monomorphizes to straight-line code with no
    /// probe overhead.
    #[must_use]
    pub fn run_probed<P: SimProbe>(&self, probe: &mut P) -> SimOutcome {
        self.run_profiled(probe, &mut NoopPhaseTimer)
    }

    /// Runs the simulation with a telemetry probe *and* a phase timer.
    ///
    /// The timer is the engine self-profiler hook: the driver calls
    /// [`PhaseTimer::switch`] at phase boundaries (event dispatch per
    /// event kind, future-event scheduling, RCAD victim selection, probe
    /// clusters) and the timer attributes wall-time between switches to
    /// phases. Like probes, timers observe and never act: they see no
    /// scheduler and no RNGs, so the [`SimOutcome`] is byte-identical
    /// with any timer attached. [`NoopPhaseTimer`] monomorphizes every
    /// switch to nothing, keeping the `run`/`run_probed` hot path free
    /// of profiling overhead.
    #[must_use]
    pub fn run_profiled<P: SimProbe, T: PhaseTimer>(
        &self,
        probe: &mut P,
        timer: &mut T,
    ) -> SimOutcome {
        let n_nodes = self.routing.len();
        let n_flows = self.sources.len();
        // Allocation gauge: everything the driver thread allocates
        // between here and outcome assembly is this run's footprint.
        // Reads zero unless a counting allocator is installed + enabled.
        let mem_base = tempriv_telemetry::memprof::thread_snapshot();

        let mut driver = Driver::new(self, probe, timer);
        driver
            .truth
            .reserve(n_flows * self.packets_per_source as usize);

        let mut engine: Engine<Ev> = Engine::new();
        match &self.workload {
            Workload::Model(_) => {
                for i in 0..self.sources.len() {
                    let flow = FlowId(i as u32);
                    let first = SimTime::ZERO
                        + driver.traffic_samplers[i].next_interarrival(&mut driver.traffic_rngs[i]);
                    engine
                        .schedule_at(first, Ev::Create { flow })
                        .expect("initial schedule at t >= 0");
                }
            }
            Workload::Schedules(schedules) => {
                for (i, schedule) in schedules.iter().enumerate() {
                    let flow = FlowId(i as u32);
                    for &at in schedule {
                        engine
                            .schedule_at(at, Ev::Create { flow })
                            .expect("initial schedule at t >= 0");
                    }
                }
            }
        }
        engine.run(|sched, ev| driver.handle(sched, ev));
        let end_time = engine.now();
        let events = engine.delivered();
        let peak_fes = engine.peak_pending() as u64;
        let queue_footprint = engine.queue_footprint() as u64;
        let queue_compactions = engine.queue_compactions();

        for (i, buffer) in driver.buffers.iter().enumerate() {
            driver.probe.on_high_water(i, buffer.high_water() as u64);
        }
        driver.probe.on_engine_stats(events, peak_fes);
        driver
            .probe
            .on_queue_stats(queue_footprint, queue_compactions);
        driver.probe.on_run_end(end_time);

        let rng_draws = driver.rng_draws();

        let mem = tempriv_telemetry::memprof::thread_snapshot().since(mem_base);

        SimOutcome {
            end_time,
            flows: (0..n_flows)
                .map(|i| FlowOutcome {
                    flow: FlowId(i as u32),
                    source: self.sources[i],
                    hops: self.routing.hops(self.sources[i]).expect("validated"),
                    created: u64::from(driver.seq[i]),
                    delivered: driver.delivered[i],
                    latency: driver.latency[i],
                    latency_histogram: driver.latency_hist[i].clone(),
                })
                .collect(),
            observations: canonicalize(driver.observations),
            truth: driver.truth,
            nodes: (0..n_nodes)
                .map(|i| {
                    let occupancy_pmf = driver.occupancy[i].pmf(end_time);
                    NodeReport {
                        node: NodeId(i as u32),
                        mean_occupancy: driver.occupancy[i].mean(end_time),
                        peak_occupancy: occupancy_pmf.iter().map(|&(k, _)| k).max().unwrap_or(0),
                        occupancy_pmf,
                        preemptions: driver.preemptions[i],
                        drops: driver.drops[i],
                        flushes: driver.flushes[i],
                        stranded: driver.buffers[i].len() as u64,
                        transmissions: driver.tx_count[i],
                        receptions: driver.rx_count[i],
                    }
                })
                .collect(),
            link_losses: driver.link_losses,
            rng_draws,
            events,
            peak_fes,
            allocs: mem.allocs,
            alloc_bytes: mem.bytes,
            shards: Vec::new(),
        }
    }
}

/// Orders sink observations canonically: by arrival instant, then flow,
/// then packet id. Arrivals on the same quantized tick have no
/// physically observable order (RCAD preemption cascades make such ties
/// common), so both the serial and the sharded runner normalize tie
/// order the same way and their observation logs — and therefore
/// outcome digests — stay comparable.
pub(crate) fn canonicalize(mut observations: Vec<Observation>) -> Vec<Observation> {
    observations.sort_unstable_by_key(|o| (o.arrival, o.flow.0, o.packet.0));
    observations
}

pub(crate) struct Driver<'a, P: SimProbe, T: PhaseTimer> {
    pub(crate) sim: &'a NetworkSimulation,
    pub(crate) probe: &'a mut P,
    pub(crate) timer: &'a mut T,
    /// Cached per-run invariants, hoisted out of the per-event path.
    pub(crate) sink: NodeId,
    pub(crate) capacity: Option<usize>,
    pub(crate) strategies: Vec<DelayStrategy>,
    /// Reused flush buffer so threshold-mix batches allocate once per run.
    pub(crate) mix_scratch: Vec<u32>,
    /// The struct-of-arrays data plane every in-flight packet lives in.
    pub(crate) store: PacketStore,
    pub(crate) buffers: Vec<StoreBuffer>,
    pub(crate) occupancy: Vec<StateDwell>,
    pub(crate) preemptions: Vec<u64>,
    pub(crate) drops: Vec<u64>,
    pub(crate) flushes: Vec<u64>,
    pub(crate) tx_count: Vec<u64>,
    pub(crate) rx_count: Vec<u64>,
    pub(crate) link_losses: u64,
    pub(crate) next_packet_id: u64,
    pub(crate) seq: Vec<u32>,
    pub(crate) truth: Vec<TruthRecord>,
    pub(crate) observations: Vec<Observation>,
    pub(crate) latency: Vec<OnlineStats>,
    pub(crate) latency_hist: Vec<Histogram>,
    pub(crate) delivered: Vec<u64>,
    pub(crate) delay_rngs: Vec<SimRng>,
    pub(crate) traffic_rngs: Vec<SimRng>,
    pub(crate) traffic_samplers: Vec<TrafficSampler>,
    pub(crate) victim_rng: SimRng,
    pub(crate) link_rng: SimRng,
    pub(crate) reading_rng: SimRng,
    /// Sharded mode only: packet ids and creation instants preassigned by
    /// the global presampling pass, one cursor per flow. Empty in serial
    /// runs — `on_create` then assigns ids in event order and samples the
    /// traffic model lazily, exactly as before the sharded runner existed.
    pub(crate) preassigned: Vec<crate::sharded::FlowCursor>,
    /// Sharded mode only: the shard each node belongs to. `None` keeps
    /// every forward local (serial).
    pub(crate) shard_of: Option<&'a [u32]>,
    pub(crate) my_shard: u32,
    /// Cross-shard arrivals emitted this window, in emission order.
    pub(crate) outbox: Vec<crate::sharded::Handoff>,
    /// Lifetime count of cross-shard handoffs this shard emitted.
    pub(crate) handoffs_out: u64,
}

impl<'a, P: SimProbe, T: PhaseTimer> Driver<'a, P, T> {
    /// Serial driver state for one simulation run. The sharded runner
    /// builds one per shard and then re-points the shard-indexed RNG
    /// streams and creation cursors before seeding its engine.
    pub(crate) fn new(sim: &'a NetworkSimulation, probe: &'a mut P, timer: &'a mut T) -> Self {
        let n_nodes = sim.routing.len();
        let n_flows = sim.sources.len();
        let factory = RngFactory::new(sim.seed);
        Driver {
            sim,
            probe,
            timer,
            sink: sim.routing.sink(),
            capacity: sim.buffer_policy.capacity(),
            strategies: (0..n_nodes)
                .map(|i| sim.delay_plan.for_node(NodeId(i as u32)))
                .collect(),
            mix_scratch: Vec::new(),
            store: PacketStore::new(),
            buffers: (0..n_nodes)
                .map(|_| StoreBuffer::for_policy(&sim.buffer_policy))
                .collect(),
            occupancy: (0..n_nodes)
                .map(|_| StateDwell::new(SimTime::ZERO, 0))
                .collect(),
            preemptions: vec![0; n_nodes],
            drops: vec![0; n_nodes],
            flushes: vec![0; n_nodes],
            tx_count: vec![0; n_nodes],
            rx_count: vec![0; n_nodes],
            link_losses: 0,
            next_packet_id: 0,
            seq: vec![0; n_flows],
            truth: Vec::new(),
            observations: Vec::new(),
            latency: vec![OnlineStats::new(); n_flows],
            latency_hist: (0..n_flows)
                .map(|_| Histogram::new(sim.latency_range.0, sim.latency_range.1, 400))
                .collect(),
            delivered: vec![0; n_flows],
            delay_rngs: (0..n_nodes)
                .map(|i| factory.substream(streams::DELAY, i as u64))
                .collect(),
            traffic_rngs: (0..n_flows)
                .map(|i| factory.substream(streams::TRAFFIC, i as u64))
                .collect(),
            traffic_samplers: match &sim.workload {
                Workload::Model(traffic) => vec![traffic.sampler(); n_flows],
                Workload::Schedules(_) => Vec::new(),
            },
            victim_rng: factory.substream(streams::VICTIM, 0),
            link_rng: factory.substream(streams::LINK, 0),
            reading_rng: factory.substream(streams::READING, 0),
            preassigned: Vec::new(),
            shard_of: None,
            my_shard: 0,
            outbox: Vec::new(),
            handoffs_out: 0,
        }
    }

    /// Total RNG draws across every stream this driver owns.
    pub(crate) fn rng_draws(&self) -> u64 {
        self.delay_rngs.iter().map(SimRng::draws).sum::<u64>()
            + self.traffic_rngs.iter().map(SimRng::draws).sum::<u64>()
            + self.victim_rng.draws()
            + self.link_rng.draws()
            + self.reading_rng.draws()
    }

    /// Accepts a cross-shard handoff: materializes the packet in this
    /// shard's store and schedules its arrival. Called between windows,
    /// never while the engine is running.
    pub(crate) fn accept(&mut self, engine: &mut Engine<Ev>, h: &crate::sharded::Handoff) {
        // The reading rides only for privacy sealing at creation; it is
        // unobservable downstream, so handoffs do not ship it.
        let slot = self.store.alloc(h.pid, h.flow, h.origin, h.created_at, 0.0);
        self.store.set_hop_count(slot, h.hop_count);
        self.rx_count[h.node.index()] += 1;
        engine
            .schedule_at(h.at, Ev::Arrive { node: h.node, slot })
            .expect("handoffs arrive at or after the window barrier");
    }

    #[inline]
    pub(crate) fn handle(&mut self, sched: &mut Scheduler<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Create { flow } => {
                self.timer.switch(Phase::Create);
                self.on_create(sched, flow);
            }
            Ev::Arrive { node, slot } => {
                self.timer.switch(Phase::Arrive);
                self.process_at(sched, node, slot);
            }
            Ev::Release { node, slot } => {
                self.timer.switch(Phase::Release);
                self.on_release(sched, node, slot);
            }
        }
        // Time between here and the next dispatch is the engine's own
        // pop/peek/heap work.
        self.timer.switch(Phase::EngineLoop);
    }

    fn on_create(&mut self, sched: &mut Scheduler<'_, Ev>, flow: FlowId) {
        let i = flow.index();
        let source = self.sim.sources[i];
        self.seq[i] += 1;
        let id = if self.preassigned.is_empty() {
            // Serial: ids follow global event order; the next creation is
            // sampled lazily from the flow's traffic stream. Truth is
            // recorded as it happens.
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            id
        } else {
            // Sharded: the presampling pass fixed every creation instant
            // and packet id up front (and recorded truth globally); the
            // cursor replays them and schedules the flow's next creation.
            let cursor = &mut self.preassigned[i];
            let (at, id) = cursor.current();
            debug_assert_eq!(at, sched.now(), "cursor must replay the schedule");
            if let Some((next_at, _)) = cursor.advance() {
                let prev = self.timer.switch(Phase::QueuePush);
                sched
                    .schedule_at(next_at, Ev::Create { flow })
                    .expect("creation schedules are time-ordered");
                self.timer.switch(prev);
            }
            id
        };
        let reading = self.reading_rng.sample_uniform(0.0, 100.0);
        let slot = self.store.alloc(id, flow, source, sched.now(), reading);
        if self.preassigned.is_empty() {
            self.truth.push(TruthRecord {
                packet: id,
                flow,
                created_at: sched.now(),
            });
        }
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_packet(
            sched.now(),
            PacketEvent::Created {
                packet: id.0,
                flow: i,
                node: source.index(),
            },
        );
        self.timer.switch(prev);
        if self.preassigned.is_empty()
            && matches!(self.sim.workload, Workload::Model(_))
            && self.seq[i] < self.sim.packets_per_source
        {
            let gap = self.traffic_samplers[i].next_interarrival(&mut self.traffic_rngs[i]);
            let prev = self.timer.switch(Phase::QueuePush);
            sched.schedule_in(gap, Ev::Create { flow });
            self.timer.switch(prev);
        }
        self.process_at(sched, source, slot);
    }

    /// A packet is now present at `node`: deliver, forward, or buffer.
    #[inline]
    fn process_at(&mut self, sched: &mut Scheduler<'_, Ev>, node: NodeId, slot: u32) {
        if node == self.sink {
            self.deliver(sched.now(), slot);
            return;
        }
        // Threshold mixes batch instead of delaying: the delay plan is
        // ignored at mix nodes.
        if let BufferPolicy::ThresholdMix { threshold } = self.sim.buffer_policy {
            let prev = self.timer.switch(Phase::Probe);
            self.probe.on_arrival(node.index(), sched.now());
            self.probe.on_packet(
                sched.now(),
                PacketEvent::Enqueued {
                    packet: self.store.pid(slot).0,
                    flow: self.store.flow(slot).index(),
                    node: node.index(),
                },
            );
            self.timer.switch(prev);
            self.store.park(slot, sched.now(), SimTime::MAX, None);
            self.buffers[node.index()].insert(&self.store, slot);
            let depth = self.buffers[node.index()].len() as u64;
            self.occupancy[node.index()].transition(sched.now(), depth);
            let prev = self.timer.switch(Phase::Probe);
            self.probe.on_occupancy(node.index(), sched.now(), depth);
            self.timer.switch(prev);
            if self.buffers[node.index()].len() >= threshold {
                self.flushes[node.index()] += 1;
                let batch = self.buffers[node.index()].len() as u64;
                let prev = self.timer.switch(Phase::Probe);
                self.probe.on_flush(node.index(), sched.now(), batch);
                self.timer.switch(prev);
                let mut scratch = std::mem::take(&mut self.mix_scratch);
                self.buffers[node.index()].drain_slots_into(&mut scratch);
                for batched in scratch.drain(..) {
                    self.forward(sched, node, batched);
                }
                self.mix_scratch = scratch;
                self.occupancy[node.index()].transition(sched.now(), 0);
                let prev = self.timer.switch(Phase::Probe);
                self.probe.on_occupancy(node.index(), sched.now(), 0);
                self.timer.switch(prev);
            }
            return;
        }
        let strategy = self.strategies[node.index()];
        if strategy.is_none() {
            self.forward(sched, node, slot);
            return;
        }
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_arrival(node.index(), sched.now());
        self.timer.switch(prev);
        let delay = strategy.sample(&mut self.delay_rngs[node.index()]);
        // Full buffer? Apply the policy before inserting.
        if let Some(cap) = self.capacity {
            if self.buffers[node.index()].len() >= cap {
                match self.sim.buffer_policy {
                    BufferPolicy::DropTail { .. } => {
                        self.drops[node.index()] += 1;
                        let prev = self.timer.switch(Phase::Probe);
                        self.probe.on_drop(node.index(), sched.now());
                        self.probe.on_packet(
                            sched.now(),
                            PacketEvent::Dropped {
                                packet: self.store.pid(slot).0,
                                flow: self.store.flow(slot).index(),
                                node: node.index(),
                            },
                        );
                        self.timer.switch(prev);
                        self.store.release(slot);
                        return;
                    }
                    BufferPolicy::Rcad { victim, .. } => {
                        let prev = self.timer.switch(Phase::VictimSelect);
                        let victim_id = self.buffers[node.index()]
                            .select_victim(victim, &mut self.victim_rng)
                            .expect("full buffer has a victim");
                        let victim_slot = self.buffers[node.index()]
                            .remove(&self.store, victim_id)
                            .expect("victim is buffered");
                        let timer = self
                            .store
                            .timer(victim_slot)
                            .expect("timed entries outside mixes");
                        let cancelled = sched.cancel(timer);
                        debug_assert!(cancelled, "victim timer must be pending");
                        self.timer.switch(prev);
                        self.preemptions[node.index()] += 1;
                        let prev = self.timer.switch(Phase::Probe);
                        self.probe.on_preemption(node.index(), sched.now());
                        self.probe.on_packet(
                            sched.now(),
                            PacketEvent::Preempted {
                                packet: victim_id.0,
                                flow: self.store.flow(victim_slot).index(),
                                node: node.index(),
                                victim_policy: victim.name(),
                            },
                        );
                        self.timer.switch(prev);
                        let depth = self.buffers[node.index()].len() as u64;
                        self.occupancy[node.index()].transition(sched.now(), depth);
                        let prev = self.timer.switch(Phase::Probe);
                        self.probe.on_occupancy(node.index(), sched.now(), depth);
                        self.timer.switch(prev);
                        // "Transmit it immediately rather than drop packets."
                        self.forward(sched, node, victim_slot);
                    }
                    _ => unreachable!("mix and unlimited never hit the full-buffer path"),
                }
            }
        }
        let release_at = sched.now() + delay;
        let prev = self.timer.switch(Phase::QueuePush);
        let timer = sched.schedule_in(delay, Ev::Release { node, slot });
        self.timer.switch(prev);
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_packet(
            sched.now(),
            PacketEvent::Enqueued {
                packet: self.store.pid(slot).0,
                flow: self.store.flow(slot).index(),
                node: node.index(),
            },
        );
        self.timer.switch(prev);
        self.store.park(slot, sched.now(), release_at, Some(timer));
        self.buffers[node.index()].insert(&self.store, slot);
        let depth = self.buffers[node.index()].len() as u64;
        self.occupancy[node.index()].transition(sched.now(), depth);
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_occupancy(node.index(), sched.now(), depth);
        self.timer.switch(prev);
    }

    #[inline]
    fn on_release(&mut self, sched: &mut Scheduler<'_, Ev>, node: NodeId, slot: u32) {
        let pid = self.store.pid(slot);
        let removed = self.buffers[node.index()]
            .remove(&self.store, pid)
            .expect("release timers fire only for buffered packets");
        debug_assert_eq!(removed, slot, "buffer entry must map back to its slot");
        let depth = self.buffers[node.index()].len() as u64;
        self.occupancy[node.index()].transition(sched.now(), depth);
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_occupancy(node.index(), sched.now(), depth);
        self.timer.switch(prev);
        self.forward(sched, node, slot);
    }

    #[inline]
    fn forward(&mut self, sched: &mut Scheduler<'_, Ev>, node: NodeId, slot: u32) {
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_packet(
            sched.now(),
            PacketEvent::Departed {
                packet: self.store.pid(slot).0,
                flow: self.store.flow(slot).index(),
                node: node.index(),
            },
        );
        self.timer.switch(prev);
        self.store.record_hop(slot);
        let next = self
            .sim
            .routing
            .next_hop(node)
            .expect("non-sink nodes have a next hop");
        self.tx_count[node.index()] += 1;
        match self.sim.link.transmit(&mut self.link_rng) {
            Some(delay) => {
                if let Some(shard_of) = self.shard_of {
                    if shard_of[next.index()] != self.my_shard {
                        // Crossing a shard boundary: ship the packet's
                        // columns; the receiving shard re-materializes it
                        // and counts the reception.
                        self.handoffs_out += 1;
                        self.outbox.push(crate::sharded::Handoff {
                            at: sched.now() + delay,
                            node: next,
                            pid: self.store.pid(slot),
                            flow: self.store.flow(slot),
                            origin: self.store.origin(slot),
                            hop_count: self.store.hop_count(slot),
                            created_at: self.store.created_at(slot),
                        });
                        self.store.release(slot);
                        return;
                    }
                }
                self.rx_count[next.index()] += 1;
                let prev = self.timer.switch(Phase::QueuePush);
                sched.schedule_in(delay, Ev::Arrive { node: next, slot });
                self.timer.switch(prev);
            }
            None => {
                self.link_losses += 1;
                self.store.release(slot);
            }
        }
    }

    #[inline]
    fn deliver(&mut self, now: SimTime, slot: u32) {
        let flow = self.store.flow(slot);
        let pid = self.store.pid(slot);
        let created = self.store.created_at(slot);
        let latency = (now - created).as_units();
        self.latency[flow.index()].record(latency);
        self.latency_hist[flow.index()].record(latency);
        self.delivered[flow.index()] += 1;
        let prev = self.timer.switch(Phase::Probe);
        self.probe.on_delivery(flow.index(), now, latency);
        self.probe.on_packet(
            now,
            PacketEvent::ArrivedAtSink {
                packet: pid.0,
                flow: flow.index(),
                node: self.sim.routing.sink().index(),
            },
        );
        self.timer.switch(prev);
        self.observations.push(Observation {
            arrival: now,
            origin: self.store.origin(slot),
            hop_count: self.store.hop_count(slot),
            flow,
            packet: pid,
        });
        self.store.release(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::VictimPolicy;
    use tempriv_net::convergecast::Convergecast;
    use tempriv_net::topology::Topology;

    fn line_sim(hops: u32) -> NetworkSimulationBuilder {
        let topo = Topology::line(hops as usize + 1);
        let routing = RoutingTree::shortest_path(&topo, NodeId(0)).unwrap();
        NetworkSimulation::builder(routing, vec![NodeId(hops)])
    }

    #[test]
    fn no_delay_latency_is_exactly_hops_tau() {
        let sim = line_sim(15)
            .delay_plan(DelayPlan::no_delay())
            .buffer_policy(BufferPolicy::Unlimited)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(100)
            .build()
            .unwrap();
        let out = sim.run();
        assert_eq!(out.total_delivered(), 100);
        let lat = &out.flows[0].latency;
        assert!((lat.mean() - 15.0).abs() < 1e-9, "latency {}", lat.mean());
        assert!(lat.population_variance() < 1e-12);
        assert_eq!(out.total_preemptions(), 0);
    }

    #[test]
    fn unlimited_buffer_latency_matches_h_tau_plus_delay() {
        let sim = line_sim(15)
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(2000)
            .build()
            .unwrap();
        let out = sim.run();
        assert_eq!(out.total_delivered(), 2000);
        // Expected: 15 * (1 + 30) = 465, sd of mean ~ sqrt(15*900/2000) ~ 2.6.
        let mean = out.flows[0].latency.mean();
        assert!((mean - 465.0).abs() < 10.0, "latency {mean}");
        assert_eq!(out.total_preemptions(), 0);
        assert_eq!(out.total_drops(), 0);
    }

    #[test]
    fn hop_count_in_observations_matches_route() {
        let sim = line_sim(7).packets_per_source(10).build().unwrap();
        let out = sim.run();
        for obs in &out.observations {
            assert_eq!(obs.hop_count, 7);
            assert_eq!(obs.origin, NodeId(7));
        }
    }

    #[test]
    fn rcad_never_drops() {
        let sim = line_sim(10)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(500)
            .buffer_policy(BufferPolicy::Rcad {
                capacity: 5,
                victim: VictimPolicy::ShortestRemaining,
            })
            .build()
            .unwrap();
        let out = sim.run();
        assert_eq!(out.total_delivered(), 500);
        assert!(out.total_preemptions() > 0, "rho = 15 >> 5 must preempt");
        assert_eq!(out.total_drops(), 0);
    }

    #[test]
    fn drop_tail_loses_packets_at_saturation() {
        let sim = line_sim(10)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(500)
            .buffer_policy(BufferPolicy::DropTail { capacity: 5 })
            .build()
            .unwrap();
        let out = sim.run();
        assert!(out.total_drops() > 0);
        assert!(out.total_delivered() < 500);
        assert_eq!(
            out.total_delivered() + out.total_drops(),
            500,
            "every packet is delivered or dropped"
        );
    }

    #[test]
    fn rcad_caps_occupancy_at_capacity() {
        let sim = line_sim(5)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(300)
            .buffer_policy(BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::ShortestRemaining,
            })
            .build()
            .unwrap();
        let out = sim.run();
        for node in &out.nodes {
            assert!(
                node.peak_occupancy <= 10,
                "node {} peak {}",
                node.node,
                node.peak_occupancy
            );
        }
    }

    #[test]
    fn rcad_reduces_latency_under_saturation() {
        let base = line_sim(15)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(1000);
        let unlimited = base
            .clone()
            .buffer_policy(BufferPolicy::Unlimited)
            .build()
            .unwrap()
            .run();
        let rcad = base
            .buffer_policy(BufferPolicy::paper_rcad())
            .build()
            .unwrap()
            .run();
        let lu = unlimited.flows[0].latency.mean();
        let lr = rcad.flows[0].latency.mean();
        assert!(
            lr < 0.8 * lu,
            "RCAD latency {lr} should sit well below unlimited {lu}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let layout = Convergecast::paper_figure1();
            NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
                .traffic(TrafficModel::periodic(4.0))
                .packets_per_source(200)
                .seed(42)
                .build()
                .unwrap()
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a, b);
    }

    #[test]
    fn profiler_is_invisible_to_the_simulation() {
        // The phase timer must not perturb the run: identical outcome,
        // identical RNG draw counts, yet a non-trivial phase breakdown.
        let build = || {
            let layout = Convergecast::paper_figure1();
            NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
                .traffic(TrafficModel::periodic(2.0))
                .packets_per_source(150)
                .seed(7)
                .build()
                .unwrap()
        };
        let plain = build().run();
        let mut profiler = tempriv_telemetry::PhaseProfiler::with_batch(8);
        let profiled = build().run_profiled(&mut NullProbe, &mut profiler);
        assert_eq!(plain, profiled);
        assert_eq!(plain.rng_draws, profiled.rng_draws);
        let breakdown = profiler.finish();
        assert!(breakdown.total_secs >= 0.0);
        let dispatched: u64 = breakdown
            .phases
            .iter()
            .filter(|p| p.phase != "engine_loop")
            .map(|p| p.count)
            .sum();
        assert!(dispatched > 0, "switch sites must have fired");
    }

    #[test]
    fn different_seeds_differ() {
        let layout = Convergecast::paper_figure1();
        let mk = |seed| {
            NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
                .packets_per_source(100)
                .seed(seed)
                .build()
                .unwrap()
                .run()
        };
        assert_ne!(mk(1).observations, mk(2).observations);
    }

    #[test]
    fn figure1_all_flows_deliver_everything_under_rcad() {
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(300)
            .build()
            .unwrap();
        let out = sim.run();
        for f in &out.flows {
            assert_eq!(f.delivered, 300, "flow {}", f.flow);
            assert_eq!(f.delivery_ratio(), 1.0);
        }
        // Trunk nodes (ids 1..=8) carry 4x traffic: they must preempt.
        let trunk_preempt: u64 = (1..=8).map(|i| out.nodes[i].preemptions).sum();
        assert!(trunk_preempt > 0);
    }

    #[test]
    fn lossy_links_lose_packets() {
        let sim = line_sim(5)
            .link(LinkModel::paper_default().with_loss(0.05))
            .packets_per_source(500)
            .build()
            .unwrap();
        let out = sim.run();
        assert!(out.link_losses > 0);
        assert_eq!(out.total_delivered() + out.link_losses, 500);
    }

    #[test]
    fn adversary_knowledge_reflects_configuration() {
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .build()
            .unwrap();
        let k = sim.adversary_knowledge();
        assert_eq!(k.flow_hops, vec![15, 22, 9, 11]);
        assert_eq!(k.tau, 1.0);
        assert_eq!(k.delay_mean, 30.0);
        assert_eq!(k.buffer_slots, Some(10));
        assert_eq!(k.converging_flows.len(), 4);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let topo = Topology::line(3);
        let routing = RoutingTree::shortest_path(&topo, NodeId(0)).unwrap();
        assert!(matches!(
            NetworkSimulation::builder(routing.clone(), vec![]).build(),
            Err(BuildError::NoSources)
        ));
        assert!(matches!(
            NetworkSimulation::builder(routing.clone(), vec![NodeId(0)]).build(),
            Err(BuildError::SourceIsSink { .. })
        ));
        assert!(matches!(
            NetworkSimulation::builder(routing.clone(), vec![NodeId(9)]).build(),
            Err(BuildError::UnknownSource { .. })
        ));
        assert!(matches!(
            NetworkSimulation::builder(routing.clone(), vec![NodeId(2)])
                .packets_per_source(0)
                .build(),
            Err(BuildError::NoPackets)
        ));
        assert!(matches!(
            NetworkSimulation::builder(routing, vec![NodeId(2)])
                .buffer_policy(BufferPolicy::DropTail { capacity: 0 })
                .build(),
            Err(BuildError::InvalidBuffer { .. })
        ));
    }

    #[test]
    fn explicit_schedules_drive_creation_times() {
        let topo = Topology::line(4);
        let routing = RoutingTree::shortest_path(&topo, NodeId(0)).unwrap();
        let schedule = vec![
            SimTime::from_units(5.0),
            SimTime::from_units(9.0),
            SimTime::from_units(50.0),
        ];
        let sim = NetworkSimulation::builder(routing, vec![NodeId(3)])
            .schedules(vec![schedule.clone()])
            .delay_plan(DelayPlan::no_delay())
            .buffer_policy(BufferPolicy::Unlimited)
            .build()
            .unwrap();
        let out = sim.run();
        assert_eq!(out.flows[0].created, 3);
        assert_eq!(out.total_delivered(), 3);
        let created: Vec<SimTime> = out.truth.iter().map(|t| t.created_at).collect();
        assert_eq!(created, schedule);
        // With no delay, arrivals follow creations by exactly h*tau = 3.
        for obs in &out.observations {
            let truth = out.creation_time(obs.packet);
            assert_eq!(
                obs.arrival - truth,
                tempriv_sim::time::SimDuration::from_units(3.0)
            );
        }
    }

    #[test]
    fn schedule_mismatch_rejected() {
        let topo = Topology::line(3);
        let routing = RoutingTree::shortest_path(&topo, NodeId(0)).unwrap();
        let err = NetworkSimulation::builder(routing.clone(), vec![NodeId(2)])
            .schedules(vec![])
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::ScheduleMismatch { .. }));
        let err = NetworkSimulation::builder(routing, vec![NodeId(2)])
            .schedules(vec![vec![]])
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::NoPackets));
    }

    #[test]
    fn threshold_mix_batches_and_strands() {
        let sim = line_sim(3)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(100)
            .buffer_policy(BufferPolicy::ThresholdMix { threshold: 8 })
            .build()
            .unwrap();
        let out = sim.run();
        // 100 packets in batches of 8: 12 full batches per node; the
        // remaining 4 strand at the first mix node.
        assert!(out.total_flushes() > 0);
        assert_eq!(
            out.total_delivered() + out.total_stranded(),
            100,
            "mix conservation"
        );
        assert!(out.total_stranded() > 0 && out.total_stranded() < 8);
        assert_eq!(out.total_preemptions(), 0);
        assert_eq!(out.total_drops(), 0);
        // Peak occupancy equals the threshold at flush instants.
        assert!(out.nodes.iter().any(|n| n.peak_occupancy == 8));
        assert!(out.nodes.iter().all(|n| n.peak_occupancy <= 8));
    }

    #[test]
    fn threshold_one_mix_is_immediate_forwarding() {
        let sim = line_sim(5)
            .traffic(TrafficModel::periodic(3.0))
            .packets_per_source(50)
            .buffer_policy(BufferPolicy::ThresholdMix { threshold: 1 })
            .build()
            .unwrap();
        let out = sim.run();
        assert_eq!(out.total_delivered(), 50);
        assert_eq!(out.total_stranded(), 0);
        // Latency is exactly h*tau: every batch flushes instantly.
        assert!((out.flows[0].latency.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mix_batch_members_arrive_together() {
        let sim = line_sim(1)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(40)
            .buffer_policy(BufferPolicy::ThresholdMix { threshold: 5 })
            .build()
            .unwrap();
        let out = sim.run();
        // Arrivals come in bursts of 5 sharing one arrival instant.
        let mut by_time: std::collections::BTreeMap<_, usize> = Default::default();
        for obs in &out.observations {
            *by_time.entry(obs.arrival).or_default() += 1;
        }
        assert!(by_time.values().all(|&c| c == 5), "{by_time:?}");
    }

    #[test]
    fn energy_accounting_counts_every_hop() {
        use tempriv_net::energy::EnergyModel;
        let sim = line_sim(5)
            .traffic(TrafficModel::periodic(4.0))
            .packets_per_source(100)
            .delay_plan(DelayPlan::shared_exponential(10.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .build()
            .unwrap();
        let out = sim.run();
        // 100 packets x 5 hops: 500 transmissions; the sink receives 100
        // of the 500 receptions.
        let tx: u64 = out.nodes.iter().map(|n| n.transmissions).sum();
        let rx: u64 = out.nodes.iter().map(|n| n.receptions).sum();
        assert_eq!(tx, 500);
        assert_eq!(rx, 500);
        assert_eq!(out.nodes[0].receptions, 100); // the sink
        assert_eq!(out.nodes[0].transmissions, 0);
        let model = EnergyModel::mica2();
        let expected = 500.0 * (model.tx_cost + model.rx_cost);
        assert!((out.total_energy(&model) - expected).abs() < 1e-9);
        assert!((out.energy_per_delivered(&model) - expected / 100.0).abs() < 1e-9);
    }

    #[test]
    fn delays_cost_no_extra_energy_but_drops_waste_it() {
        use tempriv_net::energy::EnergyModel;
        let model = EnergyModel::mica2();
        let base = line_sim(10)
            .traffic(TrafficModel::periodic(2.0))
            .packets_per_source(300);
        let no_delay = base
            .clone()
            .delay_plan(DelayPlan::no_delay())
            .buffer_policy(BufferPolicy::Unlimited)
            .build()
            .unwrap()
            .run();
        let rcad = base
            .clone()
            .buffer_policy(BufferPolicy::paper_rcad())
            .build()
            .unwrap()
            .run();
        let droptail = base
            .buffer_policy(BufferPolicy::DropTail { capacity: 10 })
            .build()
            .unwrap()
            .run();
        // RCAD delivers everything with exactly the no-delay energy.
        assert_eq!(no_delay.total_energy(&model), rcad.total_energy(&model));
        assert_eq!(
            no_delay.energy_per_delivered(&model),
            rcad.energy_per_delivered(&model)
        );
        // Drop-tail wastes the upstream transmissions of dropped packets.
        assert!(droptail.total_drops() > 0);
        assert!(
            droptail.energy_per_delivered(&model) > rcad.energy_per_delivered(&model),
            "droptail {} vs rcad {}",
            droptail.energy_per_delivered(&model),
            rcad.energy_per_delivered(&model)
        );
    }

    #[test]
    fn latency_percentiles_are_consistent() {
        let sim = line_sim(15)
            .traffic(TrafficModel::periodic(4.0))
            .packets_per_source(2000)
            .delay_plan(DelayPlan::shared_exponential(30.0))
            .buffer_policy(BufferPolicy::Unlimited)
            .build()
            .unwrap();
        let out = sim.run();
        let flow = &out.flows[0];
        let p50 = flow.latency_p50().unwrap();
        let p95 = flow.latency_p95().unwrap();
        // Erlang(15) latency: median below mean, p95 well above.
        assert!(
            p50 < flow.latency.mean(),
            "p50 {p50} vs mean {}",
            flow.latency.mean()
        );
        assert!(p95 > flow.latency.mean());
        assert!(p50 >= 15.0, "nothing beats h*tau");
        // Analytic p95 of 15 * (tau + Exp(30)) is ~672; allow slack for
        // histogram resolution.
        assert!((p95 - 672.0).abs() < 40.0, "p95 {p95}");
    }

    #[test]
    fn custom_latency_range_applies() {
        let sim = line_sim(3)
            .packets_per_source(50)
            .delay_plan(DelayPlan::no_delay())
            .buffer_policy(BufferPolicy::Unlimited)
            .latency_range(0.0, 10.0)
            .build()
            .unwrap();
        let out = sim.run();
        // All latencies are exactly 3: well inside the custom range.
        assert_eq!(out.flows[0].latency_histogram.overflow(), 0);
        assert!((out.flows[0].latency_p50().unwrap() - 3.0).abs() < 0.1);
        // Degenerate range is rejected.
        let err = line_sim(3).latency_range(5.0, 5.0).build().unwrap_err();
        assert!(matches!(err, BuildError::InvalidBuffer { .. }));
    }

    #[test]
    fn observations_arrive_in_time_order() {
        let layout = Convergecast::paper_figure1();
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .packets_per_source(200)
            .build()
            .unwrap();
        let out = sim.run();
        for w in out.observations.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }
}

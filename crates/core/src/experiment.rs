//! Experiment sweeps — the code behind every figure.
//!
//! Each paper figure is a sweep over the source inter-arrival time `1/λ`
//! (2 … 20 time units). The functions here run the corresponding
//! scenarios, score the adversaries, and return plain rows ready for
//! printing or CSV export. Sweep points are independent simulations and
//! run as jobs on the [`tempriv_runtime`] worker pool: every sweep has a
//! `*_with` variant taking an explicit [`Runtime`], through which callers
//! inject worker counts, result caches, run manifests, and progress
//! observers. The plain variants run on a machine-sized runtime with an
//! in-memory cache.

use serde::{Deserialize, Serialize};
use tempriv_net::ids::FlowId;
use tempriv_net::traffic::TrafficModel;
use tempriv_runtime::{content_digest, Runtime, WorkerPool};

use crate::adversary::{
    AdaptiveAdversary, BaselineAdversary, RouteAwareAdversary, WindowedAdaptiveAdversary,
};
use crate::buffer::{BufferPolicy, VictimPolicy};
use crate::config::{ExperimentConfig, LayoutSpec};
use crate::decomposition::{decomposed_plan, DecompositionShape};
use crate::delay::{DelayPlan, DelayStrategy};
use crate::metrics::evaluate_adversary;
use crate::telemetry::JobTelemetryCollector;

/// Common sweep parameters (defaults = the paper's §5.2 setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepParams {
    /// Inter-arrival times `1/λ` to sweep.
    pub inv_lambdas: Vec<f64>,
    /// Packets per source per run.
    pub packets_per_source: u32,
    /// Mean artificial delay per hop, `1/μ`.
    pub delay_mean: f64,
    /// Buffer slots for the limited-buffer scenarios.
    pub capacity: usize,
    /// The flow reported in the figures (the paper reports S1).
    pub report_flow: FlowId,
    /// Master seed; each sweep point derives its own.
    pub seed: u64,
}

impl SweepParams {
    /// The paper's sweep: `1/λ ∈ {2, 4, …, 20}`, 1000 packets/source,
    /// `1/μ = 30`, 10 slots, reporting flow S1.
    #[must_use]
    pub fn paper_default() -> Self {
        SweepParams {
            inv_lambdas: (1..=10).map(|i| 2.0 * f64::from(i)).collect(),
            packets_per_source: 1000,
            delay_mean: 30.0,
            capacity: 10,
            report_flow: FlowId(0),
            seed: 2007,
        }
    }

    /// A smaller, faster sweep for tests and smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        SweepParams {
            inv_lambdas: vec![2.0, 10.0, 20.0],
            packets_per_source: 300,
            ..SweepParams::paper_default()
        }
    }

    fn config(&self, inv_lambda: f64) -> ExperimentConfig {
        ExperimentConfig {
            layout: LayoutSpec::PaperFigure1,
            traffic: TrafficModel::periodic(inv_lambda),
            packets_per_source: self.packets_per_source,
            delay: DelayPlan::shared_exponential(self.delay_mean),
            buffer: BufferPolicy::Rcad {
                capacity: self.capacity,
                victim: VictimPolicy::ShortestRemaining,
            },
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed: self.seed ^ inv_lambda.to_bits(),
        }
    }

    /// Canonical JSON of these parameters — the `params_json` recorded in
    /// run-manifest headers and folded into every job's cache key.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("sweep params serialize")
    }
}

/// A machine-sized runtime with an in-memory cache — what the plain sweep
/// functions run on.
fn default_runtime() -> Runtime {
    Runtime::new(WorkerPool::new())
}

/// Cache key of one sweep job: digest over the experiment kind, the full
/// parameter JSON, and the job's own tag (its point within the sweep).
/// Anything that can change a job's output must be in here.
fn job_key(experiment: &str, params_json: &str, job_tag: &str) -> String {
    content_digest(format!("{experiment}|{params_json}|{job_tag}").as_bytes())
}

/// Exact (bit-level) tag of a sweep point, so cache keys never go through
/// lossy float formatting.
fn point_tag(inv_lambda: f64) -> String {
    format!("inv_lambda={:016x}", inv_lambda.to_bits())
}

/// Privacy and overhead of one scenario at one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMetrics {
    /// Adversary MSE on the reported flow (time units squared).
    pub mse: f64,
    /// Mean end-to-end latency of the reported flow (time units).
    pub mean_latency: f64,
}

/// One row of Figure 2 (both panels share the sweep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// Case 1: no artificial delay.
    pub no_delay: ScenarioMetrics,
    /// Case 2: exponential delay, unlimited buffers.
    pub unlimited: ScenarioMetrics,
    /// Case 3: exponential delay, limited buffers with RCAD.
    pub rcad: ScenarioMetrics,
}

/// One row of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// MSE of the baseline adversary under RCAD.
    pub baseline_mse: f64,
    /// MSE of the adaptive adversary under RCAD.
    pub adaptive_mse: f64,
}

fn run_point(
    cfg: &ExperimentConfig,
    report_flow: FlowId,
    telemetry: &mut JobTelemetryCollector<'_>,
    label: &str,
) -> ScenarioMetrics {
    let sim = cfg.build().expect("sweep configs are valid");
    let outcome = telemetry.run(&sim, label);
    let knowledge = sim.adversary_knowledge();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
    ScenarioMetrics {
        mse: report.mse(report_flow),
        mean_latency: outcome.flows[report_flow.index()].latency.mean(),
    }
}

/// Regenerates Figure 2 (both panels): MSE and latency versus `1/λ` for
/// the three scenarios — no delay, delay with unlimited buffers, and
/// delay with limited buffers (RCAD).
#[must_use]
pub fn fig2_sweep(params: &SweepParams) -> Vec<Fig2Row> {
    fig2_sweep_with(params, &default_runtime())
}

/// [`fig2_sweep`] on an explicit runtime.
#[must_use]
pub fn fig2_sweep_with(params: &SweepParams, runtime: &Runtime) -> Vec<Fig2Row> {
    let params_json = params.canonical_json();
    let keys: Vec<String> = params
        .inv_lambdas
        .iter()
        .map(|&l| job_key("fig2", &params_json, &point_tag(l)))
        .collect();
    runtime.run("fig2", &params_json, &keys, |i| {
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let inv_lambda = params.inv_lambdas[i];
        let base = params.config(inv_lambda);

        let mut no_delay = base.clone();
        no_delay.delay = DelayPlan::no_delay();
        no_delay.buffer = BufferPolicy::Unlimited;

        let mut unlimited = base.clone();
        unlimited.buffer = BufferPolicy::Unlimited;

        let rcad = base;

        let row = Fig2Row {
            inv_lambda,
            no_delay: run_point(&no_delay, params.report_flow, &mut telemetry, "no_delay"),
            unlimited: run_point(&unlimited, params.report_flow, &mut telemetry, "unlimited"),
            rcad: run_point(&rcad, params.report_flow, &mut telemetry, "rcad"),
        };
        telemetry.finish();
        row
    })
}

/// Regenerates Figure 3: baseline versus adaptive adversary MSE under
/// RCAD, versus `1/λ`.
#[must_use]
pub fn fig3_sweep(params: &SweepParams) -> Vec<Fig3Row> {
    fig3_sweep_with(params, &default_runtime())
}

/// [`fig3_sweep`] on an explicit runtime.
#[must_use]
pub fn fig3_sweep_with(params: &SweepParams, runtime: &Runtime) -> Vec<Fig3Row> {
    let params_json = params.canonical_json();
    let keys: Vec<String> = params
        .inv_lambdas
        .iter()
        .map(|&l| job_key("fig3", &params_json, &point_tag(l)))
        .collect();
    runtime.run("fig3", &params_json, &keys, |i| {
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let inv_lambda = params.inv_lambdas[i];
        let cfg = params.config(inv_lambda);
        let sim = cfg.build().expect("sweep configs are valid");
        let outcome = telemetry.run(&sim, "rcad");
        let knowledge = sim.adversary_knowledge();
        let baseline = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
        let adaptive =
            evaluate_adversary(&outcome, &AdaptiveAdversary::paper_default(), &knowledge);
        telemetry.finish();
        Fig3Row {
            inv_lambda,
            baseline_mse: baseline.mse(params.report_flow),
            adaptive_mse: adaptive.mse(params.report_flow),
        }
    })
}

/// One row of the adversary-panel extension experiment (E1): every
/// shipped adversary scored on the same RCAD run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPanelRow {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// MSE of the baseline adversary (§2.1).
    pub baseline_mse: f64,
    /// MSE of the paper's adaptive adversary (§5.4).
    pub adaptive_mse: f64,
    /// MSE of the route-aware extension adversary.
    pub route_aware_mse: f64,
    /// MSE of the calibration oracle (= latency variance; the floor for
    /// constant-offset estimators).
    pub oracle_mse: f64,
}

/// Extension E1: the full adversary hierarchy under RCAD. Expected
/// ordering at high traffic: baseline ≥ adaptive ≥ route-aware ≥ oracle.
#[must_use]
pub fn adversary_panel_sweep(params: &SweepParams) -> Vec<AdversaryPanelRow> {
    adversary_panel_sweep_with(params, &default_runtime())
}

/// [`adversary_panel_sweep`] on an explicit runtime.
#[must_use]
pub fn adversary_panel_sweep_with(
    params: &SweepParams,
    runtime: &Runtime,
) -> Vec<AdversaryPanelRow> {
    let params_json = params.canonical_json();
    let keys: Vec<String> = params
        .inv_lambdas
        .iter()
        .map(|&l| job_key("adversary-panel", &params_json, &point_tag(l)))
        .collect();
    runtime.run("adversary-panel", &params_json, &keys, |i| {
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let inv_lambda = params.inv_lambdas[i];
        let cfg = params.config(inv_lambda);
        let sim = cfg.build().expect("sweep configs are valid");
        let outcome = telemetry.run(&sim, "rcad");
        telemetry.finish();
        let knowledge = sim.adversary_knowledge();
        let flow = params.report_flow;
        let oracle = outcome.oracle();
        AdversaryPanelRow {
            inv_lambda,
            baseline_mse: evaluate_adversary(&outcome, &BaselineAdversary, &knowledge).mse(flow),
            adaptive_mse: evaluate_adversary(
                &outcome,
                &AdaptiveAdversary::paper_default(),
                &knowledge,
            )
            .mse(flow),
            route_aware_mse: evaluate_adversary(
                &outcome,
                &RouteAwareAdversary::paper_default(),
                &knowledge,
            )
            .mse(flow),
            oracle_mse: evaluate_adversary(&outcome, &oracle, &knowledge).mse(flow),
        }
    })
}

/// One row of the victim-policy ablation (A1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VictimAblationRow {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// The victim policy measured.
    pub victim: VictimPolicy,
    /// Baseline-adversary MSE on the reported flow.
    pub mse: f64,
    /// Mean latency of the reported flow.
    pub mean_latency: f64,
    /// Total preemptions across the network.
    pub preemptions: u64,
}

/// Ablation A1: how the victim-selection rule changes privacy/latency.
#[must_use]
pub fn victim_ablation_sweep(params: &SweepParams) -> Vec<VictimAblationRow> {
    victim_ablation_sweep_with(params, &default_runtime())
}

/// [`victim_ablation_sweep`] on an explicit runtime. The four policies ×
/// all sweep points form one flat job list, so the pool stays busy across
/// the policy boundary; rows stay policy-major as before.
#[must_use]
pub fn victim_ablation_sweep_with(
    params: &SweepParams,
    runtime: &Runtime,
) -> Vec<VictimAblationRow> {
    let policies = [
        VictimPolicy::ShortestRemaining,
        VictimPolicy::LongestRemaining,
        VictimPolicy::Random,
        VictimPolicy::Oldest,
    ];
    let cases: Vec<(VictimPolicy, f64)> = policies
        .iter()
        .flat_map(|&victim| params.inv_lambdas.iter().map(move |&l| (victim, l)))
        .collect();
    let params_json = params.canonical_json();
    let keys: Vec<String> = cases
        .iter()
        .map(|(victim, l)| {
            job_key(
                "victim-ablation",
                &params_json,
                &format!("victim={victim:?}|{}", point_tag(*l)),
            )
        })
        .collect();
    runtime.run("victim-ablation", &params_json, &keys, |i| {
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let (victim, inv_lambda) = cases[i];
        let mut cfg = params.config(inv_lambda);
        cfg.buffer = BufferPolicy::Rcad {
            capacity: params.capacity,
            victim,
        };
        let sim = cfg.build().expect("sweep configs are valid");
        let outcome = telemetry.run(&sim, &format!("victim={victim:?}"));
        telemetry.finish();
        let knowledge = sim.adversary_knowledge();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
        VictimAblationRow {
            inv_lambda,
            victim,
            mse: report.mse(params.report_flow),
            mean_latency: outcome.flows[params.report_flow.index()].latency.mean(),
            preemptions: outcome.total_preemptions(),
        }
    })
}

/// One row of the delay-distribution ablation (A2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayAblationRow {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// Short label of the delay distribution.
    pub distribution: DelayDistributionKind,
    /// Baseline-adversary MSE on the reported flow.
    pub mse: f64,
    /// Mean latency of the reported flow.
    pub mean_latency: f64,
}

/// Delay distribution under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayDistributionKind {
    /// Exponential (the paper's max-entropy choice).
    Exponential,
    /// Uniform on `[0, 2/μ]`.
    Uniform,
    /// Constant `1/μ`.
    Constant,
}

/// Ablation A2: delay distributions at equal mean, unlimited buffers —
/// isolating the distributional effect of §3.1 from preemption.
#[must_use]
pub fn delay_ablation_sweep(params: &SweepParams) -> Vec<DelayAblationRow> {
    delay_ablation_sweep_with(params, &default_runtime())
}

/// [`delay_ablation_sweep`] on an explicit runtime.
#[must_use]
pub fn delay_ablation_sweep_with(params: &SweepParams, runtime: &Runtime) -> Vec<DelayAblationRow> {
    let kinds = [
        (
            DelayDistributionKind::Exponential,
            DelayStrategy::exponential(30.0),
        ),
        (DelayDistributionKind::Uniform, DelayStrategy::uniform(30.0)),
        (
            DelayDistributionKind::Constant,
            DelayStrategy::constant(30.0),
        ),
    ];
    let cases: Vec<(DelayDistributionKind, DelayStrategy, f64)> = kinds
        .iter()
        .flat_map(|(kind, strategy)| {
            params
                .inv_lambdas
                .iter()
                .map(move |&l| (*kind, *strategy, l))
        })
        .collect();
    let params_json = params.canonical_json();
    let keys: Vec<String> = cases
        .iter()
        .map(|(kind, _, l)| {
            job_key(
                "delay-ablation",
                &params_json,
                &format!("dist={kind:?}|{}", point_tag(*l)),
            )
        })
        .collect();
    runtime.run("delay-ablation", &params_json, &keys, |i| {
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let (kind, strategy, inv_lambda) = cases[i];
        let mut cfg = params.config(inv_lambda);
        cfg.delay = DelayPlan::Shared(strategy);
        cfg.buffer = BufferPolicy::Unlimited;
        let metrics = run_point(
            &cfg,
            params.report_flow,
            &mut telemetry,
            &format!("{kind:?}"),
        );
        telemetry.finish();
        DelayAblationRow {
            inv_lambda,
            distribution: kind,
            mse: metrics.mse,
            mean_latency: metrics.mean_latency,
        }
    })
}

/// One row of the delay-decomposition experiment (E2, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecompositionRow {
    /// Where the delay budget lives on the path.
    pub shape: DecompositionShape,
    /// Buffer policy used (unlimited isolates the variance story; RCAD
    /// shows what finite buffers do to concentrated budgets).
    pub limited_buffers: bool,
    /// Baseline-adversary MSE on the reference flow.
    pub mse: f64,
    /// Mean latency of the reference flow.
    pub mean_latency: f64,
    /// Hottest node: largest time-weighted mean buffer occupancy.
    pub max_mean_occupancy: f64,
    /// Total RCAD preemptions (0 for unlimited buffers).
    pub preemptions: u64,
}

/// Extension E2: spread one fixed delay budget (the paper's 15·30 = 450
/// time units for flow S1) across the path per §3.3 and measure the
/// privacy/buffer trade-off at 1/λ = `inv_lambda`.
#[must_use]
pub fn decomposition_experiment(
    params: &SweepParams,
    inv_lambda: f64,
    flow_budget: f64,
) -> Vec<DecompositionRow> {
    decomposition_experiment_with(params, inv_lambda, flow_budget, &default_runtime())
}

/// [`decomposition_experiment`] on an explicit runtime: the 2 buffer
/// policies × 4 shapes run as 8 parallel jobs.
#[must_use]
pub fn decomposition_experiment_with(
    params: &SweepParams,
    inv_lambda: f64,
    flow_budget: f64,
    runtime: &Runtime,
) -> Vec<DecompositionRow> {
    let shapes = [
        DecompositionShape::Uniform,
        DecompositionShape::FarFromSink,
        DecompositionShape::NearSink,
        DecompositionShape::AtSource,
    ];
    let cases: Vec<(bool, DecompositionShape)> = [false, true]
        .iter()
        .flat_map(|&limited| shapes.iter().map(move |&shape| (limited, shape)))
        .collect();
    let params_json = params.canonical_json();
    let keys: Vec<String> = cases
        .iter()
        .map(|(limited, shape)| {
            job_key(
                "decomposition",
                &params_json,
                &format!(
                    "shape={shape:?}|limited={limited}|{}|budget={:016x}",
                    point_tag(inv_lambda),
                    flow_budget.to_bits()
                ),
            )
        })
        .collect();
    runtime.run("decomposition", &params_json, &keys, |i| {
        let (limited, shape) = cases[i];
        let mut cfg = params.config(inv_lambda);
        let sim_probe = cfg.build().expect("probe build");
        let plan = decomposed_plan(sim_probe.routing(), sim_probe.sources(), flow_budget, shape);
        cfg.delay = plan;
        cfg.buffer = if limited {
            BufferPolicy::Rcad {
                capacity: params.capacity,
                victim: VictimPolicy::ShortestRemaining,
            }
        } else {
            BufferPolicy::Unlimited
        };
        let sim = cfg.build().expect("valid config");
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let outcome = telemetry.run(&sim, &format!("shape={shape:?}|limited={limited}"));
        telemetry.finish();
        let knowledge = sim.adversary_knowledge();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
        let max_mean_occupancy = outcome
            .nodes
            .iter()
            .map(|n| n.mean_occupancy)
            .fold(0.0f64, f64::max);
        DecompositionRow {
            shape,
            limited_buffers: limited,
            mse: report.mse(params.report_flow),
            mean_latency: outcome.flows[params.report_flow.index()].latency.mean(),
            max_mean_occupancy,
            preemptions: outcome.total_preemptions(),
        }
    })
}

/// Mechanisms compared by the E3 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// RCAD with the paper's 10-slot buffers and exponential delays.
    Rcad,
    /// A Chaum-style threshold mix at every node (batch size given).
    ThresholdMix(usize),
}

/// One row of the mechanism comparison (E3): RCAD versus threshold
/// mixes from the related-work lineage (§6), measured on
/// mechanism-agnostic axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixComparisonRow {
    /// Inter-arrival time `1/λ`.
    pub inv_lambda: f64,
    /// The mechanism measured.
    pub mechanism: Mechanism,
    /// The privacy floor: MSE of the constant-offset oracle (= latency
    /// variance) — what *no* header-only estimator can beat.
    pub oracle_mse: f64,
    /// Mean delivery latency of the reported flow (the cost axis).
    pub mean_latency: f64,
    /// Fraction of adjacent arrivals out of creation order.
    pub reordering: f64,
    /// Packets stranded in unfinished batches at run end (mixes only).
    pub stranded: u64,
}

/// Extension E3: RCAD vs threshold mixes at the paper's traffic sweep.
/// Mix nodes ignore the delay plan (batching is their only mechanism),
/// so their runs use a no-delay plan.
#[must_use]
pub fn mix_comparison_sweep(params: &SweepParams) -> Vec<MixComparisonRow> {
    mix_comparison_sweep_with(params, &default_runtime())
}

/// [`mix_comparison_sweep`] on an explicit runtime.
#[must_use]
pub fn mix_comparison_sweep_with(params: &SweepParams, runtime: &Runtime) -> Vec<MixComparisonRow> {
    let mechanisms = [
        Mechanism::Rcad,
        Mechanism::ThresholdMix(4),
        Mechanism::ThresholdMix(10),
    ];
    let cases: Vec<(Mechanism, f64)> = mechanisms
        .iter()
        .flat_map(|&m| params.inv_lambdas.iter().map(move |&l| (m, l)))
        .collect();
    let params_json = params.canonical_json();
    let keys: Vec<String> = cases
        .iter()
        .map(|(m, l)| {
            job_key(
                "mix-comparison",
                &params_json,
                &format!("mech={m:?}|{}", point_tag(*l)),
            )
        })
        .collect();
    runtime.run("mix-comparison", &params_json, &keys, |i| {
        let (mechanism, inv_lambda) = cases[i];
        let mut cfg = params.config(inv_lambda);
        match mechanism {
            Mechanism::Rcad => {}
            Mechanism::ThresholdMix(threshold) => {
                cfg.delay = DelayPlan::no_delay();
                cfg.buffer = BufferPolicy::ThresholdMix { threshold };
            }
        }
        let sim = cfg.build().expect("sweep configs are valid");
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let outcome = telemetry.run(&sim, &format!("{mechanism:?}"));
        telemetry.finish();
        let knowledge = sim.adversary_knowledge();
        let oracle = outcome.oracle();
        let report = evaluate_adversary(&outcome, &oracle, &knowledge);
        MixComparisonRow {
            inv_lambda,
            mechanism,
            oracle_mse: report.mse(params.report_flow),
            mean_latency: outcome.flows[params.report_flow.index()].latency.mean(),
            reordering: outcome.reordering_fraction(params.report_flow),
            stranded: outcome.total_stranded(),
        }
    })
}

/// One row of the bursty-traffic experiment (E4): offline versus online
/// adversaries against on/off sources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstAdversaryRow {
    /// Intra-burst inter-arrival time.
    pub burst_interval: f64,
    /// MSE of the baseline adversary.
    pub baseline_mse: f64,
    /// MSE of the whole-trace adaptive adversary (§5.4): its single rate
    /// estimate averages bursts with silence.
    pub adaptive_mse: f64,
    /// MSE of the windowed online adversary, which tracks each burst.
    pub windowed_mse: f64,
    /// MSE of the constant-offset oracle.
    pub oracle_mse: f64,
}

/// Extension E4: bursty on/off sources (`burst` packets at each sampled
/// intra-burst interval, separated by `off_time` of silence) under RCAD.
/// An online adversary that re-estimates rates in a sliding window should
/// beat the whole-trace adaptive model whenever traffic is non-stationary.
#[must_use]
pub fn burst_adversary_experiment(
    params: &SweepParams,
    burst: u32,
    off_time: f64,
    window: f64,
) -> Vec<BurstAdversaryRow> {
    burst_adversary_experiment_with(params, burst, off_time, window, &default_runtime())
}

/// [`burst_adversary_experiment`] on an explicit runtime.
#[must_use]
pub fn burst_adversary_experiment_with(
    params: &SweepParams,
    burst: u32,
    off_time: f64,
    window: f64,
    runtime: &Runtime,
) -> Vec<BurstAdversaryRow> {
    let params_json = params.canonical_json();
    let keys: Vec<String> = params
        .inv_lambdas
        .iter()
        .map(|&l| {
            job_key(
                "burst-adversary",
                &params_json,
                &format!(
                    "burst={burst}|off={:016x}|window={:016x}|{}",
                    off_time.to_bits(),
                    window.to_bits(),
                    point_tag(l)
                ),
            )
        })
        .collect();
    runtime.run("burst-adversary", &params_json, &keys, |i| {
        let burst_interval = params.inv_lambdas[i];
        let mut cfg = params.config(burst_interval);
        cfg.traffic = TrafficModel::on_off(burst_interval, burst, off_time);
        let sim = cfg.build().expect("sweep configs are valid");
        let mut telemetry = JobTelemetryCollector::for_job(runtime, i);
        let outcome = telemetry.run(&sim, "on_off");
        telemetry.finish();
        let knowledge = sim.adversary_knowledge();
        let flow = params.report_flow;
        let oracle = outcome.oracle();
        BurstAdversaryRow {
            burst_interval,
            baseline_mse: evaluate_adversary(&outcome, &BaselineAdversary, &knowledge).mse(flow),
            adaptive_mse: evaluate_adversary(
                &outcome,
                &AdaptiveAdversary::paper_default(),
                &knowledge,
            )
            .mse(flow),
            windowed_mse: evaluate_adversary(
                &outcome,
                &WindowedAdaptiveAdversary::new(window, 0.1),
                &knowledge,
            )
            .mse(flow),
            oracle_mse: evaluate_adversary(&outcome, &oracle, &knowledge).mse(flow),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempriv_runtime::CountingObserver;

    fn tiny() -> SweepParams {
        SweepParams {
            inv_lambdas: vec![2.0, 20.0],
            packets_per_source: 200,
            ..SweepParams::paper_default()
        }
    }

    #[test]
    fn fig2_shapes_hold() {
        let rows = fig2_sweep(&tiny());
        assert_eq!(rows.len(), 2);
        let fast = &rows[0];
        // Privacy ordering at the highest traffic rate: RCAD >> others.
        assert!(fast.rcad.mse > 3.0 * fast.unlimited.mse.max(1.0));
        assert!(fast.no_delay.mse < 1e-6);
        // Latency ordering: no-delay < RCAD < unlimited.
        assert!(fast.no_delay.mean_latency < fast.rcad.mean_latency);
        assert!(fast.rcad.mean_latency < fast.unlimited.mean_latency);
        // No-delay latency is exactly h*tau = 15; unlimited ~465.
        assert!((fast.no_delay.mean_latency - 15.0).abs() < 1e-9);
        assert!((fast.unlimited.mean_latency - 465.0).abs() < 25.0);
        // RCAD privacy fades as traffic slows (fewer preemptions).
        let slow = &rows[1];
        assert!(slow.rcad.mse < fast.rcad.mse);
    }

    #[test]
    fn fig3_adaptive_beats_baseline_at_high_rate() {
        // Needs a run long enough to reach steady state: the network
        // pipeline holds ~330 packets, so 200/source is all transient.
        let params = SweepParams {
            inv_lambdas: vec![2.0],
            packets_per_source: 800,
            ..SweepParams::paper_default()
        };
        let rows = fig3_sweep(&params);
        let fast = &rows[0];
        assert!(
            fast.adaptive_mse < fast.baseline_mse,
            "adaptive {} should beat baseline {}",
            fast.adaptive_mse,
            fast.baseline_mse
        );
        // But cannot be perfect: preemption noise remains.
        assert!(fast.adaptive_mse > 0.0);
    }

    #[test]
    fn adversary_panel_is_ordered_at_high_rate() {
        let params = SweepParams {
            inv_lambdas: vec![2.0],
            packets_per_source: 800,
            ..SweepParams::paper_default()
        };
        let row = &adversary_panel_sweep(&params)[0];
        assert!(row.adaptive_mse <= row.baseline_mse);
        assert!(row.route_aware_mse <= row.adaptive_mse);
        assert!(row.oracle_mse <= row.route_aware_mse * 1.01);
        assert!(row.oracle_mse > 0.0);
    }

    #[test]
    fn decomposition_trades_privacy_for_hotspots() {
        let params = SweepParams {
            inv_lambdas: vec![8.0],
            packets_per_source: 600,
            ..SweepParams::paper_default()
        };
        let rows = decomposition_experiment(&params, 8.0, 450.0);
        let find = |shape, limited| {
            rows.iter()
                .find(|r| r.shape == shape && r.limited_buffers == limited)
                .copied()
                .expect("row present")
        };
        // Unlimited buffers: equal latency budget, privacy ranks by
        // concentration (Var = sum of squared node means).
        let at_source = find(DecompositionShape::AtSource, false);
        let uniform = find(DecompositionShape::Uniform, false);
        assert!((at_source.mean_latency - uniform.mean_latency).abs() < 30.0);
        assert!(at_source.mse > 5.0 * uniform.mse);
        // ...but the source buffer becomes the hotspot.
        assert!(at_source.max_mean_occupancy > 3.0 * uniform.max_mean_occupancy);
        // With k = 10 RCAD, the concentrated plan preempts heavily.
        let at_source_k = find(DecompositionShape::AtSource, true);
        assert!(at_source_k.preemptions > 0);
        assert!(at_source_k.mean_latency < at_source.mean_latency);
    }

    #[test]
    fn mix_comparison_covers_all_mechanisms() {
        let params = SweepParams {
            inv_lambdas: vec![2.0],
            packets_per_source: 400,
            ..SweepParams::paper_default()
        };
        let rows = mix_comparison_sweep(&params);
        assert_eq!(rows.len(), 3);
        let rcad = rows
            .iter()
            .find(|r| r.mechanism == Mechanism::Rcad)
            .unwrap();
        let mix10 = rows
            .iter()
            .find(|r| r.mechanism == Mechanism::ThresholdMix(10))
            .unwrap();
        // RCAD scrambles order (independent exp delays); a mix preserves
        // batch internals but delivers bursts — far less reordering.
        assert!(rcad.reordering > mix10.reordering);
        // RCAD's privacy floor (latency variance) is well above the
        // batching mix's at the same traffic rate.
        assert!(rcad.oracle_mse > mix10.oracle_mse);
        // Mixes may strand a final partial batch; RCAD never does.
        assert_eq!(rcad.stranded, 0);
    }

    #[test]
    fn windowed_adversary_beats_batch_on_bursts() {
        // Bursts must stay dense at the *sink* for the windowed estimator
        // to clear its advertised-mean cap (k/lambda_i < 1/mu needs
        // lambda_i > 1/3 here): 15 hops of exp(30) delay smear a burst
        // over hundreds of time units, so the source must emit fast, long
        // bursts. 200 packets at unit spacing gives the windowed model a
        // ~3x MSE advantage; slower/shorter bursts degenerate to the
        // baseline estimate for every observation.
        let params = SweepParams {
            inv_lambdas: vec![1.0],
            packets_per_source: 1200,
            ..SweepParams::paper_default()
        };
        let rows = burst_adversary_experiment(&params, 200, 800.0, 200.0);
        let row = &rows[0];
        assert!(
            row.windowed_mse < row.baseline_mse,
            "windowed {} vs baseline {}",
            row.windowed_mse,
            row.baseline_mse
        );
        assert!(
            row.windowed_mse < row.adaptive_mse,
            "windowed {} vs batch adaptive {}",
            row.windowed_mse,
            row.adaptive_mse
        );
        assert!(row.oracle_mse <= row.windowed_mse * 1.05);
    }

    #[test]
    fn sweep_rows_are_identical_for_any_worker_count() {
        let params = tiny();
        let one = fig2_sweep_with(&params, &Runtime::new(WorkerPool::with_workers(1)));
        let eight = fig2_sweep_with(&params, &Runtime::new(WorkerPool::with_workers(8)));
        // Byte-identical serialized rows, not just approximate equality.
        assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&eight).unwrap()
        );
    }

    #[test]
    fn warm_cache_rerun_runs_zero_simulations() {
        let counter = Arc::new(CountingObserver::new());
        let runtime = Runtime::builder()
            .workers(4)
            .observer(counter.clone())
            .build()
            .unwrap();
        let params = tiny();
        let first = fig3_sweep_with(&params, &runtime);
        assert_eq!(counter.computed(), params.inv_lambdas.len());
        let second = fig3_sweep_with(&params, &runtime);
        assert_eq!(
            counter.computed(),
            params.inv_lambdas.len(),
            "warm rerun must not simulate"
        );
        assert_eq!(counter.cached(), params.inv_lambdas.len());
        assert_eq!(first, second);
    }

    #[test]
    fn cache_keys_separate_experiments_and_params() {
        let params = tiny();
        let json = params.canonical_json();
        let mut other = tiny();
        other.seed += 1;
        let k1 = job_key("fig2", &json, &point_tag(2.0));
        assert_ne!(k1, job_key("fig3", &json, &point_tag(2.0)));
        assert_ne!(
            k1,
            job_key("fig2", &other.canonical_json(), &point_tag(2.0))
        );
        assert_ne!(k1, job_key("fig2", &json, &point_tag(4.0)));
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = fig2_sweep(&tiny());
        let b = fig2_sweep(&tiny());
        assert_eq!(a, b);
    }
}

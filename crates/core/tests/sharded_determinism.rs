//! Cross-worker-count determinism for the sharded parallel engine.
//!
//! The conservative time-window runner must be a pure performance knob:
//! for a fixed shard cut, the worker count can never change the
//! simulation. This suite runs every buffer/victim configuration on a
//! four-subtree star convergecast (so the cut is non-trivial and real
//! cross-shard handoffs flow) under workers ∈ {1, 2, 4, 8} and demands
//! byte-identical outcome digests plus equal RNG draw counts.
//!
//! For every configuration that draws no global-stream randomness
//! mid-run (deterministic victims over lossless links — all the paper's
//! configurations), the sharded digest must also equal the serial
//! engine's digest. `rcad_random` victims draw from shard-indexed
//! substreams, so it is deterministic across worker counts but keyed by
//! the shard count; its serial comparison is intentionally skipped.

use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::traffic::TrafficModel;

const SHARDS: u32 = 4;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Four disjoint chains into the sink: four sink-subtrees, so the
/// four-way cut yields one subtree per shard and every delivery crosses
/// a shard boundary.
fn star_sim(buffer: BufferPolicy) -> NetworkSimulation {
    let layout = Convergecast::builder()
        .trunk_hops(0)
        .flows([15, 22, 9, 11])
        .build()
        .expect("star layout is valid");
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(2.0))
        .packets_per_source(150)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(buffer)
        .seed(2007)
        .build()
        .expect("star config is valid")
}

fn all_configs() -> [(&'static str, BufferPolicy, bool); 7] {
    let rcad = |victim| BufferPolicy::Rcad {
        capacity: 10,
        victim,
    };
    // (label, policy, serial digest must match too)
    [
        ("unlimited", BufferPolicy::Unlimited, true),
        ("drop_tail", BufferPolicy::DropTail { capacity: 10 }, true),
        (
            "threshold_mix",
            BufferPolicy::ThresholdMix { threshold: 10 },
            true,
        ),
        (
            "rcad_shortest_remaining",
            rcad(VictimPolicy::ShortestRemaining),
            true,
        ),
        (
            "rcad_longest_remaining",
            rcad(VictimPolicy::LongestRemaining),
            true,
        ),
        ("rcad_random", rcad(VictimPolicy::Random), false),
        ("rcad_oldest", rcad(VictimPolicy::Oldest), true),
    ]
}

#[test]
fn worker_count_is_invisible_for_every_config() {
    for (label, buffer, matches_serial) in all_configs() {
        let sim = star_sim(buffer);
        let serial = sim.run();
        let reference = sim.run_sharded(SHARDS, WORKERS[0]);
        assert!(
            reference.shards.iter().map(|s| s.handoffs_out).sum::<u64>() > 0,
            "{label}: the star cut must produce cross-shard handoffs"
        );
        if matches_serial {
            assert_eq!(
                serial.digest(),
                reference.digest(),
                "{label}: sharded run must reproduce the serial digest"
            );
            assert_eq!(
                serial.rng_draws, reference.rng_draws,
                "{label}: sharded run must reproduce the serial draw count"
            );
        } else {
            // Shard-substream victims pick different victims than the
            // serial stream (different preemption cascades, so even
            // event totals may differ) — but conservation must hold in
            // both engines over the same created population.
            let created =
                |o: &tempriv_core::SimOutcome| o.flows.iter().map(|f| f.created).sum::<u64>();
            assert_eq!(
                created(&serial),
                created(&reference),
                "{label}: created totals"
            );
            for (name, o) in [("serial", &serial), ("sharded", &reference)] {
                assert_eq!(
                    o.total_delivered() + o.total_drops() + o.total_stranded(),
                    created(o),
                    "{label}/{name}: delivered + dropped + stranded = created"
                );
            }
        }
        for workers in &WORKERS[1..] {
            let run = sim.run_sharded(SHARDS, *workers);
            assert_eq!(
                reference.digest(),
                run.digest(),
                "{label}: digest changed between 1 and {workers} workers"
            );
            assert_eq!(
                reference.rng_draws, run.rng_draws,
                "{label}: RNG draw count changed between 1 and {workers} workers"
            );
            assert_eq!(
                reference, run,
                "{label}: full outcome changed between 1 and {workers} workers"
            );
        }
    }
}

#[test]
fn shard_stats_account_for_every_event_and_node() {
    let sim = star_sim(BufferPolicy::paper_rcad());
    let out = sim.run_sharded(SHARDS, 2);
    assert_eq!(out.shards.len(), SHARDS as usize);
    let shard_events: u64 = out.shards.iter().map(|s| s.events).sum();
    assert_eq!(shard_events, out.events, "per-shard events sum to total");
    let shard_nodes: u64 = out.shards.iter().map(|s| s.nodes).sum();
    assert_eq!(
        shard_nodes,
        out.nodes.len() as u64,
        "every node has a home shard"
    );
    assert_eq!(
        out.peak_fes,
        out.shards.iter().map(|s| s.peak_fes).sum::<u64>(),
        "peak FES aggregates across shards"
    );
}

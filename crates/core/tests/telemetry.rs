//! End-to-end validation of the telemetry probes against queueing
//! theory: the instrumented simulator must reproduce the M/M/∞ and
//! Erlang-loss predictions the paper's analysis rests on, and the
//! probes must never perturb the simulation itself.

use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_core::telemetry::{theory_report, TelemetryExport};
use tempriv_net::convergecast::Convergecast;
use tempriv_net::traffic::TrafficModel;
use tempriv_queueing::erlang::erlang_b;
use tempriv_telemetry::{FlightRecorder, RecordingProbe, SimTelemetry, TheoryTolerance};

/// A single source one hop from the sink: the source node is one queue,
/// which makes it a textbook single-station system.
fn single_queue(
    buffer: BufferPolicy,
    rate: f64,
    delay_mean: f64,
    packets: u32,
) -> NetworkSimulation {
    let layout = Convergecast::builder().flow(1).build().unwrap();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::poisson(rate))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(delay_mean))
        .buffer_policy(buffer)
        .seed(42)
        .build()
        .unwrap()
}

fn probed(sim: &NetworkSimulation) -> SimTelemetry {
    let mut probe = RecordingProbe::new(sim.routing().len());
    let outcome = sim.run_probed(&mut probe);
    probe.finish(outcome.end_time)
}

#[test]
fn mm_inf_occupancy_matches_rho() {
    // λ = 0.5, 1/μ = 10 => ρ = 5. With unlimited buffers the source is
    // an M/M/∞ station: mean occupancy ρ, occupancy PMF Poisson(ρ).
    let sim = single_queue(BufferPolicy::Unlimited, 0.5, 10.0, 4000);
    let telemetry = probed(&sim);
    let source = &telemetry.nodes[sim.sources()[0].index()];
    let rho = 5.0;
    assert!(
        (source.mean_occupancy - rho).abs() / rho < 0.15,
        "measured mean occupancy {} should be within 15% of rho {rho}",
        source.mean_occupancy
    );
    // And the full theory report agrees: occupancy mean + Poisson PMF.
    let report = theory_report(&sim, &telemetry, &TheoryTolerance::default());
    assert!(report
        .checks
        .iter()
        .any(|c| c.name.ends_with("_occupancy_pmf")));
    assert!(
        report.passed(),
        "all checks should pass, flagged: {:?}",
        report.flagged()
    );
}

#[test]
fn drop_tail_loss_matches_erlang_b() {
    // ρ = 5 offered to a k = 4 buffer: Erlang-B predicts B(5, 4) ≈ 0.398
    // of arrivals rejected.
    let sim = single_queue(BufferPolicy::DropTail { capacity: 4 }, 0.5, 10.0, 4000);
    let telemetry = probed(&sim);
    let source = &telemetry.nodes[sim.sources()[0].index()];
    let predicted = erlang_b(5.0, 4);
    let measured = source.drop_fraction();
    assert!(
        (measured - predicted).abs() < 0.05,
        "measured drop fraction {measured} vs Erlang-B {predicted}"
    );
    let report = theory_report(&sim, &telemetry, &TheoryTolerance::default());
    assert!(report
        .checks
        .iter()
        .any(|c| c.name.ends_with("_drop_fraction")));
    assert!(report.passed(), "flagged: {:?}", report.flagged());
}

#[test]
fn rcad_random_victim_preemption_matches_erlang_b() {
    // With a *random* victim, RCAD's buffer follows the same occupancy
    // chain as M/M/k/k: a preemption pairs an arrival with a forced
    // departure of a uniformly chosen packet, and by memorylessness the
    // surviving residuals stay i.i.d. exponential. Its preemption
    // fraction therefore obeys the Erlang-B formula.
    let sim = single_queue(
        BufferPolicy::Rcad {
            capacity: 4,
            victim: VictimPolicy::Random,
        },
        0.5,
        10.0,
        4000,
    );
    let telemetry = probed(&sim);
    let source = &telemetry.nodes[sim.sources()[0].index()];
    let predicted = erlang_b(5.0, 4);
    let measured = source.preemption_fraction();
    assert!(
        (measured - predicted).abs() < 0.05,
        "measured preemption fraction {measured} vs Erlang-B {predicted}"
    );
    let report = theory_report(&sim, &telemetry, &TheoryTolerance::default());
    assert!(report.passed(), "flagged: {:?}", report.flagged());
}

#[test]
fn biased_victim_preempts_more_than_erlang_b() {
    // ShortestRemaining evicts the packet that would have departed
    // soonest, leaving the larger order statistics of the residuals in
    // the buffer: departures slow down, the buffer stays full longer,
    // and the preemption fraction runs well above B(ρ, k). The theory
    // report must therefore emit no Erlang prediction for it.
    let sim = single_queue(
        BufferPolicy::Rcad {
            capacity: 4,
            victim: VictimPolicy::ShortestRemaining,
        },
        0.5,
        10.0,
        4000,
    );
    let telemetry = probed(&sim);
    let source = &telemetry.nodes[sim.sources()[0].index()];
    assert!(
        source.preemption_fraction() > erlang_b(5.0, 4) + 0.1,
        "the order-statistics bias should be clearly visible"
    );
    let report = theory_report(&sim, &telemetry, &TheoryTolerance::default());
    assert!(report.checks.is_empty(), "no closed-form model applies");
}

#[test]
fn mistuned_model_is_flagged() {
    // Simulate with mean delay 10 (ρ = 5) but check against a config
    // claiming mean delay 30 (ρ = 15): the cross-check must flag the
    // discrepancy rather than rubber-stamp it.
    let actual = single_queue(BufferPolicy::Unlimited, 0.5, 10.0, 3000);
    let claimed = single_queue(BufferPolicy::Unlimited, 0.5, 30.0, 3000);
    let telemetry = probed(&actual);
    let report = theory_report(&claimed, &telemetry, &TheoryTolerance::default());
    assert!(
        !report.passed(),
        "a 3x-mistuned occupancy prediction must be flagged"
    );
    assert!(!report.flagged().is_empty());
}

#[test]
fn probes_do_not_perturb_the_simulation() {
    // The recorded run and the plain run must produce identical
    // outcomes: probes observe the event loop, they never consume
    // randomness or reorder events.
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::poisson(0.5))
        .packets_per_source(400)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(2007)
        .build()
        .unwrap();
    let plain = sim.run();
    let mut probe = RecordingProbe::new(sim.routing().len());
    let recorded = sim.run_probed(&mut probe);
    assert_eq!(plain, recorded, "probed run must be byte-identical");
    // And the probe actually saw the run.
    let telemetry = probe.finish(recorded.end_time);
    assert!(telemetry.deliveries > 0);
    assert!(telemetry.total_preemptions() > 0);
}

#[test]
fn flight_recording_does_not_perturb_the_simulation() {
    // Byte-identical outcomes AND identical RNG draw counts with the
    // flight recorder attached: tracing observes, it never samples.
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::poisson(0.5))
        .packets_per_source(400)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(2007)
        .build()
        .unwrap();
    let plain = sim.run();
    let mut flight = FlightRecorder::new();
    let traced = sim.run_probed(&mut flight);
    assert_eq!(plain, traced, "traced run must be byte-identical");
    assert_eq!(
        plain.rng_draws, traced.rng_draws,
        "tracing must not consume randomness"
    );
    assert!(plain.rng_draws > 0, "the run consumed randomness");
    // A tiny ring that evicts heavily must not perturb the run either.
    let mut tiny = FlightRecorder::with_capacity(8);
    let evicting = sim.run_probed(&mut tiny);
    assert_eq!(plain, evicting, "eviction pressure must not leak");
    assert!(tiny.evicted() > 0, "the tiny ring actually evicted");
    // And the full recording reconstructs every created packet.
    let log = flight.finish(traced.end_time);
    assert_eq!(log.evicted, 0, "default capacity holds the whole run");
    let lineages = log.lineages();
    let created: u64 = plain.flows.iter().map(|f| f.created).sum();
    assert_eq!(lineages.len() as u64, created);
    let delivered = lineages.iter().filter(|l| l.span().is_some()).count() as u64;
    assert_eq!(delivered, plain.total_delivered());
}

#[test]
fn pair_probe_halves_see_the_same_run() {
    // (RecordingProbe, FlightRecorder) in one pass agrees with each
    // probe run separately — and the outcome stays identical.
    let sim = single_queue(BufferPolicy::Unlimited, 0.5, 10.0, 500);
    let plain = sim.run();
    let mut pair = (
        RecordingProbe::new(sim.routing().len()),
        FlightRecorder::new(),
    );
    let outcome = sim.run_probed(&mut pair);
    assert_eq!(plain, outcome);
    let (rec, flight) = pair;
    assert_eq!(rec.finish(outcome.end_time), probed(&sim));
    let solo = {
        let mut f = FlightRecorder::new();
        let out = sim.run_probed(&mut f);
        f.finish(out.end_time)
    };
    assert_eq!(flight.finish(outcome.end_time), solo);
}

#[test]
fn export_round_trips_through_manifest_blobs() {
    use tempriv_core::experiment::{fig2_sweep_with, SweepParams};
    use tempriv_runtime::{Runtime, TelemetrySink, WorkerPool};

    let sink = std::sync::Arc::new(TelemetrySink::new());
    let runtime = Runtime::builder()
        .pool(WorkerPool::with_workers(2))
        .telemetry_sink(sink.clone())
        .build()
        .unwrap();
    let params = SweepParams {
        inv_lambdas: vec![2.0, 20.0],
        packets_per_source: 200,
        ..SweepParams::paper_default()
    };
    let rows = fig2_sweep_with(&params, &runtime);
    assert_eq!(rows.len(), 2);
    let blobs = sink.take_all();
    assert_eq!(blobs.len(), 2);
    assert!(blobs.iter().all(Option::is_some), "every job instruments");
    let export = TelemetryExport::collect("fig2", &blobs, &[], &[]).unwrap();
    assert_eq!(export.instrumented_jobs, 2);
    // Three scenarios per fig2 point: no_delay, unlimited, rcad.
    assert_eq!(export.scenarios, 6);
    assert!(export
        .metrics
        .gauges
        .iter()
        .any(|g| g.name.starts_with("tempriv_node_occupancy_mean{node=")));
}

#[test]
fn telemetry_does_not_change_sweep_rows() {
    use tempriv_core::experiment::{fig2_sweep_with, SweepParams};
    use tempriv_runtime::{Runtime, TelemetrySink, WorkerPool};

    let params = SweepParams {
        inv_lambdas: vec![2.0, 20.0],
        packets_per_source: 200,
        ..SweepParams::paper_default()
    };
    let plain = fig2_sweep_with(&params, &Runtime::new(WorkerPool::with_workers(2)));
    let sink = std::sync::Arc::new(TelemetrySink::new());
    let instrumented_runtime = Runtime::builder()
        .pool(WorkerPool::with_workers(2))
        .telemetry_sink(sink)
        .build()
        .unwrap();
    let instrumented = fig2_sweep_with(&params, &instrumented_runtime);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&instrumented).unwrap(),
        "telemetry collection must not change experiment outputs"
    );
}

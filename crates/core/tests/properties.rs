//! Property-based tests for the temporal-privacy core: buffer/victim
//! invariants and whole-simulation conservation laws on randomized
//! configurations.

use proptest::prelude::*;
use tempriv_core::adversary::{AdaptiveAdversary, BaselineAdversary, RouteAwareAdversary};
use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::config::{ExperimentConfig, LayoutSpec};
use tempriv_core::delay::{DelayPlan, DelayStrategy};
use tempriv_core::metrics::evaluate_adversary;
use tempriv_net::traffic::TrafficModel;
use tempriv_sim::rng::RngFactory;

fn arb_traffic() -> impl Strategy<Value = TrafficModel> {
    prop_oneof![
        (0.5f64..20.0).prop_map(TrafficModel::periodic),
        (0.5f64..20.0).prop_map(|i| TrafficModel::periodic_jitter(i, 0.2)),
        (0.05f64..1.0).prop_map(TrafficModel::poisson),
    ]
}

fn arb_delay() -> impl Strategy<Value = DelayPlan> {
    prop_oneof![
        Just(DelayPlan::no_delay()),
        (1.0f64..60.0).prop_map(DelayPlan::shared_exponential),
        (1.0f64..60.0).prop_map(|m| DelayPlan::Shared(DelayStrategy::uniform(m))),
        (1.0f64..60.0).prop_map(|m| DelayPlan::Shared(DelayStrategy::constant(m))),
    ]
}

fn arb_victim() -> impl Strategy<Value = VictimPolicy> {
    prop_oneof![
        Just(VictimPolicy::ShortestRemaining),
        Just(VictimPolicy::LongestRemaining),
        Just(VictimPolicy::Random),
        Just(VictimPolicy::Oldest),
    ]
}

fn arb_buffer() -> impl Strategy<Value = BufferPolicy> {
    prop_oneof![
        Just(BufferPolicy::Unlimited),
        (1usize..20).prop_map(|capacity| BufferPolicy::DropTail { capacity }),
        (1usize..20, arb_victim())
            .prop_map(|(capacity, victim)| BufferPolicy::Rcad { capacity, victim }),
        (1usize..15).prop_map(|threshold| BufferPolicy::ThresholdMix { threshold }),
    ]
}

fn arb_layout() -> impl Strategy<Value = LayoutSpec> {
    prop_oneof![
        (1u32..12).prop_map(|hops| LayoutSpec::Line { hops }),
        (0u32..5, prop::collection::vec(1u32..10, 1..4)).prop_map(|(trunk, extra)| {
            LayoutSpec::Convergecast {
                trunk_hops: trunk,
                flow_hops: extra.into_iter().map(|e| trunk + e).collect(),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation across the whole randomized configuration space:
    /// created = delivered + dropped (+ link losses, here zero), truth
    /// and observation logs stay consistent, occupancy respects capacity,
    /// and two runs with the same seed agree exactly.
    #[test]
    fn simulation_conservation_laws(
        layout in arb_layout(),
        traffic in arb_traffic(),
        delay in arb_delay(),
        buffer in arb_buffer(),
        seed in any::<u64>(),
    ) {
        let cfg = ExperimentConfig {
            layout,
            traffic,
            packets_per_source: 120,
            delay,
            buffer,
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed,
        };
        let sim = cfg.build().expect("random config is valid");
        let out = sim.run();

        let created: u64 = out.flows.iter().map(|f| f.created).sum();
        prop_assert_eq!(created, 120 * out.flows.len() as u64);
        prop_assert_eq!(
            out.total_delivered() + out.total_drops() + out.total_stranded(),
            created
        );
        prop_assert_eq!(out.observations.len() as u64, out.total_delivered());
        prop_assert_eq!(out.truth.len() as u64, created);

        // Per-observation sanity: arrival after creation; flow hop counts
        // match the deployment.
        let knowledge = sim.adversary_knowledge();
        for obs in &out.observations {
            let truth = out.creation_time(obs.packet);
            prop_assert!(obs.arrival >= truth);
            prop_assert_eq!(obs.hop_count, knowledge.flow_hops[obs.flow.index()]);
        }

        // Only mixes strand packets.
        if !matches!(buffer, BufferPolicy::ThresholdMix { .. }) {
            prop_assert_eq!(out.total_stranded(), 0);
        }

        // Capacity is never violated.
        if let Some(cap) = buffer.capacity() {
            for node in &out.nodes {
                prop_assert!(node.peak_occupancy <= cap as u64);
            }
        }

        // Only RCAD preempts; only drop-tail drops.
        match buffer {
            BufferPolicy::Unlimited => {
                prop_assert_eq!(out.total_preemptions(), 0);
                prop_assert_eq!(out.total_drops(), 0);
            }
            BufferPolicy::DropTail { .. } => prop_assert_eq!(out.total_preemptions(), 0),
            BufferPolicy::Rcad { .. } => prop_assert_eq!(out.total_drops(), 0),
            BufferPolicy::ThresholdMix { .. } => {
                prop_assert_eq!(out.total_preemptions(), 0);
                prop_assert_eq!(out.total_drops(), 0);
            }
            _ => unreachable!("strategy only yields the four policies"),
        }

        // Determinism.
        let again = cfg.build().expect("same config").run();
        prop_assert_eq!(out, again);
    }

    /// Latency lower bound: nothing arrives faster than h*tau, and with
    /// no artificial delay it arrives exactly at h*tau.
    #[test]
    fn latency_bounds(layout in arb_layout(), seed in any::<u64>()) {
        let cfg = ExperimentConfig {
            layout,
            traffic: TrafficModel::periodic(3.0),
            packets_per_source: 60,
            delay: DelayPlan::no_delay(),
            buffer: BufferPolicy::Unlimited,
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed,
        };
        let out = cfg.build().unwrap().run();
        for flow in &out.flows {
            prop_assert!((flow.latency.mean() - f64::from(flow.hops)).abs() < 1e-9);
            prop_assert!(flow.latency.population_variance() < 1e-12);
        }
    }

    /// Every adversary produces one finite estimate per observation, and
    /// estimates never postdate the arrival (delays are non-negative).
    #[test]
    fn adversaries_are_total_and_causal(
        inv_lambda in 1.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let cfg = ExperimentConfig {
            layout: LayoutSpec::PaperFigure1,
            traffic: TrafficModel::periodic(inv_lambda),
            packets_per_source: 150,
            delay: DelayPlan::shared_exponential(30.0),
            buffer: BufferPolicy::paper_rcad(),
            link_delay: 1.0,
            link_loss: 0.0,
            link_jitter: 0.0,
            seed,
        };
        let sim = cfg.build().unwrap();
        let out = sim.run();
        let knowledge = sim.adversary_knowledge();
        let adversaries: Vec<Box<dyn tempriv_core::adversary::Adversary>> = vec![
            Box::new(BaselineAdversary),
            Box::new(AdaptiveAdversary::paper_default()),
            Box::new(RouteAwareAdversary::paper_default()),
        ];
        for adv in &adversaries {
            let est = adv.estimate_creation_times(&out.observations, &knowledge);
            prop_assert_eq!(est.len(), out.observations.len());
            for (obs, e) in out.observations.iter().zip(&est) {
                prop_assert!(e.is_finite());
                prop_assert!(*e <= obs.arrival.as_units() + 1e-9);
            }
            // And the report machinery accepts them.
            let report = evaluate_adversary(&out, adv.as_ref(), &knowledge);
            prop_assert_eq!(report.overall.count(), out.observations.len() as u64);
        }
    }

    /// Victim selection always returns a buffered packet and respects its
    /// policy on random buffer contents.
    #[test]
    fn victim_selection_respects_policy(
        entries in prop::collection::vec((0u64..1_000, 0u64..1_000), 1..30),
        policy in arb_victim(),
    ) {
        use tempriv_core::buffer::{BufferedPacket, NodeBuffer};
        use tempriv_net::ids::{FlowId, NodeId, PacketId};
        use tempriv_net::packet::Packet;
        use tempriv_sim::queue::EventQueue;
        use tempriv_sim::time::SimTime;

        let mut q: EventQueue<()> = EventQueue::new();
        let mut buf = NodeBuffer::new();
        for (i, &(buffered, release)) in entries.iter().enumerate() {
            let timer = Some(q.push(SimTime::from_ticks(release), ()));
            buf.insert(BufferedPacket {
                packet: Packet::new(
                    PacketId(i as u64),
                    FlowId(0),
                    NodeId(0),
                    i as u32,
                    SimTime::from_ticks(buffered),
                    0.0,
                ),
                buffered_at: SimTime::from_ticks(buffered),
                release_at: SimTime::from_ticks(release),
                timer,
            });
        }
        let mut rng = RngFactory::new(7).stream(0);
        let victim = buf.select_victim(policy, &mut rng).expect("non-empty buffer");
        prop_assert!(victim.0 < entries.len() as u64);
        match policy {
            VictimPolicy::ShortestRemaining => {
                let min = entries.iter().map(|&(_, r)| r).min().unwrap();
                prop_assert_eq!(entries[victim.0 as usize].1, min);
            }
            VictimPolicy::LongestRemaining => {
                let max = entries.iter().map(|&(_, r)| r).max().unwrap();
                prop_assert_eq!(entries[victim.0 as usize].1, max);
            }
            VictimPolicy::Oldest => {
                let min = entries.iter().map(|&(b, _)| b).min().unwrap();
                prop_assert_eq!(entries[victim.0 as usize].0, min);
            }
            VictimPolicy::Random => {}
            _ => unreachable!("strategy only yields the four policies"),
        }
    }

    /// The SoA [`PacketStore`]/[`StoreBuffer`] data plane tracks a
    /// boxed-packet reference model (one `Box` per packet plus the
    /// BTreeSet-indexed `NodeBuffer`) under arbitrary interleavings of
    /// alloc / park / hop / unbuffer / victim-select / free / drain:
    /// identical per-packet state through the accessors, identical
    /// buffered sets, identical victims with identical RNG draw counts,
    /// identical drain order — and slab columns never grow past the
    /// peak live count (freed slots really recycle).
    #[test]
    fn packet_store_matches_boxed_reference_model(
        victim in arb_victim(),
        ops in prop::collection::vec(
            (0u8..7, any::<u64>(), 0u64..24, 0u64..24),
            1..160,
        ),
        seed in any::<u64>(),
    ) {
        use std::collections::BTreeMap;
        use tempriv_core::buffer::{BufferedPacket, NodeBuffer};
        use tempriv_core::store::{PacketStore, StoreBuffer};
        use tempriv_net::ids::{FlowId, NodeId, PacketId};
        use tempriv_net::packet::Packet;
        use tempriv_sim::time::SimTime;

        /// One heap-boxed packet record, as the pre-SoA driver kept them.
        struct RefPacket {
            slot: u32,
            flow: FlowId,
            origin: NodeId,
            hops: u32,
            created_at: SimTime,
            reading: f64,
            buffered_at: SimTime,
            release_at: SimTime,
        }

        let policy = BufferPolicy::Rcad { capacity: 16, victim };
        let mut store = PacketStore::new();
        let mut buf = StoreBuffer::for_policy(&policy);
        let mut refbuf = NodeBuffer::for_policy(&policy);
        let mut model: BTreeMap<PacketId, Box<RefPacket>> = BTreeMap::new();
        let mut buffered: Vec<PacketId> = Vec::new();
        let mut next_pid = 0u64;
        let mut peak_live = 0usize;
        let mut drained = Vec::new();

        for &(op, pick, t_buf, t_rel) in &ops {
            let loose: Vec<PacketId> = model
                .keys()
                .filter(|pid| !buffered.contains(pid))
                .copied()
                .collect();
            match op {
                // Alloc a fresh packet in both worlds.
                0 | 1 => {
                    let pid = PacketId(next_pid);
                    let flow = FlowId((pick % 4) as u32);
                    let origin = NodeId((pick % 30 + 1) as u32);
                    let created = SimTime::from_ticks(t_buf);
                    let reading = pick as f64;
                    let slot = store.alloc(pid, flow, origin, created, reading);
                    model.insert(pid, Box::new(RefPacket {
                        slot,
                        flow,
                        origin,
                        hops: 0,
                        created_at: created,
                        reading,
                        buffered_at: SimTime::ZERO,
                        release_at: SimTime::ZERO,
                    }));
                    next_pid += 1;
                }
                // Park a loose packet into both buffers (coarse, heavily
                // colliding timestamps to exercise tie-breaks).
                2 => {
                    if let Some(&pid) = loose.get(pick as usize % loose.len().max(1)) {
                        let rec = model.get_mut(&pid).unwrap();
                        rec.buffered_at = SimTime::from_ticks(t_buf);
                        rec.release_at = SimTime::from_ticks(t_rel);
                        store.park(rec.slot, rec.buffered_at, rec.release_at, None);
                        buf.insert(&store, rec.slot);
                        refbuf.insert(BufferedPacket {
                            packet: Packet::new(
                                pid,
                                rec.flow,
                                rec.origin,
                                0,
                                rec.created_at,
                                rec.reading,
                            ),
                            buffered_at: rec.buffered_at,
                            release_at: rec.release_at,
                            timer: None,
                        });
                        let pos = buffered.partition_point(|&p| p < pid);
                        buffered.insert(pos, pid);
                    }
                }
                // Record a forwarding hop on any live packet.
                3 => {
                    if !model.is_empty() {
                        let idx = pick as usize % model.len();
                        let (_, rec) = model.iter_mut().nth(idx).unwrap();
                        store.record_hop(rec.slot);
                        rec.hops += 1;
                    }
                }
                // Un-buffer one packet from both buffers.
                4 => {
                    if !buffered.is_empty() {
                        let pid = buffered.remove(pick as usize % buffered.len());
                        let slot = buf.remove(&store, pid);
                        prop_assert_eq!(slot, Some(model[&pid].slot));
                        let entry = refbuf.remove(pid);
                        prop_assert_eq!(entry.map(|e| e.packet.id), Some(pid));
                    }
                }
                // Free a loose packet (delivered/dropped); the slot goes
                // back to the slab's free list.
                5 => {
                    if let Some(&pid) = loose.get(pick as usize % loose.len().max(1)) {
                        let rec = model.remove(&pid).unwrap();
                        store.release(rec.slot);
                    }
                }
                // Mix flush: drain both buffers and compare order.
                _ => {
                    drained.clear();
                    buf.drain_slots_into(&mut drained);
                    let ids: Vec<PacketId> =
                        drained.iter().map(|&s| store.pid(s)).collect();
                    let ref_ids: Vec<PacketId> =
                        refbuf.drain_all().into_iter().map(|e| e.packet.id).collect();
                    prop_assert_eq!(&ids, &ref_ids, "drain order diverged");
                    buffered.clear();
                }
            }
            peak_live = peak_live.max(model.len());

            // Both worlds agree after every operation.
            prop_assert_eq!(store.live(), model.len());
            prop_assert_eq!(buf.len(), refbuf.len());
            prop_assert_eq!(buf.len(), buffered.len());
            let entry_ids: Vec<PacketId> = buf.entries().iter().map(|&(pid, _)| pid).collect();
            prop_assert_eq!(&entry_ids, &buffered, "buffered id sets diverged");
            for (pid, rec) in &model {
                prop_assert_eq!(store.pid(rec.slot), *pid);
                prop_assert_eq!(store.flow(rec.slot), rec.flow);
                prop_assert_eq!(store.origin(rec.slot), rec.origin);
                prop_assert_eq!(store.hop_count(rec.slot), rec.hops);
                prop_assert_eq!(store.created_at(rec.slot), rec.created_at);
                prop_assert!((store.reading(rec.slot) - rec.reading).abs() < 1e-12);
                if buffered.contains(pid) {
                    prop_assert_eq!(store.buffered_at(rec.slot), rec.buffered_at);
                    prop_assert_eq!(store.release_at(rec.slot), rec.release_at);
                }
            }
            // Identical victims from identical RNG states, with identical
            // draw counts (Random draws exactly once, the rest never).
            if !buffered.is_empty() {
                let mut r_soa = RngFactory::new(seed).stream(next_pid);
                let mut r_ref = RngFactory::new(seed).stream(next_pid);
                prop_assert_eq!(
                    buf.select_victim(victim, &mut r_soa),
                    refbuf.select_victim(victim, &mut r_ref)
                );
                prop_assert_eq!(r_soa.draws(), r_ref.draws());
            }
            // Zero-alloc steady state: columns never outgrow peak live.
            prop_assert!(
                store.capacity() <= peak_live,
                "slab grew past the live high-water mark ({} > {})",
                store.capacity(),
                peak_live
            );
        }
    }

    /// The per-policy victim index reproduces the linear scan's choice
    /// exactly — including the smallest-`PacketId` tie-break on coarse,
    /// heavily-colliding timestamps — under arbitrary insert/remove churn.
    #[test]
    fn victim_index_matches_scan(
        victim in arb_victim(),
        ops in prop::collection::vec((any::<bool>(), 0u64..50, 0u64..16, 0u64..16), 1..120),
        seed in any::<u64>(),
    ) {
        use tempriv_core::buffer::{BufferedPacket, NodeBuffer};
        use tempriv_net::ids::{FlowId, NodeId, PacketId};
        use tempriv_net::packet::Packet;
        use tempriv_sim::time::SimTime;

        let policy = BufferPolicy::Rcad { capacity: 16, victim };
        let mut buf = NodeBuffer::for_policy(&policy);
        let mut next_id = 0u64;
        for &(insert, id_sel, t_buf, t_rel) in &ops {
            if insert {
                let buffered_at = SimTime::from_ticks(t_buf);
                buf.insert(BufferedPacket {
                    packet: Packet::new(
                        PacketId(next_id),
                        FlowId(0),
                        NodeId(1),
                        0,
                        buffered_at,
                        0.0,
                    ),
                    buffered_at,
                    release_at: SimTime::from_ticks(t_rel),
                    timer: None,
                });
                next_id += 1;
            } else if !buf.is_empty() {
                let ids: Vec<PacketId> = buf.iter().map(|e| e.packet.id).collect();
                let _ = buf.remove(ids[(id_sel as usize) % ids.len()]);
            }
            if !buf.is_empty() {
                // Two rngs at identical state, so Random's single index
                // draw is the same on both paths.
                let mut r_index = RngFactory::new(seed).stream(next_id);
                let mut r_scan = RngFactory::new(seed).stream(next_id);
                prop_assert_eq!(
                    buf.select_victim(victim, &mut r_index),
                    buf.select_victim_scan(victim, &mut r_scan)
                );
            }
        }
    }
}

//! Extension E3: RCAD vs Chaum-style threshold mixes (related work §6).
//!
//! SG-Mixes delay each packet exponentially — exactly what an RCAD node
//! does — while threshold (pool) mixes batch. This bench compares the
//! two families on mechanism-agnostic axes: the oracle privacy floor
//! (latency variance), mean latency, and reordering.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{mix_comparison_sweep, SweepParams};

fn print_series() {
    let params = SweepParams {
        inv_lambdas: vec![2.0, 6.0, 12.0, 20.0],
        ..SweepParams::paper_default()
    };
    let rows = mix_comparison_sweep(&params);
    let mut s = Series::new([
        "mechanism",
        "1/lambda",
        "oracle MSE",
        "latency",
        "reordering",
        "stranded",
    ]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.mechanism),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.oracle_mse, 1),
            fmt_f(r.mean_latency, 1),
            fmt_f(r.reordering, 3),
            r.stranded.to_string(),
        ]);
    }
    eprintln!(
        "\n== E3: RCAD vs threshold mixes (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("mix_comparison");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 150,
        ..SweepParams::paper_default()
    };
    group.bench_function("three_mechanisms_one_point", |b| {
        b.iter(|| mix_comparison_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

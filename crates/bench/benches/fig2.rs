//! Figure 2 (both panels): adversary MSE and delivery latency vs 1/λ for
//! no-delay, delay+unlimited-buffers, and delay+limited-buffers (RCAD).
//!
//! Running `cargo bench` prints the regenerated series (paper scale) and
//! then times one representative sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{fig2_sweep, SweepParams};

fn print_series() {
    let rows = fig2_sweep(&SweepParams::paper_default());
    let mut mse = Series::new(["1/lambda", "NoDelay", "Delay+Unlimited", "Delay+RCAD"]);
    let mut lat = Series::new(["1/lambda", "NoDelay", "Delay+Unlimited", "Delay+RCAD"]);
    for r in &rows {
        mse.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.no_delay.mse, 1),
            fmt_f(r.unlimited.mse, 1),
            fmt_f(r.rcad.mse, 1),
        ]);
        lat.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.no_delay.mean_latency, 1),
            fmt_f(r.unlimited.mean_latency, 1),
            fmt_f(r.rcad.mean_latency, 1),
        ]);
    }
    eprintln!(
        "\n== Figure 2(a): adversary MSE (flow S1) ==\n{}",
        mse.to_table()
    );
    eprintln!(
        "== Figure 2(b): mean delivery latency (flow S1) ==\n{}",
        lat.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 200,
        ..SweepParams::paper_default()
    };
    group.bench_function("sweep_point_inv_lambda_2", |b| {
        b.iter(|| fig2_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation A2: delay distributions at equal mean (§3.1).
//!
//! The exponential is the max-entropy non-negative distribution at a
//! fixed mean; with unlimited buffers (isolating the distributional
//! effect from preemption) it should yield the highest adversary MSE per
//! unit of added latency.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{delay_ablation_sweep, SweepParams};

fn print_series() {
    let params = SweepParams {
        inv_lambdas: vec![2.0, 10.0, 20.0],
        ..SweepParams::paper_default()
    };
    let rows = delay_ablation_sweep(&params);
    let mut s = Series::new(["distribution", "1/lambda", "MSE", "latency"]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.distribution),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.mse, 1),
            fmt_f(r.mean_latency, 1),
        ]);
    }
    eprintln!(
        "\n== A2: delay-distribution ablation, unlimited buffers (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("ablation_delay");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 150,
        ..SweepParams::paper_default()
    };
    group.bench_function("three_distributions_one_point", |b| {
        b.iter(|| delay_ablation_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

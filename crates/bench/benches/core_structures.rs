//! Data-structure microbenchmarks for the hot-path core: event-queue
//! push/pop/cancel mixes and node-buffer victim selection across every
//! victim policy at several occupancies.
//!
//! These benches target the structures themselves (no network on top);
//! `kernel.rs` covers the end-to-end event rate and `perf_baseline
//! --bench scale` covers whole-simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_core::buffer::{BufferPolicy, BufferedPacket, NodeBuffer, VictimPolicy};
use tempriv_net::ids::{FlowId, NodeId, PacketId};
use tempriv_net::packet::Packet;
use tempriv_sim::queue::EventQueue;
use tempriv_sim::rng::RngFactory;
use tempriv_sim::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    // Pure push-then-drain: the heap's best case, no tombstones at all.
    group.bench_function("push_pop_10k", |b| {
        let mut rng = RngFactory::new(11).stream(0);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_units(rng.sample_exp(10.0)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut sum = 0usize;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            sum
        });
    });

    // RCAD-style steady state: every push is likely to be cancelled and
    // replaced before it fires, so tombstones accumulate and compaction
    // has to keep the heap bounded.
    group.bench_function("interleaved_cancel_10k", |b| {
        let mut rng = RngFactory::new(12).stream(0);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_units(rng.sample_exp(10.0)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut last = None;
            for (i, &t) in times.iter().enumerate() {
                if let Some(id) = last.take() {
                    q.cancel(id);
                }
                last = Some(q.push(t, i));
                if i % 4 == 3 {
                    // Let some events fire so the queue drains too.
                    q.pop();
                }
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });

    // Worst case for the old design: cancel almost everything, then pop
    // the survivors through the tombstone field.
    group.bench_function("cancel_90pct_then_drain_10k", |b| {
        let mut rng = RngFactory::new(13).stream(0);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_units(rng.sample_exp(10.0)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().map(|&t| q.push(t, ())).collect();
            for (i, id) in ids.iter().enumerate() {
                if i % 10 != 0 {
                    q.cancel(*id);
                }
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });

    group.finish();
}

/// Builds a buffer holding `k` packets with distinct pseudo-random
/// release and arrival times, indexed for the given policy.
fn filled_buffer(k: usize, victim: VictimPolicy) -> NodeBuffer {
    let policy = BufferPolicy::Rcad {
        capacity: k,
        victim,
    };
    let mut buf = NodeBuffer::for_policy(&policy);
    let mut rng = RngFactory::new(21).stream(0);
    for i in 0..k {
        let buffered_at = SimTime::from_units(rng.sample_exp(5.0));
        let release_at = buffered_at + SimDuration::from_units(rng.sample_exp(30.0));
        let packet = Packet::new(
            PacketId(i as u64),
            FlowId(0),
            NodeId(1),
            i as u32,
            buffered_at,
            0.0,
        );
        buf.insert(BufferedPacket {
            packet,
            buffered_at,
            release_at,
            timer: None,
        });
    }
    buf
}

fn bench_victim_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("victim_selection");
    let policies = [
        VictimPolicy::ShortestRemaining,
        VictimPolicy::LongestRemaining,
        VictimPolicy::Oldest,
        VictimPolicy::Random,
    ];

    for &k in &[10usize, 100, 1000] {
        for &victim in &policies {
            // Steady-state preemption churn: pick a victim, evict it,
            // admit a replacement. This is what RCAD does on every
            // arrival at a full buffer, and it exercises both the
            // select path and index maintenance. (The per-iteration
            // buffer clone is the same cost for every policy, so the
            // relative numbers stay comparable.)
            let name = format!("{}_k{}", victim.name(), k);
            group.bench_function(&name, |b| {
                let template = filled_buffer(k, victim);
                let mut rng = RngFactory::new(22).stream(0);
                b.iter(|| {
                    let mut buf = template.clone();
                    for next_id in k as u64..k as u64 + 64 {
                        let id = buf
                            .select_victim(victim, &mut rng)
                            .expect("buffer is non-empty");
                        let mut entry = buf.remove(id).expect("victim is buffered");
                        entry.packet.id = PacketId(next_id);
                        entry.release_at += SimDuration::from_units(1.0);
                        buf.insert(entry);
                    }
                    buf.len()
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_victim_selection);
criterion_main!(benches);

//! Figure 3: baseline vs adaptive adversary MSE under RCAD, vs 1/λ.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{fig3_sweep, SweepParams};

fn print_series() {
    let rows = fig3_sweep(&SweepParams::paper_default());
    let mut s = Series::new(["1/lambda", "BaselineAdversary", "AdaptiveAdversary"]);
    for r in &rows {
        s.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.baseline_mse, 1),
            fmt_f(r.adaptive_mse, 1),
        ]);
    }
    eprintln!(
        "\n== Figure 3: estimation MSE, two adversary models (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 200,
        ..SweepParams::paper_default()
    };
    group.bench_function("sweep_point_inv_lambda_2", |b| {
        b.iter(|| fig3_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

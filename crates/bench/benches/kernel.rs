//! Simulation-kernel microbenchmarks: event queue throughput, cancel
//! cost, and full network-simulation event rates.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_core::config::ExperimentConfig;
use tempriv_sim::queue::EventQueue;
use tempriv_sim::rng::RngFactory;
use tempriv_sim::time::SimTime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");

    group.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = RngFactory::new(1).stream(0);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_units(rng.sample_exp(10.0)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut sum = 0usize;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            sum
        });
    });

    group.bench_function("event_queue_cancel_heavy", |b| {
        let mut rng = RngFactory::new(2).stream(0);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_units(rng.sample_exp(10.0)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().map(|&t| q.push(t, ())).collect();
            // Cancel half, RCAD-style.
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });

    group.sample_size(10);
    group.bench_function("paper_network_200_packets", |b| {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.packets_per_source = 200;
        let sim = cfg.build().expect("valid config");
        b.iter(|| sim.run());
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Extension E4: non-stationary (on/off) traffic — whole-trace vs
//! sliding-window adaptive adversaries under RCAD.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{burst_adversary_experiment, SweepParams};

fn burst_params() -> SweepParams {
    // Intra-burst intervals where the rate-based estimate k/lambda is
    // meaningfully below the advertised 1/mu = 30 (interval < k*30/k = 3).
    SweepParams {
        inv_lambdas: vec![1.0, 1.5, 2.0, 2.5, 3.0],
        ..SweepParams::paper_default()
    }
}

fn print_series() {
    let rows = burst_adversary_experiment(&burst_params(), 200, 2_000.0, 300.0);
    let mut s = Series::new([
        "burst interval",
        "baseline",
        "adaptive (batch)",
        "windowed (online)",
        "oracle",
    ]);
    for r in &rows {
        s.push_row([
            fmt_f(r.burst_interval, 1),
            fmt_f(r.baseline_mse, 1),
            fmt_f(r.adaptive_mse, 1),
            fmt_f(r.windowed_mse, 1),
            fmt_f(r.oracle_mse, 1),
        ]);
    }
    eprintln!(
        "\n== E4: bursty sources, offline vs online adversaries (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("bursty_adversaries");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 240,
        ..SweepParams::paper_default()
    };
    group.bench_function("one_point", |b| {
        b.iter(|| burst_adversary_experiment(&smoke, 60, 600.0, 150.0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

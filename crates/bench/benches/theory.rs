//! V1: bits-through-queues bound vs empirical mutual information
//! (paper §3.2, eq. 4), plus timing of the numeric MI machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_bench::validation::btq_bound_experiment;
use tempriv_infotheory::distributions::{ErlangDist, Exponential};
use tempriv_infotheory::mutual_information::mi_additive_nats;

fn print_series() {
    let rows = btq_bound_experiment(0.5, 1.0 / 30.0, &[1, 2, 4, 8, 16, 32], 60_000, 1);
    let mut s = Series::new(["j", "bound ln(1+j*mu/lambda)", "empirical I(Xj;Zj)"]);
    for r in &rows {
        s.push_row([
            r.j.to_string(),
            fmt_f(r.bound_nats, 4),
            fmt_f(r.empirical_nats, 4),
        ]);
    }
    eprintln!(
        "\n== V1: bits-through-queues bound vs empirical MI (nats) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("theory");
    group.sample_size(10);
    group.bench_function("numeric_mi_4000pts", |b| {
        let x = ErlangDist::new(4, 0.5);
        let y = Exponential::with_mean(30.0);
        b.iter(|| mi_additive_nats(&x, &y, 4_000));
    });
    group.bench_function("btq_monte_carlo_5k", |b| {
        b.iter(|| btq_bound_experiment(0.5, 1.0 / 30.0, &[4], 5_000, 2));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

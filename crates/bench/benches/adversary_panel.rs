//! Extension E1: the full adversary hierarchy under RCAD — baseline,
//! adaptive (paper §5.4), route-aware (deployment-aware per-node
//! saturation), and the constant-offset oracle floor.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{adversary_panel_sweep, SweepParams};

fn print_series() {
    let rows = adversary_panel_sweep(&SweepParams::paper_default());
    let mut s = Series::new(["1/lambda", "baseline", "adaptive", "route-aware", "oracle"]);
    for r in &rows {
        s.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.baseline_mse, 1),
            fmt_f(r.adaptive_mse, 1),
            fmt_f(r.route_aware_mse, 1),
            fmt_f(r.oracle_mse, 1),
        ]);
    }
    eprintln!(
        "\n== E1: adversary hierarchy, MSE under RCAD (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("adversary_panel");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 200,
        ..SweepParams::paper_default()
    };
    group.bench_function("four_adversaries_one_point", |b| {
        b.iter(|| adversary_panel_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation A1: RCAD victim-selection policies.
//!
//! The paper picks the *shortest-remaining-delay* victim so that realized
//! delays stay closest to the intended distribution. This bench compares
//! that rule against longest-remaining, random, and oldest-first victims
//! on the Figure 2 setup.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{victim_ablation_sweep, SweepParams};

fn print_series() {
    let params = SweepParams {
        inv_lambdas: vec![2.0, 6.0, 12.0, 20.0],
        ..SweepParams::paper_default()
    };
    let rows = victim_ablation_sweep(&params);
    let mut s = Series::new(["victim policy", "1/lambda", "MSE", "latency", "preemptions"]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.victim),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.mse, 1),
            fmt_f(r.mean_latency, 1),
            r.preemptions.to_string(),
        ]);
    }
    eprintln!(
        "\n== A1: victim-policy ablation (flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("ablation_victim");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![2.0],
        packets_per_source: 150,
        ..SweepParams::paper_default()
    };
    group.bench_function("four_policies_one_point", |b| {
        b.iter(|| victim_ablation_sweep(&smoke))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Extension E2 (§3.3): decomposing one delay budget across the path —
//! where should the buffering live?

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::experiment::{decomposition_experiment, SweepParams};

fn print_series() {
    let rows = decomposition_experiment(&SweepParams::paper_default(), 8.0, 450.0);
    let mut s = Series::new([
        "shape",
        "buffers",
        "MSE",
        "latency",
        "max mean occupancy",
        "preemptions",
    ]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.shape),
            if r.limited_buffers {
                "RCAD k=10"
            } else {
                "unlimited"
            }
            .to_string(),
            fmt_f(r.mse, 1),
            fmt_f(r.mean_latency, 1),
            fmt_f(r.max_mean_occupancy, 2),
            r.preemptions.to_string(),
        ]);
    }
    eprintln!(
        "\n== E2: delay-budget decomposition (budget 450, 1/lambda = 8, flow S1) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    let smoke = SweepParams {
        inv_lambdas: vec![8.0],
        packets_per_source: 120,
        ..SweepParams::paper_default()
    };
    group.bench_function("eight_scenarios_small", |b| {
        b.iter(|| decomposition_experiment(&smoke, 8.0, 450.0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

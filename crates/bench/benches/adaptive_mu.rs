//! A3: the §4 rate-controlled per-node μ assignment.
//!
//! Assigning each node the service rate that pins its Erlang loss at a
//! target α equalizes preemption pressure across the network: nodes near
//! the sink (carrying the superposed traffic of all flows) delay less.
//! This bench compares the uniform-μ network against the rate-controlled
//! plan at equal target loss.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_core::adaptive_mu::rate_controlled_plan;
use tempriv_core::adversary::BaselineAdversary;
use tempriv_core::buffer::BufferPolicy;
use tempriv_core::delay::DelayPlan;
use tempriv_core::metrics::evaluate_adversary;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::ids::FlowId;
use tempriv_net::traffic::TrafficModel;

struct PlanResult {
    label: &'static str,
    mse: f64,
    latency: f64,
    preemptions: u64,
    max_node_preemption_rate: f64,
}

fn run_plan(label: &'static str, plan: DelayPlan, inv_lambda: f64) -> PlanResult {
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(1000)
        .delay_plan(plan)
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(3)
        .build()
        .expect("valid simulation");
    let outcome = sim.run();
    let knowledge = sim.adversary_knowledge();
    let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
    // Preemption rate per node = preemptions / packets handled; use the
    // flow count through the node as a proxy for handled volume.
    let counts = tempriv_core::adaptive_mu::flows_per_node(sim.routing(), sim.sources());
    let max_rate = outcome
        .nodes
        .iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(n, &c)| n.preemptions as f64 / (1000.0 * f64::from(c)))
        .fold(0.0f64, f64::max);
    PlanResult {
        label,
        mse: report.mse(FlowId(0)),
        latency: outcome.flows[0].latency.mean(),
        preemptions: outcome.total_preemptions(),
        max_node_preemption_rate: max_rate,
    }
}

fn print_series() {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 4.0;
    let rate = 1.0 / inv_lambda;
    let uniform = run_plan(
        "uniform 1/mu = 30",
        DelayPlan::shared_exponential(30.0),
        inv_lambda,
    );
    let controlled = run_plan(
        "rate-controlled (alpha = 0.05)",
        rate_controlled_plan(layout.routing(), layout.sources(), rate, 10, 0.05),
        inv_lambda,
    );
    let mut s = Series::new([
        "plan",
        "MSE (S1)",
        "latency (S1)",
        "preemptions",
        "max node preempt rate",
    ]);
    for r in [&uniform, &controlled] {
        s.push_row([
            r.label.to_string(),
            fmt_f(r.mse, 1),
            fmt_f(r.latency, 1),
            r.preemptions.to_string(),
            fmt_f(r.max_node_preemption_rate, 4),
        ]);
    }
    eprintln!(
        "\n== A3: uniform vs rate-controlled delay assignment (1/lambda = {inv_lambda}) ==\n{}",
        s.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let layout = Convergecast::paper_figure1();
    let mut group = c.benchmark_group("adaptive_mu");
    group.bench_function("plan_construction", |b| {
        b.iter(|| rate_controlled_plan(layout.routing(), layout.sources(), 0.25, 10, 0.05))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

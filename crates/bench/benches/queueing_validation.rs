//! V2–V4: simulator vs the §4 queueing theory — M/M/∞ occupancy, Erlang
//! loss, and Burke's theorem.

use criterion::{criterion_group, criterion_main, Criterion};
use tempriv_bench::table::{fmt_f, Series};
use tempriv_bench::validation::{
    burke_experiment, erlang_loss_experiment, mm_inf_occupancy_experiment,
};
use tempriv_queueing::erlang::erlang_b;

fn print_series() {
    // V2: occupancy law.
    let mut occ = Series::new(["rho", "measured mean N", "TV distance to Poisson(rho)"]);
    for &(lambda, mean) in &[(0.2f64, 10.0f64), (0.5, 10.0), (0.5, 30.0)] {
        let check = mm_inf_occupancy_experiment(lambda, mean, 40_000, 21);
        occ.push_row([
            fmt_f(check.rho, 1),
            fmt_f(check.measured_mean, 3),
            fmt_f(check.tv_distance, 4),
        ]);
    }
    eprintln!(
        "\n== V2: M/M/inf occupancy vs Poisson(rho) ==\n{}",
        occ.to_table()
    );

    // V3: Erlang loss.
    let rows = erlang_loss_experiment(
        &[1.0, 2.0, 5.0, 8.0, 12.0, 20.0, 40.0],
        10,
        10.0,
        30_000,
        23,
    );
    let mut erl = Series::new(["rho", "E(rho,10) analytic", "measured drop rate"]);
    for r in &rows {
        erl.push_row([fmt_f(r.rho, 1), fmt_f(r.analytic, 4), fmt_f(r.measured, 4)]);
    }
    eprintln!(
        "== V3: drop-tail loss vs Erlang formula ==\n{}",
        erl.to_table()
    );

    // V4: Burke.
    let check = burke_experiment(0.5, 10.0, 40_000, 25);
    let mut burke = Series::new(["metric", "value"]);
    burke.push_row([
        "CV^2 of departure gaps (1 = Poisson)".to_string(),
        fmt_f(check.cv_squared, 4),
    ]);
    burke.push_row([
        "KS statistic vs Exp(lambda)".to_string(),
        fmt_f(check.ks_statistic, 4),
    ]);
    burke.push_row([
        "KS 5% critical value".to_string(),
        fmt_f(check.ks_critical, 4),
    ]);
    burke.push_row([
        "departure gaps measured".to_string(),
        check.samples.to_string(),
    ]);
    eprintln!(
        "== V4: Burke's theorem on simulated departures ==\n{}",
        burke.to_table()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("queueing");
    group.bench_function("erlang_b_rho15_k10", |b| b.iter(|| erlang_b(15.0, 10)));
    group.sample_size(10);
    group.bench_function("mm_inf_sim_5k_packets", |b| {
        b.iter(|| mm_inf_occupancy_experiment(0.5, 10.0, 5_000, 27));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Allocation ratchet and determinism guarantees for the memory
//! observatory.
//!
//! The ratchet pins a ceiling on steady-state allocs per delivered
//! packet for every buffer/victim configuration, so a regression that
//! reintroduces per-packet heap traffic fails CI instead of silently
//! eroding the zero-alloc data-plane goal (ROADMAP item 2). The
//! ceilings carry ~2x headroom over the committed `BENCH_mem.json`
//! baselines; tightening them is progress, loosening them needs a
//! justification in the PR that does it.
//!
//! The determinism test proves the observatory is an observer: the
//! simulation outcome digest and RNG draw count are byte-identical with
//! the counting allocator + phase scopes on and off.

use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::traffic::TrafficModel;
use tempriv_telemetry::{memprof, MemScopeTimer, RecordingProbe};

// The ratchet counts through the real allocator, so this test binary
// must install it; without this the thread deltas would read zero and
// the ceilings would pass vacuously (guarded against below).
#[global_allocator]
static ALLOC: tempriv_telemetry::CountingAlloc = tempriv_telemetry::CountingAlloc;

// The counting gate is process-global and both tests toggle it, so
// they must not interleave.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The Figure-1 four-flow layout under one buffering config — the same
/// workload `perf_baseline --bench mem` ledgers.
fn figure1_sim(buffer: BufferPolicy) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(8.0))
        .packets_per_source(1000)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(buffer)
        .seed(2007)
        .build()
        .expect("paper Figure-1 config is valid")
}

/// Steady-state allocs-per-delivered for one config: warm-up run, then
/// a measured run counted via this thread's delta (immune to other test
/// threads allocating concurrently).
fn allocs_per_delivered(buffer: BufferPolicy) -> (f64, u64, u64) {
    memprof::set_enabled(true);
    let sim = figure1_sim(buffer);
    std::hint::black_box(sim.run());
    let base = memprof::thread_snapshot();
    let outcome = sim.run();
    let delta = memprof::thread_snapshot().since(base);
    let delivered = outcome.total_delivered();
    assert!(delivered > 0, "figure-1 run must deliver packets");
    (
        delta.allocs as f64 / delivered as f64,
        delta.allocs,
        delivered,
    )
}

#[test]
fn allocs_per_packet_ratchet_holds_for_every_config() {
    let _gate = GATE.lock().unwrap();
    // (config, ceiling) — baselines in results/BENCH_mem.json: roughly
    // unlimited 1.11, drop_tail 0.16, threshold_mix 1.48, rcad_* 0.07-0.09.
    let configs: [(&str, BufferPolicy, f64); 7] = [
        ("unlimited", BufferPolicy::Unlimited, 2.2),
        ("drop_tail", BufferPolicy::DropTail { capacity: 10 }, 0.4),
        (
            "threshold_mix",
            BufferPolicy::ThresholdMix { threshold: 10 },
            3.0,
        ),
        (
            "rcad_shortest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::ShortestRemaining,
            },
            0.2,
        ),
        (
            "rcad_longest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::LongestRemaining,
            },
            0.2,
        ),
        (
            "rcad_random",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Random,
            },
            0.25,
        ),
        (
            "rcad_oldest",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Oldest,
            },
            0.2,
        ),
    ];
    for (label, buffer, ceiling) in configs {
        let (per_delivered, allocs, delivered) = allocs_per_delivered(buffer);
        assert!(
            allocs > 0,
            "{label}: counting allocator must be live (0 allocs over {delivered} delivered)"
        );
        assert!(
            per_delivered <= ceiling,
            "{label}: {per_delivered:.3} allocs/delivered ({allocs}/{delivered}) \
             exceeds ratchet ceiling {ceiling}"
        );
    }
}

#[test]
fn memprof_scopes_do_not_perturb_the_simulation() {
    let _gate = GATE.lock().unwrap();
    let sim = figure1_sim(BufferPolicy::paper_rcad());

    memprof::set_enabled(false);
    let plain = sim.run();

    memprof::set_enabled(true);
    let mut probe = RecordingProbe::new(sim.routing().len());
    let mut timer = MemScopeTimer::new();
    let scoped = sim.run_profiled(&mut probe, &mut timer);
    std::hint::black_box(timer.finish());

    assert_eq!(
        plain.digest(),
        scoped.digest(),
        "outcome digest must be byte-identical with memprof scopes on"
    );
    assert_eq!(
        plain.rng_draws, scoped.rng_draws,
        "RNG draw count must be unchanged by the observatory"
    );
    assert_eq!(
        plain, scoped,
        "full outcome must be equal (mem fields excluded)"
    );
    assert!(
        scoped.allocs > 0,
        "scoped run should attribute in-run allocations"
    );
}

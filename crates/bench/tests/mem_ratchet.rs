//! Allocation ratchet and determinism guarantees for the memory
//! observatory.
//!
//! The ratchet pins a ceiling on *steady-state* allocs per delivered
//! packet for every buffer/victim configuration, so a regression that
//! reintroduces per-packet heap traffic fails CI instead of silently
//! eroding the zero-alloc data-plane goal (ROADMAP item 2). Steady
//! state is measured marginally: two identical runs that differ only in
//! packet count, ratioed by the extra deliveries. Fixed per-run costs
//! (driver construction, outcome assembly, histogram/PMF builds) cancel
//! out, leaving exactly the per-packet heap traffic of the data plane —
//! which with the SoA packet store is a handful of `Vec` doublings,
//! ~0.001 allocs/packet. A second ratchet bounds those fixed per-run
//! costs in absolute terms so they cannot quietly balloon either.
//! Tightening ceilings is progress; loosening them needs a
//! justification in the PR that does it.
//!
//! The determinism test proves the observatory is an observer: the
//! simulation outcome digest and RNG draw count are byte-identical with
//! the counting allocator + phase scopes on and off.

use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::traffic::TrafficModel;
use tempriv_telemetry::{memprof, MemScopeTimer, RecordingProbe};

// The ratchet counts through the real allocator, so this test binary
// must install it; without this the thread deltas would read zero and
// the ceilings would pass vacuously (guarded by the liveness test).
#[global_allocator]
static ALLOC: tempriv_telemetry::CountingAlloc = tempriv_telemetry::CountingAlloc;

// The counting gate is process-global and every test toggles it, so
// they must not interleave.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The Figure-1 four-flow layout under one buffering config — the same
/// workload `perf_baseline --bench mem` ledgers — at a chosen packet
/// budget per source.
fn figure1_sim(buffer: BufferPolicy, packets_per_source: u32) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(8.0))
        .packets_per_source(packets_per_source)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(buffer)
        .seed(2007)
        .build()
        .expect("paper Figure-1 config is valid")
}

/// Allocation count and deliveries for one measured run: warm-up run,
/// then a counted run via this thread's delta (immune to other test
/// threads allocating concurrently).
fn measured_run(sim: &NetworkSimulation) -> (u64, u64) {
    std::hint::black_box(sim.run());
    let base = memprof::thread_snapshot();
    let outcome = sim.run();
    let delta = memprof::thread_snapshot().since(base);
    let delivered = outcome.total_delivered();
    assert!(delivered > 0, "figure-1 run must deliver packets");
    (delta.allocs, delivered)
}

/// Marginal steady-state allocs-per-delivered for one config, plus the
/// absolute alloc count of the smaller run (the fixed-cost ratchet).
fn steady_state(buffer: BufferPolicy) -> (f64, u64, u64, u64) {
    memprof::set_enabled(true);
    let (small_allocs, small_delivered) = measured_run(&figure1_sim(buffer, 1000));
    let (big_allocs, big_delivered) = measured_run(&figure1_sim(buffer, 3000));
    assert!(
        big_delivered > small_delivered,
        "tripling the packet budget must deliver more packets"
    );
    let marginal_allocs = big_allocs.saturating_sub(small_allocs);
    let marginal_delivered = big_delivered - small_delivered;
    (
        marginal_allocs as f64 / marginal_delivered as f64,
        marginal_allocs,
        marginal_delivered,
        small_allocs,
    )
}

#[test]
fn steady_state_allocs_per_packet_ratchet_holds_for_every_config() {
    let _gate = GATE.lock().unwrap();
    // (config, steady-state ceiling) — measured marginals sit at
    // 0.0005-0.0017 allocs/packet (Vec doublings of the observation and
    // truth logs); RCAD configs carry the ROADMAP-mandated 0.05 ceiling,
    // the rest a tight 0.02. Pre-SoA baselines were 0.07-1.48 total.
    let configs: [(&str, BufferPolicy, f64); 7] = [
        ("unlimited", BufferPolicy::Unlimited, 0.02),
        ("drop_tail", BufferPolicy::DropTail { capacity: 10 }, 0.02),
        (
            "threshold_mix",
            BufferPolicy::ThresholdMix { threshold: 10 },
            0.02,
        ),
        (
            "rcad_shortest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::ShortestRemaining,
            },
            0.05,
        ),
        (
            "rcad_longest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::LongestRemaining,
            },
            0.05,
        ),
        (
            "rcad_random",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Random,
            },
            0.05,
        ),
        (
            "rcad_oldest",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Oldest,
            },
            0.05,
        ),
    ];
    // Fixed per-run costs (driver state + outcome assembly) must stay
    // bounded too; measured 568-686 allocs per run across configs.
    const FIXED_CEILING: u64 = 1400;
    for (label, buffer, ceiling) in configs {
        let (per_delivered, allocs, delivered, fixed) = steady_state(buffer);
        assert!(
            per_delivered <= ceiling,
            "{label}: {per_delivered:.4} marginal allocs/delivered ({allocs}/{delivered}) \
             exceeds steady-state ratchet ceiling {ceiling}"
        );
        assert!(
            fixed <= FIXED_CEILING,
            "{label}: {fixed} fixed per-run allocs exceed ratchet ceiling {FIXED_CEILING}"
        );
    }
}

#[test]
fn counting_allocator_gate_is_live() {
    let _gate = GATE.lock().unwrap();
    // The steady-state ratchet legitimately approaches zero marginal
    // allocs, so it can no longer double as a liveness check. Prove the
    // counting gate observes real heap traffic directly: a deliberate
    // boxed allocation must move this thread's counter.
    memprof::set_enabled(true);
    let base = memprof::thread_snapshot();
    let boxed = std::hint::black_box(Box::new([0u64; 32]));
    let delta = memprof::thread_snapshot().since(base);
    drop(boxed);
    assert!(
        delta.allocs >= 1,
        "counting allocator must observe a deliberate Box allocation"
    );
    assert!(
        delta.bytes >= 256,
        "counting allocator must attribute the boxed bytes"
    );
}

#[test]
fn memprof_scopes_do_not_perturb_the_simulation() {
    let _gate = GATE.lock().unwrap();
    let sim = figure1_sim(BufferPolicy::paper_rcad(), 1000);

    memprof::set_enabled(false);
    let plain = sim.run();

    memprof::set_enabled(true);
    let mut probe = RecordingProbe::new(sim.routing().len());
    let mut timer = MemScopeTimer::new();
    let scoped = sim.run_profiled(&mut probe, &mut timer);
    std::hint::black_box(timer.finish());

    assert_eq!(
        plain.digest(),
        scoped.digest(),
        "outcome digest must be byte-identical with memprof scopes on"
    );
    assert_eq!(
        plain.rng_draws, scoped.rng_draws,
        "RNG draw count must be unchanged by the observatory"
    );
    assert_eq!(
        plain, scoped,
        "full outcome must be equal (mem fields excluded)"
    );
    assert!(
        scoped.allocs > 0,
        "scoped run should attribute in-run allocations"
    );
}

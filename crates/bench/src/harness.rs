//! Interleaved best-of-N timing harness shared by the `perf_baseline`
//! bench modes.
//!
//! Every overhead bench in this repo times several instrumentation
//! modes over the same deterministic workload. Two disciplines keep the
//! numbers honest, and they live here so each bench mode cannot drift
//! its own copy:
//!
//! * **Interleaving** — within each repeat the modes run back-to-back,
//!   so ambient machine load skews all of them equally instead of
//!   biasing whichever mode ran during a busy stretch.
//! * **Best-of-N** — the minimum over `repeats` is kept per mode, the
//!   standard guard against scheduler noise.

use std::time::Instant;

use serde::Serialize;

/// Wall-clock seconds for one invocation of `f`.
pub fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Times `modes` interleaved over `repeats` rounds and returns the
/// per-mode minimum seconds, in mode order.
pub fn best_of_interleaved(repeats: u32, modes: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; modes.len()];
    for _ in 0..repeats {
        for (best, mode) in best.iter_mut().zip(modes.iter_mut()) {
            *best = best.min(time_once(&mut **mode));
        }
    }
    best
}

/// One instrumentation mode's timings across a sweep: the shared shape
/// every `BENCH_*.json` overhead report serializes.
#[derive(Debug, Serialize)]
pub struct ModeTiming {
    /// Mode name, e.g. `probes_off`, `metrics`, `tracing`.
    pub mode: String,
    /// Best-of-repeats seconds per sweep point, in point order.
    pub point_secs: Vec<f64>,
    /// Sum of the per-point times.
    pub total_secs: f64,
}

impl ModeTiming {
    /// Assembles one mode's timing row and logs its total to stderr.
    #[must_use]
    pub fn new(name: &str, point_secs: Vec<f64>) -> ModeTiming {
        let total_secs: f64 = point_secs.iter().sum();
        eprintln!(
            "[perf] {name}: {total_secs:.3}s over {} points",
            point_secs.len()
        );
        ModeTiming {
            mode: name.to_string(),
            point_secs,
            total_secs,
        }
    }
}

/// The three ratios every overhead bench derives from its
/// `probes_off` / `metrics` / instrumented mode timings.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverheadSummary {
    /// `metrics total / probes_off total`.
    pub metrics_over_probes_off: f64,
    /// `instrumented total / probes_off total`.
    pub over_probes_off: f64,
    /// `instrumented total / metrics total` — the layer's increment.
    pub over_metrics: f64,
    /// Layer overhead in percent: `(instrumented/metrics - 1) * 100`.
    pub overhead_pct: f64,
}

impl OverheadSummary {
    /// Derives the ratios from the three mode timings.
    #[must_use]
    pub fn from_modes(
        probes_off: &ModeTiming,
        metrics: &ModeTiming,
        instrumented: &ModeTiming,
    ) -> OverheadSummary {
        let ratio = |a: &ModeTiming, b: &ModeTiming| a.total_secs / b.total_secs;
        OverheadSummary {
            metrics_over_probes_off: ratio(metrics, probes_off),
            over_probes_off: ratio(instrumented, probes_off),
            over_metrics: ratio(instrumented, metrics),
            overhead_pct: (ratio(instrumented, metrics) - 1.0) * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_interleaved_keeps_one_minimum_per_mode() {
        let mut slow_calls = 0u32;
        let mut fast_calls = 0u32;
        let best = best_of_interleaved(
            3,
            &mut [
                &mut || {
                    slow_calls += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                },
                &mut || fast_calls += 1,
            ],
        );
        assert_eq!(slow_calls, 3);
        assert_eq!(fast_calls, 3);
        assert_eq!(best.len(), 2);
        assert!(best[0] >= 0.002, "slow mode at least its sleep: {best:?}");
        assert!(best[1] < best[0], "fast mode beats slow mode: {best:?}");
    }

    #[test]
    fn overhead_summary_ratios_are_consistent() {
        let t = |name: &str, secs: f64| ModeTiming {
            mode: name.to_string(),
            point_secs: vec![secs],
            total_secs: secs,
        };
        let s = OverheadSummary::from_modes(&t("off", 1.0), &t("metrics", 1.25), &t("x", 1.5));
        assert!((s.metrics_over_probes_off - 1.25).abs() < 1e-12);
        assert!((s.over_probes_off - 1.5).abs() < 1e-12);
        assert!((s.over_metrics - 1.2).abs() < 1e-12);
        assert!((s.overhead_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mode_timing_totals_its_points() {
        let m = ModeTiming::new("probes_off", vec![0.25, 0.5]);
        assert_eq!(m.mode, "probes_off");
        assert!((m.total_secs - 0.75).abs() < 1e-12);
    }
}

//! Analytic-validation experiments (DESIGN.md V1–V4).
//!
//! The paper's §3 and §4 make quantitative claims that the simulator must
//! reproduce before the headline figures mean anything. Each function here
//! runs one such cross-check and returns plain rows for the benches, the
//! `figures` binary, and the integration tests.

use serde::{Deserialize, Serialize};
use tempriv_core::buffer::BufferPolicy;
use tempriv_core::config::{ExperimentConfig, LayoutSpec};
use tempriv_core::delay::DelayPlan;
use tempriv_infotheory::bounds::btq_packet_bound_nats;
use tempriv_infotheory::estimators::mi_from_samples_nats;
use tempriv_net::traffic::TrafficModel;
use tempriv_queueing::erlang::erlang_b;
use tempriv_queueing::goodness::{cv_squared, ks_exponential};
use tempriv_queueing::poisson::total_variation_vs_poisson;
use tempriv_sim::rng::RngFactory;

/// One row of the V1 experiment: bits-through-queues bound vs empirical
/// mutual information for the j-th packet of a Poisson source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BtqRow {
    /// Packet index j.
    pub j: u64,
    /// The analytic bound `ln(1 + jμ/λ)` in nats.
    pub bound_nats: f64,
    /// Histogram-estimated `Î(X_j; Z_j)` in nats.
    pub empirical_nats: f64,
}

/// V1: Monte-Carlo check that empirical `I(X_j; Z_j)` sits below the
/// bits-through-queues bound (paper eq. 4 terms).
///
/// Samples `trials` independent (creation, arrival) pairs per packet
/// index: `X_j` is the j-th arrival of a Poisson(λ) process and
/// `Z_j = X_j + Exp(1/μ)`.
#[must_use]
pub fn btq_bound_experiment(
    lambda: f64,
    mu: f64,
    packet_indices: &[u64],
    trials: usize,
    seed: u64,
) -> Vec<BtqRow> {
    let factory = RngFactory::new(seed);
    packet_indices
        .iter()
        .map(|&j| {
            let mut rng = factory.stream(j);
            let mut xs = Vec::with_capacity(trials);
            let mut zs = Vec::with_capacity(trials);
            for _ in 0..trials {
                let mut x = 0.0;
                for _ in 0..j {
                    x += rng.sample_exp(1.0 / lambda);
                }
                let y = rng.sample_exp(1.0 / mu);
                xs.push(x);
                zs.push(x + y);
            }
            BtqRow {
                j,
                bound_nats: btq_packet_bound_nats(j, mu, lambda),
                empirical_nats: mi_from_samples_nats(&xs, &zs, 24)
                    .expect("synthetic pairs are finite and plentiful"),
            }
        })
        .collect()
}

/// Result of the V2 experiment: simulated M/M/∞ occupancy vs Poisson(ρ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyCheck {
    /// The theoretical utilization ρ = λ/μ.
    pub rho: f64,
    /// Time-weighted mean occupancy measured at the buffering node.
    pub measured_mean: f64,
    /// Total-variation distance between the measured PMF and Poisson(ρ).
    pub tv_distance: f64,
}

/// V2: runs a Poisson source through one exponentially-delaying node with
/// unlimited buffers and compares the occupancy law against Poisson(ρ).
#[must_use]
pub fn mm_inf_occupancy_experiment(
    lambda: f64,
    delay_mean: f64,
    packets: u32,
    seed: u64,
) -> OccupancyCheck {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 1 },
        traffic: TrafficModel::poisson(lambda),
        packets_per_source: packets,
        delay: DelayPlan::shared_exponential(delay_mean),
        buffer: BufferPolicy::Unlimited,
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed,
    };
    let outcome = cfg.build().expect("valid config").run();
    // Node 1 is the single buffering node (node 0 is the sink).
    let node = &outcome.nodes[1];
    OccupancyCheck {
        rho: lambda * delay_mean,
        measured_mean: node.mean_occupancy,
        tv_distance: total_variation_vs_poisson(&node.occupancy_pmf, lambda * delay_mean),
    }
}

/// One row of the V3 experiment: drop-tail loss vs the Erlang formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErlangCheckRow {
    /// Offered load ρ = λ/μ.
    pub rho: f64,
    /// Analytic `E(ρ, k)`.
    pub analytic: f64,
    /// Measured drop fraction at the buffering node.
    pub measured: f64,
}

/// V3: a Poisson source into one k-slot drop-tail buffer; the measured
/// drop fraction should track `E(ρ, k)` (paper eq. 5).
#[must_use]
pub fn erlang_loss_experiment(
    rhos: &[f64],
    k: usize,
    delay_mean: f64,
    packets: u32,
    seed: u64,
) -> Vec<ErlangCheckRow> {
    rhos.iter()
        .map(|&rho| {
            let lambda = rho / delay_mean;
            let cfg = ExperimentConfig {
                layout: LayoutSpec::Line { hops: 1 },
                traffic: TrafficModel::poisson(lambda),
                packets_per_source: packets,
                delay: DelayPlan::shared_exponential(delay_mean),
                buffer: BufferPolicy::DropTail { capacity: k },
                link_delay: 1.0,
                link_loss: 0.0,
                link_jitter: 0.0,
                seed: seed ^ rho.to_bits(),
            };
            let outcome = cfg.build().expect("valid config").run();
            let measured = outcome.total_drops() as f64 / outcome.flows[0].created as f64;
            ErlangCheckRow {
                rho,
                analytic: erlang_b(rho, k as u32),
                measured,
            }
        })
        .collect()
}

/// Result of the V4 experiment: is the departure process of an M/M/∞
/// stage still Poisson (Burke's theorem)?
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurkeCheck {
    /// Squared coefficient of variation of the departure gaps (1 for a
    /// Poisson process).
    pub cv_squared: f64,
    /// KS statistic of the gaps against Exp(λ).
    pub ks_statistic: f64,
    /// 5% critical value for the sample size.
    pub ks_critical: f64,
    /// Number of departure gaps measured.
    pub samples: usize,
}

/// V4: departure inter-arrival times of a single M/M/∞ stage fed by
/// Poisson(λ). Arrivals at the sink, shifted by the constant link delay,
/// are exactly the stage's departures. The middle of the run (steady
/// state) should be exponential at rate λ.
#[must_use]
pub fn burke_experiment(lambda: f64, delay_mean: f64, packets: u32, seed: u64) -> BurkeCheck {
    let cfg = ExperimentConfig {
        layout: LayoutSpec::Line { hops: 1 },
        traffic: TrafficModel::poisson(lambda),
        packets_per_source: packets,
        delay: DelayPlan::shared_exponential(delay_mean),
        buffer: BufferPolicy::Unlimited,
        link_delay: 1.0,
        link_loss: 0.0,
        link_jitter: 0.0,
        seed,
    };
    let outcome = cfg.build().expect("valid config").run();
    let arrivals: Vec<f64> = outcome
        .observations
        .iter()
        .map(|o| o.arrival.as_units())
        .collect();
    // Trim warm-up and drain (the station starts empty and ends draining).
    let lo = arrivals.len() / 5;
    let hi = arrivals.len() * 4 / 5;
    let gaps: Vec<f64> = arrivals[lo..hi].windows(2).map(|w| w[1] - w[0]).collect();
    BurkeCheck {
        cv_squared: cv_squared(&gaps),
        ks_statistic: ks_exponential(&gaps, lambda),
        ks_critical: tempriv_queueing::goodness::ks_critical_5pct(gaps.len()),
        samples: gaps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_bound_holds_for_every_index() {
        let rows = btq_bound_experiment(0.5, 1.0 / 30.0, &[1, 4, 16], 20_000, 7);
        for row in &rows {
            assert!(
                row.empirical_nats <= row.bound_nats + 0.05,
                "j = {}: empirical {} vs bound {}",
                row.j,
                row.empirical_nats,
                row.bound_nats
            );
            assert!(row.empirical_nats >= 0.0);
        }
        // The bound grows with j.
        assert!(rows[2].bound_nats > rows[0].bound_nats);
    }

    #[test]
    fn v2_occupancy_matches_poisson() {
        let check = mm_inf_occupancy_experiment(0.5, 10.0, 40_000, 11);
        assert!((check.measured_mean - check.rho).abs() < 0.25, "{check:?}");
        assert!(check.tv_distance < 0.05, "{check:?}");
    }

    #[test]
    fn v3_drop_rate_tracks_erlang() {
        let rows = erlang_loss_experiment(&[2.0, 8.0, 20.0], 10, 10.0, 30_000, 13);
        for row in &rows {
            assert!(
                (row.measured - row.analytic).abs() < 0.02,
                "rho {}: measured {} vs analytic {}",
                row.rho,
                row.measured,
                row.analytic
            );
        }
    }

    #[test]
    fn v4_departures_look_poisson() {
        let check = burke_experiment(0.5, 10.0, 40_000, 17);
        assert!((check.cv_squared - 1.0).abs() < 0.1, "{check:?}");
        assert!(check.ks_statistic < 2.5 * check.ks_critical, "{check:?}");
    }
}

//! Perf baseline for the observability layer and the discrete-event
//! core. `--bench trace` (the default) times the flight-recorder ring on
//! the four-flow Figure-1 sweep and writes `BENCH_trace.json`;
//! `--bench privacy` times the streaming privacy observatory
//! (`BENCH_privacy.json`); `--bench span` times the engine self-profiler
//! (`BENCH_span.json`); `--bench audit` times the windowed determinism
//! digest probe (`BENCH_audit.json`); `--bench mem` times the
//! counting-allocator observatory and ledgers allocs per delivered
//! packet across the seven buffer/victim configs plus 100/1k/10k scale
//! points (`BENCH_mem.json`); `--bench scale` sweeps random
//! geometric convergecast fields at ~100/1k/10k nodes and writes
//! `BENCH_core.json` (events/sec, peak future-event-set size, wall
//! seconds per mode).
//!
//! ```text
//! cargo run --release -p tempriv-bench --bin perf_baseline
//! cargo run --release -p tempriv-bench --bin perf_baseline -- \
//!     --packets 100 --points 2,20 --repeats 2 --out BENCH_trace.json
//! cargo run --release -p tempriv-bench --bin perf_baseline -- --bench privacy
//! cargo run --release -p tempriv-bench --bin perf_baseline -- \
//!     --bench scale --nodes 100,1000,10000 --baseline results/BENCH_core.json
//! ```
//!
//! Each mode runs the identical deterministic sweep (same seeds, same
//! event sequence — the probe layer observes and never samples), so the
//! wall-clock deltas isolate instrumentation cost. Per point the minimum
//! over `--repeats` runs is kept, the standard guard against scheduler
//! noise. For `--bench scale`, `--baseline` points at a previous
//! `BENCH_core.json`; its `probes_off` events/sec are embedded per point
//! and a speedup ratio computed, which is how before/after comparisons
//! of core data-structure work are recorded.

use std::path::PathBuf;
use std::process::ExitCode;

use serde::{Deserialize, Serialize};
use tempriv_bench::harness::{best_of_interleaved, ModeTiming, OverheadSummary};
use tempriv_core::buffer::{BufferPolicy, VictimPolicy};
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_core::telemetry::privacy_probe_for;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::geometric::GeometricDeployment;
use tempriv_net::ids::NodeId;
use tempriv_net::routing::RoutingTree;
use tempriv_net::traffic::TrafficModel;
use tempriv_sim::rng::RngFactory;
use tempriv_telemetry::{
    memprof, DigestProbe, FlightRecorder, MemScopeTimer, PhaseProfiler, RecordingProbe,
};

/// The mem bench counts through the real allocator; the other modes
/// leave the gate off and pay one relaxed load per allocation.
#[global_allocator]
static ALLOC: tempriv_telemetry::CountingAlloc = tempriv_telemetry::CountingAlloc;

/// Which instrumented mode the third timing column measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchKind {
    /// Flight-recorder ring (`BENCH_trace.json`).
    Trace,
    /// Streaming privacy observatory (`BENCH_privacy.json`).
    Privacy,
    /// Engine self-profiler with batched timers (`BENCH_span.json`).
    Span,
    /// Windowed determinism digest probe (`BENCH_audit.json`).
    Audit,
    /// Counting-allocator observatory (`BENCH_mem.json`).
    Mem,
    /// Discrete-event core throughput on geometric fields (`BENCH_core.json`).
    Scale,
}

/// The `BENCH_trace.json` payload.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, tracing.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `tracing total / probes_off total`.
    tracing_over_probes_off: f64,
    /// `tracing total / metrics total` — the ring-buffer increment.
    tracing_over_metrics: f64,
    /// Ring-buffer overhead in percent: `(tracing/metrics - 1) * 100`.
    tracing_overhead_pct: f64,
}

/// The `BENCH_privacy.json` payload.
#[derive(Debug, Serialize)]
struct PrivacyBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, privacy.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `privacy total / probes_off total`.
    privacy_over_probes_off: f64,
    /// `privacy total / metrics total` — the observatory increment.
    privacy_over_metrics: f64,
    /// Observatory overhead in percent: `(privacy/metrics - 1) * 100`.
    privacy_overhead_pct: f64,
}

/// The `BENCH_span.json` payload. `probes_off` is the profiler-off path
/// — since the driver routes every run through the profiled loop with a
/// no-op timer, its time *is* the zero-cost-when-off claim; `profiled`
/// adds the batched [`PhaseProfiler`] on top of the metrics probe.
#[derive(Debug, Serialize)]
struct SpanBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, profiled.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `profiled total / probes_off total`.
    profiled_over_probes_off: f64,
    /// `profiled total / metrics total` — the self-profiler increment.
    profiled_over_metrics: f64,
    /// Self-profiler overhead in percent: `(profiled/metrics - 1) * 100`.
    profiled_overhead_pct: f64,
}

/// The `BENCH_audit.json` payload. `audited` composes the
/// [`DigestProbe`] over the metrics probe exactly as the runtime
/// collector does when `--digest-window` is set, so
/// `audited_overhead_pct` is the cost of always-on determinism
/// auditing relative to the metrics instrumentation everyone runs.
#[derive(Debug, Serialize)]
struct AuditBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, audited.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `audited total / probes_off total`.
    audited_over_probes_off: f64,
    /// `audited total / metrics total` — the digest-probe increment.
    audited_over_metrics: f64,
    /// Digest-probe overhead in percent: `(audited/metrics - 1) * 100`.
    audited_overhead_pct: f64,
}

/// One buffer/victim config's steady-state allocation ledger.
#[derive(Debug, Serialize)]
struct MemConfigLedger {
    /// Config label, e.g. `rcad_shortest_remaining`.
    config: String,
    /// Heap allocations in one steady-state (post-warm-up) run.
    allocs: u64,
    /// Bytes requested in that run.
    alloc_bytes: u64,
    /// Packets delivered in that run.
    delivered: u64,
    /// `allocs / delivered` — the zero-alloc-data-plane ratchet figure.
    allocs_per_delivered: f64,
    /// Peak live heap bytes during that run (peak rebased beforehand).
    peak_live_bytes: u64,
}

/// One geometric scale point's allocation ledger.
#[derive(Debug, Serialize)]
struct MemScalePoint {
    /// Node count of the geometric field.
    nodes: usize,
    /// Heap allocations in one steady-state run.
    allocs: u64,
    /// Packets delivered in that run.
    delivered: u64,
    /// `allocs / delivered`.
    allocs_per_delivered: f64,
    /// Peak live heap bytes during that run.
    peak_live_bytes: u64,
}

/// The `BENCH_mem.json` payload. The timing half gates the counting
/// allocator + scope timer against the metrics probe like every other
/// observability bench; the ledger half commits allocs-per-delivered
/// baselines per buffer/victim config and per scale point.
#[derive(Debug, Serialize)]
struct MemBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the timing sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, mem.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `mem total / probes_off total`.
    mem_over_probes_off: f64,
    /// `mem total / metrics total` — the allocator-observatory increment.
    mem_over_metrics: f64,
    /// Observatory overhead in percent: `(mem/metrics - 1) * 100`.
    mem_overhead_pct: f64,
    /// Headline: paper-config (RCAD shortest-remaining) steady-state
    /// allocs per delivered packet.
    allocs_per_delivered: f64,
    /// Headline: max peak live heap bytes across the configs.
    peak_live_bytes: u64,
    /// Per-config ledgers across the seven buffer/victim configs.
    configs: Vec<MemConfigLedger>,
    /// Ledgers at the geometric 100/1k/10k scale points.
    scale_points: Vec<MemScalePoint>,
}

/// One instrumentation mode's timing at one scale point.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleModeTiming {
    /// Mode name: `probes_off` or `metrics`.
    mode: String,
    /// Best-of-repeats wall seconds for one full run.
    secs: f64,
    /// Engine events delivered per wall second (`events / secs`).
    events_per_sec: f64,
}

/// One scale point: a sampled geometric field of `nodes` nodes.
#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    /// Node count of the geometric field (sink included).
    nodes: usize,
    /// Number of source flows (every 10th node).
    sources: usize,
    /// Packets each source creates.
    packets_per_source: u32,
    /// Engine events delivered in one run (mode-invariant).
    events: u64,
    /// Peak future-event-set size over the run (mode-invariant).
    peak_fes: u64,
    /// Per-mode timings: probes_off, metrics.
    modes: Vec<ScaleModeTiming>,
    /// `probes_off` events/sec of the `--baseline` run at this node
    /// count, when one was given.
    #[serde(default)]
    baseline_events_per_sec: Option<f64>,
    /// `events_per_sec / baseline_events_per_sec` for `probes_off`.
    #[serde(default)]
    speedup: Option<f64>,
    /// Per-shard event counts of the balanced-cut sharded run, when
    /// `--shards` was given (empty for serial-only runs). Sums to that
    /// run's own event total; the exact-cut cross-check separately
    /// asserts bit-equality with the serial engine.
    #[serde(default)]
    shard_events: Vec<u64>,
}

/// The `BENCH_core.json` payload.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleReport {
    /// What was benchmarked.
    bench: String,
    /// Topology/workload seed.
    seed: u64,
    /// Total packet budget per point (split across sources).
    budget: u64,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// One entry per `--nodes` value.
    points: Vec<ScalePoint>,
    /// `probes_off` speedup vs `--baseline` on the largest point.
    #[serde(default)]
    headline_speedup: Option<f64>,
}

/// Builds the scale-point simulation: a connected unit-disk field at
/// constant density (side = √n, range 2 ⇒ mean degree ≈ 4π), sink
/// pinned at the corner, every 10th node a source, paper-default RCAD
/// buffering so the cancel-heavy preemption path is exercised.
fn scale_sim(n_nodes: usize, budget: u64, seed: u64) -> (NetworkSimulation, usize, u32) {
    let side = (n_nodes as f64).sqrt().max(3.0);
    // Constant density keeps 100/1k/10k byte-identical to the committed
    // baselines; past 100k the random-geometric connectivity threshold
    // (πr² vs ln n) catches up with range 2, so the million-node point
    // widens the radio range slightly to stay connected.
    let range = if n_nodes > 100_000 { 2.5 } else { 2.0 };
    let deploy = GeometricDeployment::new(side, side, n_nodes, range);
    let mut rng = RngFactory::new(seed).stream(0x5CA1E);
    let topo = deploy
        .sample_connected(&mut rng, 64)
        .expect("constant-density field should connect within 64 attempts");
    let routing = RoutingTree::shortest_path(&topo, NodeId(0)).expect("connected topology routes");
    // Every 10th node sources traffic up to 10k nodes (the committed
    // points); larger fields keep ~1000 sources so the packet budget
    // stays meaningful per flow.
    let stride = if n_nodes > 10_000 { n_nodes / 1000 } else { 10 };
    let sources: Vec<NodeId> = (1..n_nodes)
        .step_by(stride)
        .map(|i| NodeId(i as u32))
        .collect();
    let n_sources = sources.len();
    let packets = u32::try_from((budget / n_sources as u64).clamp(20, 5000)).expect("clamped");
    let sim = NetworkSimulation::builder(routing, sources)
        .traffic(TrafficModel::periodic(2.0))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(seed)
        .build()
        .expect("scale config is valid");
    (sim, n_sources, packets)
}

/// Runs the scale sweep and assembles the `BENCH_core.json` report.
fn run_scale(
    node_counts: &[usize],
    budget: u64,
    seed: u64,
    repeats: u32,
    shards: u32,
    workers: usize,
    baseline: Option<&ScaleReport>,
) -> ScaleReport {
    let mut points = Vec::with_capacity(node_counts.len());
    for &n in node_counts {
        let (sim, n_sources, packets) = scale_sim(n, budget, seed);
        let n_buf_nodes = sim.routing().len();
        // Warm-up run; also pins the mode-invariant event statistics.
        let outcome = sim.run();
        let (events, peak_fes) = (outcome.events, outcome.peak_fes);
        // Sharded cross-checks. The exact (trunk-edge) cut must
        // reproduce the serial run bit-for-bit: same event count, same
        // outcome digest. The balanced (load-carved) cut — the one the
        // timed `sharded` mode below runs, since a corner-sink geometric
        // field is one giant subtree the exact cut cannot split — must
        // conserve the packet population; its per-shard event counts are
        // what the report's shard table shows.
        let shard_events: Vec<u64> = if shards > 1 {
            let exact = sim.run_sharded(shards, workers);
            assert_eq!(
                exact.events, events,
                "exact sharded run must deliver the serial event count at n={n}"
            );
            assert_eq!(
                exact.digest(),
                outcome.digest(),
                "exact sharded run must reproduce the serial outcome digest at n={n}"
            );
            let balanced = sim.run_sharded_balanced(shards, workers);
            let created: u64 = balanced.flows.iter().map(|f| f.created).sum();
            assert_eq!(
                balanced.total_delivered() + balanced.total_drops() + balanced.total_stranded(),
                created,
                "balanced sharded run must conserve the packet population at n={n}"
            );
            balanced.shards.iter().map(|s| s.events).collect()
        } else {
            Vec::new()
        };
        std::hint::black_box(outcome);
        let mut serial = || {
            let out = sim.run();
            assert_eq!(out.events, events, "scale runs must be deterministic");
            std::hint::black_box(out);
        };
        let mut metrics = || {
            let mut probe = RecordingProbe::new(n_buf_nodes);
            std::hint::black_box(sim.run_probed(&mut probe));
            std::hint::black_box(&probe);
        };
        let mut sharded_mode = || {
            std::hint::black_box(sim.run_sharded_balanced(shards, workers));
        };
        let mut modes_run: Vec<&mut dyn FnMut()> = vec![&mut serial, &mut metrics];
        let mut mode_names = vec!["probes_off", "metrics"];
        if shards > 1 {
            modes_run.push(&mut sharded_mode);
            mode_names.push("sharded");
        }
        let best = best_of_interleaved(repeats, &mut modes_run);
        let modes: Vec<ScaleModeTiming> = mode_names
            .iter()
            .zip(best)
            .map(|(name, secs)| ScaleModeTiming {
                mode: (*name).to_string(),
                secs,
                events_per_sec: events as f64 / secs,
            })
            .collect();
        let baseline_events_per_sec = baseline.and_then(|b| {
            b.points
                .iter()
                .find(|p| p.nodes == n)
                .and_then(|p| p.modes.iter().find(|m| m.mode == "probes_off"))
                .map(|m| m.events_per_sec)
        });
        let speedup = baseline_events_per_sec.map(|b| modes[0].events_per_sec / b);
        eprintln!(
            "[perf] scale n={n}: {events} events, peak FES {peak_fes}, \
             {:.0} ev/s probes_off{}",
            modes[0].events_per_sec,
            speedup.map_or(String::new(), |s| format!(", {s:.2}x vs baseline")),
        );
        points.push(ScalePoint {
            nodes: n,
            sources: n_sources,
            packets_per_source: packets,
            events,
            peak_fes,
            modes,
            baseline_events_per_sec,
            speedup,
            shard_events,
        });
    }
    let headline_speedup = points
        .iter()
        .max_by_key(|p| p.nodes)
        .and_then(|p| p.speedup);
    ScaleReport {
        bench: "geometric_convergecast_scale".to_string(),
        seed,
        budget,
        repeats,
        points,
        headline_speedup,
    }
}

fn figure1_sim(inv_lambda: f64, packets: u32) -> NetworkSimulation {
    figure1_sim_with(inv_lambda, packets, BufferPolicy::paper_rcad())
}

fn figure1_sim_with(inv_lambda: f64, packets: u32, buffer: BufferPolicy) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(buffer)
        .seed(2007)
        .build()
        .expect("paper Figure-1 config is valid")
}

/// The seven buffer/victim configurations the memory ledger pins:
/// every buffering discipline in the repo, with RCAD expanded across
/// all four victim policies.
fn mem_configs() -> [(&'static str, BufferPolicy); 7] {
    [
        ("unlimited", BufferPolicy::Unlimited),
        ("drop_tail", BufferPolicy::DropTail { capacity: 10 }),
        (
            "threshold_mix",
            BufferPolicy::ThresholdMix { threshold: 10 },
        ),
        (
            "rcad_shortest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::ShortestRemaining,
            },
        ),
        (
            "rcad_longest_remaining",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::LongestRemaining,
            },
        ),
        (
            "rcad_random",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Random,
            },
        ),
        (
            "rcad_oldest",
            BufferPolicy::Rcad {
                capacity: 10,
                victim: VictimPolicy::Oldest,
            },
        ),
    ]
}

/// Steady-state allocation ledger for one simulation: a warm-up run
/// absorbs one-time lazy setup, then a measured run counts this
/// thread's allocations and the rebased peak-live high-water mark.
/// Requires counting to be enabled.
fn measure_mem(sim: &NetworkSimulation) -> (u64, u64, u64, f64, u64) {
    std::hint::black_box(sim.run());
    memprof::reset_peak();
    let base = memprof::thread_snapshot();
    let outcome = sim.run();
    let delta = memprof::thread_snapshot().since(base);
    let peak = memprof::snapshot().peak_live_bytes;
    let delivered = outcome.total_delivered();
    std::hint::black_box(outcome);
    #[allow(clippy::cast_precision_loss)]
    let per_delivered = if delivered > 0 {
        delta.allocs as f64 / delivered as f64
    } else {
        0.0
    };
    (delta.allocs, delta.bytes, delivered, per_delivered, peak)
}

/// Ledgers the seven buffer/victim configs on the Figure-1 layout.
fn mem_config_ledgers(inv_lambda: f64, packets: u32) -> Vec<MemConfigLedger> {
    mem_configs()
        .into_iter()
        .map(|(label, buffer)| {
            let sim = figure1_sim_with(inv_lambda, packets, buffer);
            let (allocs, alloc_bytes, delivered, allocs_per_delivered, peak_live_bytes) =
                measure_mem(&sim);
            eprintln!(
                "[perf] mem {label}: {allocs} allocs / {delivered} delivered \
                 = {allocs_per_delivered:.2}, peak live {peak_live_bytes} B"
            );
            MemConfigLedger {
                config: label.to_string(),
                allocs,
                alloc_bytes,
                delivered,
                allocs_per_delivered,
                peak_live_bytes,
            }
        })
        .collect()
}

/// Ledgers the geometric scale points (default 100/1k/10k nodes).
fn mem_scale_ledgers(node_counts: &[usize], budget: u64, seed: u64) -> Vec<MemScalePoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let (sim, _, _) = scale_sim(nodes, budget, seed);
            let (allocs, _, delivered, allocs_per_delivered, peak_live_bytes) = measure_mem(&sim);
            eprintln!(
                "[perf] mem scale n={nodes}: {allocs} allocs / {delivered} delivered \
                 = {allocs_per_delivered:.2}, peak live {peak_live_bytes} B"
            );
            MemScalePoint {
                nodes,
                allocs,
                delivered,
                allocs_per_delivered,
                peak_live_bytes,
            }
        })
        .collect()
}

/// Times the three instrumentation modes over the sweep. Within each
/// repeat the modes run back-to-back, so ambient machine load skews them
/// equally rather than biasing whichever mode happened to run during a
/// busy stretch; the minimum per mode over `repeats` is kept. The third
/// mode is the flight-recorder ring (`--bench trace`) or the streaming
/// privacy observatory (`--bench privacy`), both composed over the
/// metrics probe exactly as the runtime collector composes them.
fn time_modes(kind: BenchKind, points: &[f64], packets: u32, repeats: u32) -> [ModeTiming; 3] {
    let mut secs: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    // The ring is allocated once and reset between runs, as a long-lived
    // flight recorder would be: the steady-state cost is the per-event
    // record, not the one-time arena allocation.
    let mut flight = FlightRecorder::new();
    for &inv_lambda in points {
        let sim = figure1_sim(inv_lambda, packets);
        let nodes = sim.routing().len();
        let mut instrumented = || match kind {
            BenchKind::Trace => {
                flight.reset();
                let mut pair = (RecordingProbe::new(nodes), &mut flight);
                std::hint::black_box(sim.run_probed(&mut pair));
                std::hint::black_box(&pair);
            }
            BenchKind::Privacy => {
                let mut pair = (RecordingProbe::new(nodes), privacy_probe_for(&sim, 100));
                std::hint::black_box(sim.run_probed(&mut pair));
                std::hint::black_box(&pair);
            }
            BenchKind::Span => {
                let mut probe = RecordingProbe::new(nodes);
                let mut timer = PhaseProfiler::new();
                std::hint::black_box(sim.run_profiled(&mut probe, &mut timer));
                std::hint::black_box(timer.finish());
            }
            BenchKind::Audit => {
                let mut pair = (
                    RecordingProbe::new(nodes),
                    DigestProbe::with_default_window(),
                );
                std::hint::black_box(sim.run_probed(&mut pair));
                std::hint::black_box(pair.1.finish());
            }
            BenchKind::Mem => {
                // The full observatory: counting gate open for the
                // run, phase-attributed scope timer on the driver's
                // switch hooks. The gate closes again so the other two
                // modes time the counting-off path.
                memprof::set_enabled(true);
                let mut probe = RecordingProbe::new(nodes);
                let mut timer = MemScopeTimer::new();
                std::hint::black_box(sim.run_profiled(&mut probe, &mut timer));
                std::hint::black_box(timer.finish());
                memprof::set_enabled(false);
            }
            BenchKind::Scale => unreachable!("scale bench has its own driver"),
        };
        let best = best_of_interleaved(
            repeats,
            &mut [
                &mut || {
                    std::hint::black_box(sim.run());
                },
                &mut || {
                    let mut probe = RecordingProbe::new(nodes);
                    std::hint::black_box(sim.run_probed(&mut probe));
                    std::hint::black_box(&probe);
                },
                &mut instrumented,
            ],
        );
        for (mode, &s) in secs.iter_mut().zip(&best) {
            mode.push(s);
        }
    }
    let third = match kind {
        BenchKind::Trace => "tracing",
        BenchKind::Privacy => "privacy",
        BenchKind::Span => "profiled",
        BenchKind::Audit => "audited",
        BenchKind::Mem => "mem",
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    let [off, met, tra] = secs;
    [
        ModeTiming::new("probes_off", off),
        ModeTiming::new("metrics", met),
        ModeTiming::new(third, tra),
    ]
}

/// Parsed command line.
struct Args {
    kind: BenchKind,
    points: Vec<f64>,
    packets: u32,
    repeats: u32,
    out: PathBuf,
    /// `--bench scale` only: node counts of the geometric fields.
    nodes: Vec<usize>,
    /// `--bench scale` only: total packet budget per point.
    budget: u64,
    /// `--bench scale` only: topology/workload seed.
    seed: u64,
    /// `--bench scale` only: previous `BENCH_core.json` to compare against.
    baseline: Option<PathBuf>,
    /// `--bench scale` only: shard count for the sharded cross-check
    /// mode (1 = serial only).
    shards: u32,
    /// `--bench scale` only: worker threads for the sharded mode.
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut kind = BenchKind::Trace;
    let mut points: Vec<f64> = vec![2.0, 8.0, 14.0, 20.0];
    let mut packets: u32 = 1000;
    let mut repeats: u32 = 5;
    let mut out: Option<PathBuf> = None;
    let mut nodes: Vec<usize> = vec![100, 1000, 10_000];
    let mut budget: u64 = 40_000;
    let mut seed: u64 = 4242;
    let mut baseline: Option<PathBuf> = None;
    let mut shards: u32 = 1;
    let mut workers: usize = 1;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", args[i]))?;
        match args[i].as_str() {
            "--bench" => {
                kind = match value.as_str() {
                    "trace" => BenchKind::Trace,
                    "privacy" => BenchKind::Privacy,
                    "span" => BenchKind::Span,
                    "audit" => BenchKind::Audit,
                    "mem" => BenchKind::Mem,
                    "scale" => BenchKind::Scale,
                    other => {
                        return Err(format!(
                            "bad --bench `{other}`; trace, privacy, span, audit, mem, or scale"
                        ))
                    }
                };
            }
            "--points" => {
                points = value
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| format!("bad point `{p}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--packets" => {
                packets = value
                    .parse()
                    .map_err(|_| format!("bad --packets `{value}`"))?;
            }
            "--repeats" => {
                repeats = value
                    .parse()
                    .map_err(|_| format!("bad --repeats `{value}`"))?;
            }
            "--nodes" => {
                nodes = value
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .map_err(|_| format!("bad node count `{p}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--budget" => {
                budget = value
                    .parse()
                    .map_err(|_| format!("bad --budget `{value}`"))?;
            }
            "--seed" => {
                seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?;
            }
            "--baseline" => baseline = Some(PathBuf::from(value)),
            "--shards" => {
                shards = value
                    .parse()
                    .map_err(|_| format!("bad --shards `{value}`"))?;
            }
            "--workers" => {
                workers = value
                    .parse()
                    .map_err(|_| format!("bad --workers `{value}`"))?;
            }
            "--out" => out = Some(PathBuf::from(value)),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if points.is_empty() || repeats == 0 {
        return Err("--points and --repeats must be non-empty/positive".into());
    }
    if nodes.is_empty() || nodes.iter().any(|&n| n < 2) || budget == 0 {
        return Err("--nodes needs counts >= 2 and --budget must be positive".into());
    }
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be positive".into());
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(std::env::var("TEMPRIV_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
            .join(match kind {
                BenchKind::Trace => "BENCH_trace.json",
                BenchKind::Privacy => "BENCH_privacy.json",
                BenchKind::Span => "BENCH_span.json",
                BenchKind::Audit => "BENCH_audit.json",
                BenchKind::Mem => "BENCH_mem.json",
                BenchKind::Scale => "BENCH_core.json",
            })
    });
    Ok(Args {
        kind,
        points,
        packets,
        repeats,
        out,
        nodes,
        budget,
        seed,
        baseline,
        shards,
        workers,
    })
}

/// Serializes `report` and writes it to `out`, creating parent dirs.
fn write_report<T: Serialize>(report: &T, out: &PathBuf) -> Result<(), String> {
    let json =
        serde_json::to_string_pretty(report).map_err(|e| format!("serialize report: {e}"))?;
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(out, json).map_err(|e| format!("cannot write {}: {e}", out.display()))
}

fn run_scale_main(args: &Args) -> Result<(), String> {
    let baseline = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
            Some(
                serde_json::from_str::<ScaleReport>(&text)
                    .map_err(|e| format!("bad baseline {}: {e}", path.display()))?,
            )
        }
        None => None,
    };
    let report = run_scale(
        &args.nodes,
        args.budget,
        args.seed,
        args.repeats,
        args.shards,
        args.workers,
        baseline.as_ref(),
    );
    write_report(&report, &args.out)?;
    let largest = report.points.last().expect("at least one point");
    println!(
        "scale bench: {:.0} events/sec probes_off at {} nodes (peak FES {}){} [written {}]",
        largest.modes[0].events_per_sec,
        largest.nodes,
        largest.peak_fes,
        report
            .headline_speedup
            .map_or(String::new(), |s| format!(", {s:.2}x vs baseline")),
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.kind == BenchKind::Scale {
        return match run_scale_main(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("perf_baseline: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Args {
        kind,
        points,
        packets,
        repeats,
        out,
        nodes,
        budget,
        seed,
        ..
    } = args;

    // Warm caches so the first timed mode pays no cold-start penalty.
    std::hint::black_box(figure1_sim(points[0], packets.min(100)).run());

    let [probes_off, metrics, third] = time_modes(kind, &points, packets, repeats);

    let oh = OverheadSummary::from_modes(&probes_off, &metrics, &third);
    let (json, overhead_pct, over_probes_off) = match kind {
        BenchKind::Trace => {
            let report = BenchReport {
                bench: "figure1_sweep_tracing_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: oh.metrics_over_probes_off,
                tracing_over_probes_off: oh.over_probes_off,
                tracing_over_metrics: oh.over_metrics,
                tracing_overhead_pct: oh.overhead_pct,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.tracing_overhead_pct,
                report.tracing_over_probes_off,
            )
        }
        BenchKind::Privacy => {
            let report = PrivacyBenchReport {
                bench: "figure1_sweep_privacy_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: oh.metrics_over_probes_off,
                privacy_over_probes_off: oh.over_probes_off,
                privacy_over_metrics: oh.over_metrics,
                privacy_overhead_pct: oh.overhead_pct,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.privacy_overhead_pct,
                report.privacy_over_probes_off,
            )
        }
        BenchKind::Span => {
            let report = SpanBenchReport {
                bench: "figure1_sweep_profiler_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: oh.metrics_over_probes_off,
                profiled_over_probes_off: oh.over_probes_off,
                profiled_over_metrics: oh.over_metrics,
                profiled_overhead_pct: oh.overhead_pct,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.profiled_overhead_pct,
                report.profiled_over_probes_off,
            )
        }
        BenchKind::Audit => {
            let report = AuditBenchReport {
                bench: "figure1_sweep_audit_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: oh.metrics_over_probes_off,
                audited_over_probes_off: oh.over_probes_off,
                audited_over_metrics: oh.over_metrics,
                audited_overhead_pct: oh.overhead_pct,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.audited_overhead_pct,
                report.audited_over_probes_off,
            )
        }
        BenchKind::Mem => {
            // Ledger half: counting stays on for the steady-state
            // allocation baselines (the timing half already ran with
            // the gate closed for the uninstrumented modes).
            memprof::set_enabled(true);
            let configs = mem_config_ledgers(8.0, packets);
            let scale_points = mem_scale_ledgers(&nodes, budget, seed);
            let allocs_per_delivered = configs
                .iter()
                .find(|c| c.config == "rcad_shortest_remaining")
                .map_or(0.0, |c| c.allocs_per_delivered);
            let peak_live_bytes = configs.iter().map(|c| c.peak_live_bytes).max().unwrap_or(0);
            let report = MemBenchReport {
                bench: "figure1_sweep_mem_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: oh.metrics_over_probes_off,
                mem_over_probes_off: oh.over_probes_off,
                mem_over_metrics: oh.over_metrics,
                mem_overhead_pct: oh.overhead_pct,
                allocs_per_delivered,
                peak_live_bytes,
                configs,
                scale_points,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.mem_overhead_pct,
                report.mem_over_probes_off,
            )
        }
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    let json = match json {
        Ok(json) => json,
        Err(e) => {
            eprintln!("perf_baseline: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("perf_baseline: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let label = match kind {
        BenchKind::Trace => "ring-buffer tracing",
        BenchKind::Privacy => "privacy observatory",
        BenchKind::Span => "engine self-profiler",
        BenchKind::Audit => "determinism digest probe",
        BenchKind::Mem => "counting-allocator observatory",
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    println!(
        "{label} overhead: {overhead_pct:+.2}% vs metrics, {:+.2}% vs probes-off \
         [written {}]",
        (over_probes_off - 1.0) * 100.0,
        out.display()
    );
    ExitCode::SUCCESS
}

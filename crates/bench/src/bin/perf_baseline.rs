//! Perf baseline for the observability layer: times the four-flow
//! Figure-1 sweep probes-off vs metrics vs a third instrumented mode and
//! pins its overhead (<10% target). `--bench trace` (the default) times
//! the flight-recorder ring and writes `BENCH_trace.json`;
//! `--bench privacy` times the streaming privacy observatory and writes
//! `BENCH_privacy.json`.
//!
//! ```text
//! cargo run --release -p tempriv-bench --bin perf_baseline
//! cargo run --release -p tempriv-bench --bin perf_baseline -- \
//!     --packets 100 --points 2,20 --repeats 2 --out BENCH_trace.json
//! cargo run --release -p tempriv-bench --bin perf_baseline -- --bench privacy
//! ```
//!
//! Each mode runs the identical deterministic sweep (same seeds, same
//! event sequence — the probe layer observes and never samples), so the
//! wall-clock deltas isolate instrumentation cost. Per point the minimum
//! over `--repeats` runs is kept, the standard guard against scheduler
//! noise.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use tempriv_core::buffer::BufferPolicy;
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_core::telemetry::privacy_probe_for;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::traffic::TrafficModel;
use tempriv_telemetry::{FlightRecorder, RecordingProbe};

/// Which instrumented mode the third timing column measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchKind {
    /// Flight-recorder ring (`BENCH_trace.json`).
    Trace,
    /// Streaming privacy observatory (`BENCH_privacy.json`).
    Privacy,
}

/// One instrumentation mode's timings across the sweep.
#[derive(Debug, Serialize)]
struct ModeTiming {
    /// Mode name: `probes_off`, `metrics`, or `tracing`.
    mode: String,
    /// Best-of-repeats seconds per sweep point, in point order.
    point_secs: Vec<f64>,
    /// Sum of the per-point times.
    total_secs: f64,
}

/// The `BENCH_trace.json` payload.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, tracing.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `tracing total / probes_off total`.
    tracing_over_probes_off: f64,
    /// `tracing total / metrics total` — the ring-buffer increment.
    tracing_over_metrics: f64,
    /// Ring-buffer overhead in percent: `(tracing/metrics - 1) * 100`.
    tracing_overhead_pct: f64,
}

/// The `BENCH_privacy.json` payload.
#[derive(Debug, Serialize)]
struct PrivacyBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, privacy.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `privacy total / probes_off total`.
    privacy_over_probes_off: f64,
    /// `privacy total / metrics total` — the observatory increment.
    privacy_over_metrics: f64,
    /// Observatory overhead in percent: `(privacy/metrics - 1) * 100`.
    privacy_overhead_pct: f64,
}

fn figure1_sim(inv_lambda: f64, packets: u32) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(2007)
        .build()
        .expect("paper Figure-1 config is valid")
}

/// Wall-clock seconds for one run of `f`.
fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Times the three instrumentation modes over the sweep. Within each
/// repeat the modes run back-to-back, so ambient machine load skews them
/// equally rather than biasing whichever mode happened to run during a
/// busy stretch; the minimum per mode over `repeats` is kept. The third
/// mode is the flight-recorder ring (`--bench trace`) or the streaming
/// privacy observatory (`--bench privacy`), both composed over the
/// metrics probe exactly as the runtime collector composes them.
fn time_modes(kind: BenchKind, points: &[f64], packets: u32, repeats: u32) -> [ModeTiming; 3] {
    let mut secs = [vec![], vec![], vec![]];
    // The ring is allocated once and reset between runs, as a long-lived
    // flight recorder would be: the steady-state cost is the per-event
    // record, not the one-time arena allocation.
    let mut flight = FlightRecorder::new();
    for &inv_lambda in points {
        let sim = figure1_sim(inv_lambda, packets);
        let nodes = sim.routing().len();
        let mut best = [f64::INFINITY; 3];
        for _ in 0..repeats {
            best[0] = best[0].min(time_once(|| {
                std::hint::black_box(sim.run());
            }));
            best[1] = best[1].min(time_once(|| {
                let mut probe = RecordingProbe::new(nodes);
                std::hint::black_box(sim.run_probed(&mut probe));
                std::hint::black_box(&probe);
            }));
            best[2] = best[2].min(time_once(|| match kind {
                BenchKind::Trace => {
                    flight.reset();
                    let mut pair = (RecordingProbe::new(nodes), &mut flight);
                    std::hint::black_box(sim.run_probed(&mut pair));
                    std::hint::black_box(&pair);
                }
                BenchKind::Privacy => {
                    let mut pair = (RecordingProbe::new(nodes), privacy_probe_for(&sim, 100));
                    std::hint::black_box(sim.run_probed(&mut pair));
                    std::hint::black_box(&pair);
                }
            }));
        }
        for (mode, &s) in secs.iter_mut().zip(&best) {
            mode.push(s);
        }
    }
    let timing = |name: &str, point_secs: Vec<f64>| {
        let total_secs: f64 = point_secs.iter().sum();
        eprintln!(
            "[perf] {name}: {total_secs:.3}s over {} points",
            point_secs.len()
        );
        ModeTiming {
            mode: name.to_string(),
            point_secs,
            total_secs,
        }
    };
    let third = match kind {
        BenchKind::Trace => "tracing",
        BenchKind::Privacy => "privacy",
    };
    let [off, met, tra] = secs;
    [
        timing("probes_off", off),
        timing("metrics", met),
        timing(third, tra),
    ]
}

fn parse_args() -> Result<(BenchKind, Vec<f64>, u32, u32, PathBuf), String> {
    let mut kind = BenchKind::Trace;
    let mut points: Vec<f64> = vec![2.0, 8.0, 14.0, 20.0];
    let mut packets: u32 = 1000;
    let mut repeats: u32 = 5;
    let mut out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", args[i]))?;
        match args[i].as_str() {
            "--bench" => {
                kind = match value.as_str() {
                    "trace" => BenchKind::Trace,
                    "privacy" => BenchKind::Privacy,
                    other => return Err(format!("bad --bench `{other}`; trace or privacy")),
                };
            }
            "--points" => {
                points = value
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| format!("bad point `{p}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--packets" => {
                packets = value
                    .parse()
                    .map_err(|_| format!("bad --packets `{value}`"))?;
            }
            "--repeats" => {
                repeats = value
                    .parse()
                    .map_err(|_| format!("bad --repeats `{value}`"))?;
            }
            "--out" => out = Some(PathBuf::from(value)),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if points.is_empty() || repeats == 0 {
        return Err("--points and --repeats must be non-empty/positive".into());
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(std::env::var("TEMPRIV_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
            .join(match kind {
                BenchKind::Trace => "BENCH_trace.json",
                BenchKind::Privacy => "BENCH_privacy.json",
            })
    });
    Ok((kind, points, packets, repeats, out))
}

fn main() -> ExitCode {
    let (kind, points, packets, repeats, out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Warm caches so the first timed mode pays no cold-start penalty.
    std::hint::black_box(figure1_sim(points[0], packets.min(100)).run());

    let [probes_off, metrics, third] = time_modes(kind, &points, packets, repeats);

    let ratio = |a: &ModeTiming, b: &ModeTiming| a.total_secs / b.total_secs;
    let (json, overhead_pct, over_probes_off) = match kind {
        BenchKind::Trace => {
            let report = BenchReport {
                bench: "figure1_sweep_tracing_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                tracing_over_probes_off: ratio(&third, &probes_off),
                tracing_over_metrics: ratio(&third, &metrics),
                tracing_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.tracing_overhead_pct,
                report.tracing_over_probes_off,
            )
        }
        BenchKind::Privacy => {
            let report = PrivacyBenchReport {
                bench: "figure1_sweep_privacy_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                privacy_over_probes_off: ratio(&third, &probes_off),
                privacy_over_metrics: ratio(&third, &metrics),
                privacy_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.privacy_overhead_pct,
                report.privacy_over_probes_off,
            )
        }
    };
    let json = match json {
        Ok(json) => json,
        Err(e) => {
            eprintln!("perf_baseline: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("perf_baseline: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let label = match kind {
        BenchKind::Trace => "ring-buffer tracing",
        BenchKind::Privacy => "privacy observatory",
    };
    println!(
        "{label} overhead: {overhead_pct:+.2}% vs metrics, {:+.2}% vs probes-off \
         [written {}]",
        (over_probes_off - 1.0) * 100.0,
        out.display()
    );
    ExitCode::SUCCESS
}

//! Perf baseline for the observability layer and the discrete-event
//! core. `--bench trace` (the default) times the flight-recorder ring on
//! the four-flow Figure-1 sweep and writes `BENCH_trace.json`;
//! `--bench privacy` times the streaming privacy observatory
//! (`BENCH_privacy.json`); `--bench span` times the engine self-profiler
//! (`BENCH_span.json`); `--bench audit` times the windowed determinism
//! digest probe (`BENCH_audit.json`); `--bench scale` sweeps random
//! geometric convergecast fields at ~100/1k/10k nodes and writes
//! `BENCH_core.json` (events/sec, peak future-event-set size, wall
//! seconds per mode).
//!
//! ```text
//! cargo run --release -p tempriv-bench --bin perf_baseline
//! cargo run --release -p tempriv-bench --bin perf_baseline -- \
//!     --packets 100 --points 2,20 --repeats 2 --out BENCH_trace.json
//! cargo run --release -p tempriv-bench --bin perf_baseline -- --bench privacy
//! cargo run --release -p tempriv-bench --bin perf_baseline -- \
//!     --bench scale --nodes 100,1000,10000 --baseline results/BENCH_core.json
//! ```
//!
//! Each mode runs the identical deterministic sweep (same seeds, same
//! event sequence — the probe layer observes and never samples), so the
//! wall-clock deltas isolate instrumentation cost. Per point the minimum
//! over `--repeats` runs is kept, the standard guard against scheduler
//! noise. For `--bench scale`, `--baseline` points at a previous
//! `BENCH_core.json`; its `probes_off` events/sec are embedded per point
//! and a speedup ratio computed, which is how before/after comparisons
//! of core data-structure work are recorded.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tempriv_core::buffer::BufferPolicy;
use tempriv_core::delay::DelayPlan;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_core::telemetry::privacy_probe_for;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::geometric::GeometricDeployment;
use tempriv_net::ids::NodeId;
use tempriv_net::routing::RoutingTree;
use tempriv_net::traffic::TrafficModel;
use tempriv_sim::rng::RngFactory;
use tempriv_telemetry::{DigestProbe, FlightRecorder, PhaseProfiler, RecordingProbe};

/// Which instrumented mode the third timing column measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchKind {
    /// Flight-recorder ring (`BENCH_trace.json`).
    Trace,
    /// Streaming privacy observatory (`BENCH_privacy.json`).
    Privacy,
    /// Engine self-profiler with batched timers (`BENCH_span.json`).
    Span,
    /// Windowed determinism digest probe (`BENCH_audit.json`).
    Audit,
    /// Discrete-event core throughput on geometric fields (`BENCH_core.json`).
    Scale,
}

/// One instrumentation mode's timings across the sweep.
#[derive(Debug, Serialize)]
struct ModeTiming {
    /// Mode name: `probes_off`, `metrics`, or `tracing`.
    mode: String,
    /// Best-of-repeats seconds per sweep point, in point order.
    point_secs: Vec<f64>,
    /// Sum of the per-point times.
    total_secs: f64,
}

/// The `BENCH_trace.json` payload.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, tracing.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `tracing total / probes_off total`.
    tracing_over_probes_off: f64,
    /// `tracing total / metrics total` — the ring-buffer increment.
    tracing_over_metrics: f64,
    /// Ring-buffer overhead in percent: `(tracing/metrics - 1) * 100`.
    tracing_overhead_pct: f64,
}

/// The `BENCH_privacy.json` payload.
#[derive(Debug, Serialize)]
struct PrivacyBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, privacy.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `privacy total / probes_off total`.
    privacy_over_probes_off: f64,
    /// `privacy total / metrics total` — the observatory increment.
    privacy_over_metrics: f64,
    /// Observatory overhead in percent: `(privacy/metrics - 1) * 100`.
    privacy_overhead_pct: f64,
}

/// The `BENCH_span.json` payload. `probes_off` is the profiler-off path
/// — since the driver routes every run through the profiled loop with a
/// no-op timer, its time *is* the zero-cost-when-off claim; `profiled`
/// adds the batched [`PhaseProfiler`] on top of the metrics probe.
#[derive(Debug, Serialize)]
struct SpanBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, profiled.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `profiled total / probes_off total`.
    profiled_over_probes_off: f64,
    /// `profiled total / metrics total` — the self-profiler increment.
    profiled_over_metrics: f64,
    /// Self-profiler overhead in percent: `(profiled/metrics - 1) * 100`.
    profiled_overhead_pct: f64,
}

/// The `BENCH_audit.json` payload. `audited` composes the
/// [`DigestProbe`] over the metrics probe exactly as the runtime
/// collector does when `--digest-window` is set, so
/// `audited_overhead_pct` is the cost of always-on determinism
/// auditing relative to the metrics instrumentation everyone runs.
#[derive(Debug, Serialize)]
struct AuditBenchReport {
    /// What was benchmarked.
    bench: String,
    /// Inter-arrival times of the sweep points.
    points: Vec<f64>,
    /// Packets per source per point.
    packets_per_source: u32,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// Per-mode timings: probes_off, metrics, audited.
    modes: Vec<ModeTiming>,
    /// `metrics total / probes_off total`.
    metrics_over_probes_off: f64,
    /// `audited total / probes_off total`.
    audited_over_probes_off: f64,
    /// `audited total / metrics total` — the digest-probe increment.
    audited_over_metrics: f64,
    /// Digest-probe overhead in percent: `(audited/metrics - 1) * 100`.
    audited_overhead_pct: f64,
}

/// One instrumentation mode's timing at one scale point.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleModeTiming {
    /// Mode name: `probes_off` or `metrics`.
    mode: String,
    /// Best-of-repeats wall seconds for one full run.
    secs: f64,
    /// Engine events delivered per wall second (`events / secs`).
    events_per_sec: f64,
}

/// One scale point: a sampled geometric field of `nodes` nodes.
#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    /// Node count of the geometric field (sink included).
    nodes: usize,
    /// Number of source flows (every 10th node).
    sources: usize,
    /// Packets each source creates.
    packets_per_source: u32,
    /// Engine events delivered in one run (mode-invariant).
    events: u64,
    /// Peak future-event-set size over the run (mode-invariant).
    peak_fes: u64,
    /// Per-mode timings: probes_off, metrics.
    modes: Vec<ScaleModeTiming>,
    /// `probes_off` events/sec of the `--baseline` run at this node
    /// count, when one was given.
    #[serde(default)]
    baseline_events_per_sec: Option<f64>,
    /// `events_per_sec / baseline_events_per_sec` for `probes_off`.
    #[serde(default)]
    speedup: Option<f64>,
}

/// The `BENCH_core.json` payload.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleReport {
    /// What was benchmarked.
    bench: String,
    /// Topology/workload seed.
    seed: u64,
    /// Total packet budget per point (split across sources).
    budget: u64,
    /// Timing repetitions per point (minimum kept).
    repeats: u32,
    /// One entry per `--nodes` value.
    points: Vec<ScalePoint>,
    /// `probes_off` speedup vs `--baseline` on the largest point.
    #[serde(default)]
    headline_speedup: Option<f64>,
}

/// Builds the scale-point simulation: a connected unit-disk field at
/// constant density (side = √n, range 2 ⇒ mean degree ≈ 4π), sink
/// pinned at the corner, every 10th node a source, paper-default RCAD
/// buffering so the cancel-heavy preemption path is exercised.
fn scale_sim(n_nodes: usize, budget: u64, seed: u64) -> (NetworkSimulation, usize, u32) {
    let side = (n_nodes as f64).sqrt().max(3.0);
    let deploy = GeometricDeployment::new(side, side, n_nodes, 2.0);
    let mut rng = RngFactory::new(seed).stream(0x5CA1E);
    let topo = deploy
        .sample_connected(&mut rng, 64)
        .expect("constant-density field should connect within 64 attempts");
    let routing = RoutingTree::shortest_path(&topo, NodeId(0)).expect("connected topology routes");
    let sources: Vec<NodeId> = (1..n_nodes).step_by(10).map(|i| NodeId(i as u32)).collect();
    let n_sources = sources.len();
    let packets = u32::try_from((budget / n_sources as u64).clamp(20, 5000)).expect("clamped");
    let sim = NetworkSimulation::builder(routing, sources)
        .traffic(TrafficModel::periodic(2.0))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(seed)
        .build()
        .expect("scale config is valid");
    (sim, n_sources, packets)
}

/// Runs the scale sweep and assembles the `BENCH_core.json` report.
fn run_scale(
    node_counts: &[usize],
    budget: u64,
    seed: u64,
    repeats: u32,
    baseline: Option<&ScaleReport>,
) -> ScaleReport {
    let mut points = Vec::with_capacity(node_counts.len());
    for &n in node_counts {
        let (sim, n_sources, packets) = scale_sim(n, budget, seed);
        let n_buf_nodes = sim.routing().len();
        // Warm-up run; also pins the mode-invariant event statistics.
        let outcome = sim.run();
        let (events, peak_fes) = (outcome.events, outcome.peak_fes);
        std::hint::black_box(outcome);
        let mut best = [f64::INFINITY; 2];
        for _ in 0..repeats {
            best[0] = best[0].min(time_once(|| {
                let out = sim.run();
                assert_eq!(out.events, events, "scale runs must be deterministic");
                std::hint::black_box(out);
            }));
            best[1] = best[1].min(time_once(|| {
                let mut probe = RecordingProbe::new(n_buf_nodes);
                std::hint::black_box(sim.run_probed(&mut probe));
                std::hint::black_box(&probe);
            }));
        }
        let modes: Vec<ScaleModeTiming> = ["probes_off", "metrics"]
            .iter()
            .zip(best)
            .map(|(name, secs)| ScaleModeTiming {
                mode: (*name).to_string(),
                secs,
                events_per_sec: events as f64 / secs,
            })
            .collect();
        let baseline_events_per_sec = baseline.and_then(|b| {
            b.points
                .iter()
                .find(|p| p.nodes == n)
                .and_then(|p| p.modes.iter().find(|m| m.mode == "probes_off"))
                .map(|m| m.events_per_sec)
        });
        let speedup = baseline_events_per_sec.map(|b| modes[0].events_per_sec / b);
        eprintln!(
            "[perf] scale n={n}: {events} events, peak FES {peak_fes}, \
             {:.0} ev/s probes_off{}",
            modes[0].events_per_sec,
            speedup.map_or(String::new(), |s| format!(", {s:.2}x vs baseline")),
        );
        points.push(ScalePoint {
            nodes: n,
            sources: n_sources,
            packets_per_source: packets,
            events,
            peak_fes,
            modes,
            baseline_events_per_sec,
            speedup,
        });
    }
    let headline_speedup = points
        .iter()
        .max_by_key(|p| p.nodes)
        .and_then(|p| p.speedup);
    ScaleReport {
        bench: "geometric_convergecast_scale".to_string(),
        seed,
        budget,
        repeats,
        points,
        headline_speedup,
    }
}

fn figure1_sim(inv_lambda: f64, packets: u32) -> NetworkSimulation {
    let layout = Convergecast::paper_figure1();
    NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(inv_lambda))
        .packets_per_source(packets)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(2007)
        .build()
        .expect("paper Figure-1 config is valid")
}

/// Wall-clock seconds for one run of `f`.
fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Times the three instrumentation modes over the sweep. Within each
/// repeat the modes run back-to-back, so ambient machine load skews them
/// equally rather than biasing whichever mode happened to run during a
/// busy stretch; the minimum per mode over `repeats` is kept. The third
/// mode is the flight-recorder ring (`--bench trace`) or the streaming
/// privacy observatory (`--bench privacy`), both composed over the
/// metrics probe exactly as the runtime collector composes them.
fn time_modes(kind: BenchKind, points: &[f64], packets: u32, repeats: u32) -> [ModeTiming; 3] {
    let mut secs = [vec![], vec![], vec![]];
    // The ring is allocated once and reset between runs, as a long-lived
    // flight recorder would be: the steady-state cost is the per-event
    // record, not the one-time arena allocation.
    let mut flight = FlightRecorder::new();
    for &inv_lambda in points {
        let sim = figure1_sim(inv_lambda, packets);
        let nodes = sim.routing().len();
        let mut best = [f64::INFINITY; 3];
        for _ in 0..repeats {
            best[0] = best[0].min(time_once(|| {
                std::hint::black_box(sim.run());
            }));
            best[1] = best[1].min(time_once(|| {
                let mut probe = RecordingProbe::new(nodes);
                std::hint::black_box(sim.run_probed(&mut probe));
                std::hint::black_box(&probe);
            }));
            best[2] = best[2].min(time_once(|| match kind {
                BenchKind::Trace => {
                    flight.reset();
                    let mut pair = (RecordingProbe::new(nodes), &mut flight);
                    std::hint::black_box(sim.run_probed(&mut pair));
                    std::hint::black_box(&pair);
                }
                BenchKind::Privacy => {
                    let mut pair = (RecordingProbe::new(nodes), privacy_probe_for(&sim, 100));
                    std::hint::black_box(sim.run_probed(&mut pair));
                    std::hint::black_box(&pair);
                }
                BenchKind::Span => {
                    let mut probe = RecordingProbe::new(nodes);
                    let mut timer = PhaseProfiler::new();
                    std::hint::black_box(sim.run_profiled(&mut probe, &mut timer));
                    std::hint::black_box(timer.finish());
                }
                BenchKind::Audit => {
                    let mut pair = (
                        RecordingProbe::new(nodes),
                        DigestProbe::with_default_window(),
                    );
                    std::hint::black_box(sim.run_probed(&mut pair));
                    std::hint::black_box(pair.1.finish());
                }
                BenchKind::Scale => unreachable!("scale bench has its own driver"),
            }));
        }
        for (mode, &s) in secs.iter_mut().zip(&best) {
            mode.push(s);
        }
    }
    let timing = |name: &str, point_secs: Vec<f64>| {
        let total_secs: f64 = point_secs.iter().sum();
        eprintln!(
            "[perf] {name}: {total_secs:.3}s over {} points",
            point_secs.len()
        );
        ModeTiming {
            mode: name.to_string(),
            point_secs,
            total_secs,
        }
    };
    let third = match kind {
        BenchKind::Trace => "tracing",
        BenchKind::Privacy => "privacy",
        BenchKind::Span => "profiled",
        BenchKind::Audit => "audited",
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    let [off, met, tra] = secs;
    [
        timing("probes_off", off),
        timing("metrics", met),
        timing(third, tra),
    ]
}

/// Parsed command line.
struct Args {
    kind: BenchKind,
    points: Vec<f64>,
    packets: u32,
    repeats: u32,
    out: PathBuf,
    /// `--bench scale` only: node counts of the geometric fields.
    nodes: Vec<usize>,
    /// `--bench scale` only: total packet budget per point.
    budget: u64,
    /// `--bench scale` only: topology/workload seed.
    seed: u64,
    /// `--bench scale` only: previous `BENCH_core.json` to compare against.
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut kind = BenchKind::Trace;
    let mut points: Vec<f64> = vec![2.0, 8.0, 14.0, 20.0];
    let mut packets: u32 = 1000;
    let mut repeats: u32 = 5;
    let mut out: Option<PathBuf> = None;
    let mut nodes: Vec<usize> = vec![100, 1000, 10_000];
    let mut budget: u64 = 40_000;
    let mut seed: u64 = 4242;
    let mut baseline: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", args[i]))?;
        match args[i].as_str() {
            "--bench" => {
                kind = match value.as_str() {
                    "trace" => BenchKind::Trace,
                    "privacy" => BenchKind::Privacy,
                    "span" => BenchKind::Span,
                    "audit" => BenchKind::Audit,
                    "scale" => BenchKind::Scale,
                    other => {
                        return Err(format!(
                            "bad --bench `{other}`; trace, privacy, span, audit, or scale"
                        ))
                    }
                };
            }
            "--points" => {
                points = value
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| format!("bad point `{p}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--packets" => {
                packets = value
                    .parse()
                    .map_err(|_| format!("bad --packets `{value}`"))?;
            }
            "--repeats" => {
                repeats = value
                    .parse()
                    .map_err(|_| format!("bad --repeats `{value}`"))?;
            }
            "--nodes" => {
                nodes = value
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .map_err(|_| format!("bad node count `{p}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--budget" => {
                budget = value
                    .parse()
                    .map_err(|_| format!("bad --budget `{value}`"))?;
            }
            "--seed" => {
                seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?;
            }
            "--baseline" => baseline = Some(PathBuf::from(value)),
            "--out" => out = Some(PathBuf::from(value)),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if points.is_empty() || repeats == 0 {
        return Err("--points and --repeats must be non-empty/positive".into());
    }
    if nodes.is_empty() || nodes.iter().any(|&n| n < 2) || budget == 0 {
        return Err("--nodes needs counts >= 2 and --budget must be positive".into());
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(std::env::var("TEMPRIV_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
            .join(match kind {
                BenchKind::Trace => "BENCH_trace.json",
                BenchKind::Privacy => "BENCH_privacy.json",
                BenchKind::Span => "BENCH_span.json",
                BenchKind::Audit => "BENCH_audit.json",
                BenchKind::Scale => "BENCH_core.json",
            })
    });
    Ok(Args {
        kind,
        points,
        packets,
        repeats,
        out,
        nodes,
        budget,
        seed,
        baseline,
    })
}

/// Serializes `report` and writes it to `out`, creating parent dirs.
fn write_report<T: Serialize>(report: &T, out: &PathBuf) -> Result<(), String> {
    let json =
        serde_json::to_string_pretty(report).map_err(|e| format!("serialize report: {e}"))?;
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(out, json).map_err(|e| format!("cannot write {}: {e}", out.display()))
}

fn run_scale_main(args: &Args) -> Result<(), String> {
    let baseline = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
            Some(
                serde_json::from_str::<ScaleReport>(&text)
                    .map_err(|e| format!("bad baseline {}: {e}", path.display()))?,
            )
        }
        None => None,
    };
    let report = run_scale(
        &args.nodes,
        args.budget,
        args.seed,
        args.repeats,
        baseline.as_ref(),
    );
    write_report(&report, &args.out)?;
    let largest = report.points.last().expect("at least one point");
    println!(
        "scale bench: {:.0} events/sec probes_off at {} nodes (peak FES {}){} [written {}]",
        largest.modes[0].events_per_sec,
        largest.nodes,
        largest.peak_fes,
        report
            .headline_speedup
            .map_or(String::new(), |s| format!(", {s:.2}x vs baseline")),
        args.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.kind == BenchKind::Scale {
        return match run_scale_main(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("perf_baseline: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Args {
        kind,
        points,
        packets,
        repeats,
        out,
        ..
    } = args;

    // Warm caches so the first timed mode pays no cold-start penalty.
    std::hint::black_box(figure1_sim(points[0], packets.min(100)).run());

    let [probes_off, metrics, third] = time_modes(kind, &points, packets, repeats);

    let ratio = |a: &ModeTiming, b: &ModeTiming| a.total_secs / b.total_secs;
    let (json, overhead_pct, over_probes_off) = match kind {
        BenchKind::Trace => {
            let report = BenchReport {
                bench: "figure1_sweep_tracing_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                tracing_over_probes_off: ratio(&third, &probes_off),
                tracing_over_metrics: ratio(&third, &metrics),
                tracing_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.tracing_overhead_pct,
                report.tracing_over_probes_off,
            )
        }
        BenchKind::Privacy => {
            let report = PrivacyBenchReport {
                bench: "figure1_sweep_privacy_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                privacy_over_probes_off: ratio(&third, &probes_off),
                privacy_over_metrics: ratio(&third, &metrics),
                privacy_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.privacy_overhead_pct,
                report.privacy_over_probes_off,
            )
        }
        BenchKind::Span => {
            let report = SpanBenchReport {
                bench: "figure1_sweep_profiler_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                profiled_over_probes_off: ratio(&third, &probes_off),
                profiled_over_metrics: ratio(&third, &metrics),
                profiled_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.profiled_overhead_pct,
                report.profiled_over_probes_off,
            )
        }
        BenchKind::Audit => {
            let report = AuditBenchReport {
                bench: "figure1_sweep_audit_overhead".to_string(),
                points,
                packets_per_source: packets,
                repeats,
                metrics_over_probes_off: ratio(&metrics, &probes_off),
                audited_over_probes_off: ratio(&third, &probes_off),
                audited_over_metrics: ratio(&third, &metrics),
                audited_overhead_pct: (ratio(&third, &metrics) - 1.0) * 100.0,
                modes: vec![probes_off, metrics, third],
            };
            (
                serde_json::to_string_pretty(&report),
                report.audited_overhead_pct,
                report.audited_over_probes_off,
            )
        }
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    let json = match json {
        Ok(json) => json,
        Err(e) => {
            eprintln!("perf_baseline: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("perf_baseline: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let label = match kind {
        BenchKind::Trace => "ring-buffer tracing",
        BenchKind::Privacy => "privacy observatory",
        BenchKind::Span => "engine self-profiler",
        BenchKind::Audit => "determinism digest probe",
        BenchKind::Scale => unreachable!("scale bench has its own driver"),
    };
    println!(
        "{label} overhead: {overhead_pct:+.2}% vs metrics, {:+.2}% vs probes-off \
         [written {}]",
        (over_probes_off - 1.0) * 100.0,
        out.display()
    );
    ExitCode::SUCCESS
}

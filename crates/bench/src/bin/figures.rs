//! Regenerates every paper figure and validation table, printing aligned
//! tables and writing CSVs under `results/`.
//!
//! ```text
//! cargo run --release -p tempriv-bench --bin figures            # everything
//! cargo run --release -p tempriv-bench --bin figures fig2a fig3 # a subset
//! ```
//!
//! Valid selectors: `fig2a`, `fig2b`, `fig3`, `v1`, `v2`, `v3`, `v4`,
//! `a1`, `a2`, `a3`, `e1`, `e2`, `e3`, `e4`, `t1`, `p1`, `all`.

use std::path::PathBuf;
use std::process::ExitCode;

use tempriv_bench::table::{fmt_f, Series};
use tempriv_bench::validation::{
    btq_bound_experiment, burke_experiment, erlang_loss_experiment, mm_inf_occupancy_experiment,
};
use tempriv_core::adaptive_mu::{flows_per_node, rate_controlled_plan};
use tempriv_core::adversary::BaselineAdversary;
use tempriv_core::buffer::BufferPolicy;
use tempriv_core::delay::DelayPlan;
use tempriv_core::experiment::{
    adversary_panel_sweep, burst_adversary_experiment, decomposition_experiment,
    delay_ablation_sweep, fig2_sweep, fig3_sweep, mix_comparison_sweep, victim_ablation_sweep,
    SweepParams,
};
use tempriv_core::metrics::evaluate_adversary;
use tempriv_core::sim_driver::NetworkSimulation;
use tempriv_core::telemetry::privacy_probe_for;
use tempriv_infotheory::distributions::{ContinuousDist, ErlangDist};
use tempriv_infotheory::estimators::entropy_from_samples_nats;
use tempriv_infotheory::mutual_information::epi_lower_bound_nats;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::ids::FlowId;
use tempriv_net::traffic::TrafficModel;
use tempriv_telemetry::FlightRecorder;

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("TEMPRIV_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn emit(name: &str, title: &str, series: &Series) {
    println!("== {title} ==\n{}", series.to_table());
    let path = results_dir().join(format!("{name}.csv"));
    match series
        .write_csv(&path)
        .and_then(|()| series.write_gnuplot(title, &path))
    {
        Ok(()) => println!("[written {} and companion .gp]\n", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]\n", path.display()),
    }
}

fn fig2(which_panel: Option<char>) {
    let rows = fig2_sweep(&SweepParams::paper_default());
    if which_panel != Some('b') {
        let mut mse = Series::new(["inv_lambda", "no_delay", "delay_unlimited", "delay_rcad"]);
        for r in &rows {
            mse.push_row([
                fmt_f(r.inv_lambda, 0),
                fmt_f(r.no_delay.mse, 2),
                fmt_f(r.unlimited.mse, 2),
                fmt_f(r.rcad.mse, 2),
            ]);
        }
        emit(
            "fig2a",
            "Figure 2(a): adversary MSE vs 1/lambda (flow S1)",
            &mse,
        );
    }
    if which_panel != Some('a') {
        let mut lat = Series::new(["inv_lambda", "no_delay", "delay_unlimited", "delay_rcad"]);
        for r in &rows {
            lat.push_row([
                fmt_f(r.inv_lambda, 0),
                fmt_f(r.no_delay.mean_latency, 2),
                fmt_f(r.unlimited.mean_latency, 2),
                fmt_f(r.rcad.mean_latency, 2),
            ]);
        }
        emit(
            "fig2b",
            "Figure 2(b): mean delivery latency vs 1/lambda (flow S1)",
            &lat,
        );
    }
}

fn fig3() {
    let rows = fig3_sweep(&SweepParams::paper_default());
    let mut s = Series::new(["inv_lambda", "baseline_mse", "adaptive_mse"]);
    for r in &rows {
        s.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.baseline_mse, 2),
            fmt_f(r.adaptive_mse, 2),
        ]);
    }
    emit(
        "fig3",
        "Figure 3: baseline vs adaptive adversary MSE (flow S1)",
        &s,
    );
}

fn v1() {
    let rows = btq_bound_experiment(0.5, 1.0 / 30.0, &[1, 2, 4, 8, 16, 32, 64], 60_000, 1);
    let mut s = Series::new(["j", "bound_nats", "empirical_nats"]);
    for r in &rows {
        s.push_row([
            r.j.to_string(),
            fmt_f(r.bound_nats, 4),
            fmt_f(r.empirical_nats, 4),
        ]);
    }
    emit(
        "v1_btq_bound",
        "V1: bits-through-queues bound vs empirical MI (nats)",
        &s,
    );
}

fn v2() {
    let mut s = Series::new([
        "lambda",
        "delay_mean",
        "rho",
        "measured_mean",
        "tv_distance",
    ]);
    for &(lambda, mean) in &[(0.2f64, 10.0f64), (0.5, 10.0), (0.5, 30.0), (1.0, 30.0)] {
        let check = mm_inf_occupancy_experiment(lambda, mean, 40_000, 21);
        s.push_row([
            fmt_f(lambda, 2),
            fmt_f(mean, 1),
            fmt_f(check.rho, 1),
            fmt_f(check.measured_mean, 3),
            fmt_f(check.tv_distance, 4),
        ]);
    }
    emit("v2_mm_inf", "V2: M/M/inf occupancy vs Poisson(rho)", &s);
}

fn v3() {
    let rows = erlang_loss_experiment(
        &[0.5, 1.0, 2.0, 5.0, 8.0, 12.0, 15.0, 20.0, 40.0],
        10,
        10.0,
        30_000,
        23,
    );
    let mut s = Series::new(["rho", "erlang_b_analytic", "measured_drop_rate"]);
    for r in &rows {
        s.push_row([fmt_f(r.rho, 1), fmt_f(r.analytic, 4), fmt_f(r.measured, 4)]);
    }
    emit(
        "v3_erlang",
        "V3: drop-tail loss vs Erlang formula (k = 10)",
        &s,
    );
}

fn v4() {
    let mut s = Series::new([
        "lambda",
        "cv_squared",
        "ks_statistic",
        "ks_critical_5pct",
        "gaps",
    ]);
    for &lambda in &[0.2, 0.5, 1.0] {
        let check = burke_experiment(lambda, 10.0, 40_000, 25);
        s.push_row([
            fmt_f(lambda, 2),
            fmt_f(check.cv_squared, 4),
            fmt_f(check.ks_statistic, 4),
            fmt_f(check.ks_critical, 4),
            check.samples.to_string(),
        ]);
    }
    emit(
        "v4_burke",
        "V4: Burke's theorem on simulated departures",
        &s,
    );
}

fn e1() {
    let rows = adversary_panel_sweep(&SweepParams::paper_default());
    let mut s = Series::new([
        "inv_lambda",
        "baseline",
        "adaptive",
        "route_aware",
        "oracle",
    ]);
    for r in &rows {
        s.push_row([
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.baseline_mse, 2),
            fmt_f(r.adaptive_mse, 2),
            fmt_f(r.route_aware_mse, 2),
            fmt_f(r.oracle_mse, 2),
        ]);
    }
    emit(
        "e1_adversary_panel",
        "E1: adversary hierarchy, MSE under RCAD (flow S1)",
        &s,
    );
}

fn e2() {
    let rows = decomposition_experiment(&SweepParams::paper_default(), 8.0, 450.0);
    let mut s = Series::new([
        "shape",
        "buffers",
        "mse_s1",
        "latency_s1",
        "max_mean_occupancy",
        "preemptions",
    ]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.shape),
            if r.limited_buffers {
                "rcad_k10"
            } else {
                "unlimited"
            }
            .to_string(),
            fmt_f(r.mse, 2),
            fmt_f(r.mean_latency, 2),
            fmt_f(r.max_mean_occupancy, 3),
            r.preemptions.to_string(),
        ]);
    }
    emit(
        "e2_decomposition",
        "E2: delay-budget decomposition across the path (budget 450, 1/lambda = 8)",
        &s,
    );
}

fn e3() {
    let rows = mix_comparison_sweep(&SweepParams::paper_default());
    let mut s = Series::new([
        "mechanism",
        "inv_lambda",
        "oracle_mse",
        "latency",
        "reordering",
        "stranded",
    ]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.mechanism),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.oracle_mse, 2),
            fmt_f(r.mean_latency, 2),
            fmt_f(r.reordering, 3),
            r.stranded.to_string(),
        ]);
    }
    emit(
        "e3_mix_comparison",
        "E3: RCAD vs Chaum threshold mixes (privacy floor / latency / reordering)",
        &s,
    );
}

fn burst_params() -> SweepParams {
    // Intra-burst intervals where the rate-based estimate k/lambda is
    // meaningfully below the advertised 1/mu = 30 (interval < k*30/k = 3).
    SweepParams {
        inv_lambdas: vec![1.0, 1.5, 2.0, 2.5, 3.0],
        ..SweepParams::paper_default()
    }
}

fn e4() {
    let rows = burst_adversary_experiment(&burst_params(), 200, 2_000.0, 300.0);
    let mut s = Series::new([
        "burst_interval",
        "baseline",
        "adaptive_batch",
        "windowed_online",
        "oracle",
    ]);
    for r in &rows {
        s.push_row([
            fmt_f(r.burst_interval, 1),
            fmt_f(r.baseline_mse, 2),
            fmt_f(r.adaptive_mse, 2),
            fmt_f(r.windowed_mse, 2),
            fmt_f(r.oracle_mse, 2),
        ]);
    }
    emit(
        "e4_bursty_adversaries",
        "E4: on/off sources (200-packet bursts, 2000u silence) - offline vs online adversaries",
        &s,
    );
}

fn a1() {
    let rows = victim_ablation_sweep(&SweepParams::paper_default());
    let mut s = Series::new(["victim", "inv_lambda", "mse", "latency", "preemptions"]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.victim),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.mse, 2),
            fmt_f(r.mean_latency, 2),
            r.preemptions.to_string(),
        ]);
    }
    emit("a1_victim", "A1: victim-policy ablation (flow S1)", &s);
}

fn a2() {
    let rows = delay_ablation_sweep(&SweepParams::paper_default());
    let mut s = Series::new(["distribution", "inv_lambda", "mse", "latency"]);
    for r in &rows {
        s.push_row([
            format!("{:?}", r.distribution),
            fmt_f(r.inv_lambda, 0),
            fmt_f(r.mse, 2),
            fmt_f(r.mean_latency, 2),
        ]);
    }
    emit(
        "a2_delay_distribution",
        "A2: delay-distribution ablation, unlimited buffers (flow S1)",
        &s,
    );
}

fn a3() {
    let layout = Convergecast::paper_figure1();
    let inv_lambda = 4.0;
    let run = |label: &str, plan: DelayPlan| {
        let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
            .traffic(TrafficModel::periodic(inv_lambda))
            .packets_per_source(1000)
            .delay_plan(plan)
            .buffer_policy(BufferPolicy::paper_rcad())
            .seed(3)
            .build()
            .expect("valid simulation");
        let outcome = sim.run();
        let knowledge = sim.adversary_knowledge();
        let report = evaluate_adversary(&outcome, &BaselineAdversary, &knowledge);
        let counts = flows_per_node(sim.routing(), sim.sources());
        let max_rate = outcome
            .nodes
            .iter()
            .zip(&counts)
            .filter(|(_, &c)| c > 0)
            .map(|(n, &c)| n.preemptions as f64 / (1000.0 * f64::from(c)))
            .fold(0.0f64, f64::max);
        (
            label.to_string(),
            report.mse(FlowId(0)),
            outcome.flows[0].latency.mean(),
            outcome.total_preemptions(),
            max_rate,
        )
    };
    let uniform = run("uniform_mu", DelayPlan::shared_exponential(30.0));
    let controlled = run(
        "rate_controlled_alpha_0.05",
        rate_controlled_plan(
            layout.routing(),
            layout.sources(),
            1.0 / inv_lambda,
            10,
            0.05,
        ),
    );
    let mut s = Series::new([
        "plan",
        "mse_s1",
        "latency_s1",
        "preemptions",
        "max_preempt_rate",
    ]);
    for (label, mse, lat, pre, rate) in [uniform, controlled] {
        s.push_row([
            label,
            fmt_f(mse, 2),
            fmt_f(lat, 2),
            pre.to_string(),
            fmt_f(rate, 4),
        ]);
    }
    emit(
        "a3_rate_controlled",
        "A3: uniform vs rate-controlled delay assignment (1/lambda = 4)",
        &s,
    );
}

fn t1() {
    // A traced run of the paper's four-flow Figure-1 layout: end-to-end
    // latency CDFs per flow, resolved from packet lineages. Path lengths
    // differ per flow (15/22/9/11 hops), so the CDFs separate cleanly.
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::periodic(2.0))
        .packets_per_source(1000)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::paper_rcad())
        .seed(2007)
        .build()
        .expect("valid simulation");
    let mut recorder = FlightRecorder::new();
    let outcome = sim.run_probed(&mut recorder);
    let log = recorder.finish(outcome.end_time);

    let flows = sim.sources().len();
    let mut per_flow: Vec<Vec<f64>> = vec![Vec::new(); flows];
    for (flow, span) in log.end_to_end_samples() {
        per_flow[flow].push(span);
    }
    for samples in &mut per_flow {
        samples.sort_by(f64::total_cmp);
    }
    let max = per_flow
        .iter()
        .filter_map(|s| s.last().copied())
        .fold(0.0f64, f64::max);

    // Empirical CDFs on a common latency grid, one column per flow.
    let headers: Vec<String> = std::iter::once("latency".to_string())
        .chain((1..=flows).map(|i| format!("cdf_s{i}")))
        .collect();
    let mut s = Series::new(headers);
    let steps = 120;
    for step in 0..=steps {
        let latency = max * f64::from(step) / f64::from(steps);
        let mut row = vec![fmt_f(latency, 1)];
        for samples in &per_flow {
            let below = samples.partition_point(|&x| x <= latency);
            let cdf = below as f64 / samples.len().max(1) as f64;
            row.push(fmt_f(cdf, 4));
        }
        s.push_row(row);
    }
    emit(
        "t1_latency_cdf",
        "T1: end-to-end latency CDF per flow from a traced run (hops 15/22/9/11)",
        &s,
    );
}

fn p1() {
    // Streaming MI convergence on the Figure-1 layout: per-flow empirical
    // I(X;Z) re-estimated every 25 deliveries, plotted against the eq. 4
    // per-packet mean bound and the eq. 2 EPI floor. The floor combines
    // the empirical creation-time entropy with the analytic Erlang path
    // delay entropy; the streaming curves must settle between the two.
    let layout = Convergecast::paper_figure1();
    let sim = NetworkSimulation::builder(layout.routing().clone(), layout.sources().to_vec())
        .traffic(TrafficModel::poisson(0.5))
        .packets_per_source(1000)
        .delay_plan(DelayPlan::shared_exponential(30.0))
        .buffer_policy(BufferPolicy::Unlimited)
        .seed(2007)
        .build()
        .expect("valid simulation");
    let mut probe = privacy_probe_for(&sim, 25);
    let outcome = sim.run_probed(&mut probe);
    let knowledge = sim.adversary_knowledge();
    let flows = probe.num_flows();
    let epi: Vec<Option<f64>> = (0..flows)
        .map(|flow| {
            #[allow(clippy::cast_possible_truncation)]
            let flow_id = FlowId(flow as u32);
            let (xs, _) = outcome.creation_arrival_pairs(flow_id);
            let hops = knowledge.hops(flow_id);
            let path_mean = knowledge.path_delay_mean(flow_id);
            if hops == 0 || path_mean <= 0.0 {
                return None;
            }
            // Y = path delay = sum of `hops` exponentials with mean
            // path_mean/hops: Erlang(hops, hops/path_mean).
            let h_y = ErlangDist::new(hops, f64::from(hops) / path_mean).entropy_nats();
            let h_x = entropy_from_samples_nats(&xs, 24).ok()?;
            Some(epi_lower_bound_nats(h_x, h_y))
        })
        .collect();
    let series = probe.finish(outcome.end_time);

    let headers: Vec<String> = std::iter::once("deliveries".to_string())
        .chain((0..flows).flat_map(|k| {
            let k = k + 1;
            [format!("mi_s{k}"), format!("btq_s{k}"), format!("epi_s{k}")]
        }))
        .collect();
    let mut s = Series::new(headers);
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "nan".to_string(), |x| fmt_f(x, 4));
    for point in &series.points {
        let mut row = vec![point.deliveries.to_string()];
        for (flow, &epi_floor) in epi.iter().enumerate() {
            let summary = point.flows.iter().find(|f| f.flow == flow);
            row.push(fmt_opt(summary.map(|f| f.mi_nats)));
            row.push(fmt_opt(summary.and_then(|f| f.btq_mean_bound_nats)));
            row.push(fmt_opt(epi_floor));
        }
        s.push_row(row);
    }
    emit(
        "p1_privacy_convergence",
        "P1: streaming I(X;Z) convergence per flow vs eq. 4 bound and eq. 2 EPI floor",
        &s,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    let known = [
        "all", "fig2a", "fig2b", "fig3", "v1", "v2", "v3", "v4", "a1", "a2", "a3", "e1", "e2",
        "e3", "e4", "t1", "p1",
    ];
    if let Some(bad) = selected.iter().find(|s| !known.contains(s)) {
        eprintln!("unknown selector `{bad}`; valid: {}", known.join(", "));
        return ExitCode::FAILURE;
    }

    if want("fig2a") && want("fig2b") {
        fig2(None);
    } else if want("fig2a") {
        fig2(Some('a'));
    } else if want("fig2b") {
        fig2(Some('b'));
    }
    if want("fig3") {
        fig3();
    }
    if want("v1") {
        v1();
    }
    if want("v2") {
        v2();
    }
    if want("v3") {
        v3();
    }
    if want("v4") {
        v4();
    }
    if want("a1") {
        a1();
    }
    if want("a2") {
        a2();
    }
    if want("a3") {
        a3();
    }
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("t1") {
        t1();
    }
    if want("p1") {
        p1();
    }
    ExitCode::SUCCESS
}

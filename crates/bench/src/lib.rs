//! # tempriv-bench — figure regeneration and validation harness
//!
//! Shared machinery for the Criterion benches and the `figures` binary:
//!
//! * [`harness`] — the interleaved best-of-N timing loop and overhead
//!   ratios shared by every `perf_baseline` bench mode,
//! * [`table`] — aligned-table printing and CSV export of result series,
//! * [`validation`] — the analytic-validation experiments (V1–V4 in
//!   DESIGN.md): bits-through-queues bound vs empirical MI, M/M/∞
//!   occupancy vs Poisson(ρ), drop-tail loss vs the Erlang formula, and
//!   Burke's theorem on simulated departures.
//!
//! The paper figures themselves (Figure 2a/2b, Figure 3) are produced by
//! the sweep functions in [`tempriv_core::experiment`]; this crate only
//! formats and records them.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod harness;
pub mod table;
pub mod validation;

//! Simulation probes.
//!
//! The simulation driver calls [`SimProbe`] at event boundaries; probes
//! observe and accumulate but never act, so an instrumented run schedules
//! exactly the same events and consumes exactly the same RNG draws as an
//! uninstrumented one. [`NullProbe`] is the zero-overhead default;
//! [`RecordingProbe`] records per-node occupancy dwell statistics, a
//! decimated occupancy time series, preemption/drop/flush counters,
//! buffer high-water marks, delivery latency moments, and a bounded
//! [`Trace`] of recent probe events.

use serde::{Deserialize, Serialize};
use tempriv_sim::stats::{OnlineStats, StateDwell};
use tempriv_sim::time::SimTime;
use tempriv_sim::trace::Trace;

use crate::flight::PacketEvent;

/// Observer hooks called by the simulation driver at event boundaries.
///
/// Every method has a no-op default, so a probe implements only what it
/// needs. `node` and `flow` are dense indices assigned by the driver.
///
/// # Determinism contract
///
/// Implementations must not consume RNG draws, mutate simulation state,
/// or block; the driver guarantees hook order is a pure function of the
/// event sequence.
pub trait SimProbe {
    /// A node's buffer occupancy changed to `depth` at time `now`.
    fn on_occupancy(&mut self, node: usize, now: SimTime, depth: u64) {
        let _ = (node, now, depth);
    }

    /// RCAD preempted a buffered packet at `node`.
    fn on_preemption(&mut self, node: usize, now: SimTime) {
        let _ = (node, now);
    }

    /// A finite buffer dropped an arriving packet at `node`.
    fn on_drop(&mut self, node: usize, now: SimTime) {
        let _ = (node, now);
    }

    /// A threshold mix flushed `batch` packets from `node`.
    fn on_flush(&mut self, node: usize, now: SimTime, batch: u64) {
        let _ = (node, now, batch);
    }

    /// A packet arrived at a buffering node (before admission control).
    fn on_arrival(&mut self, node: usize, now: SimTime) {
        let _ = (node, now);
    }

    /// A packet from `flow` reached the sink with end-to-end `latency`.
    fn on_delivery(&mut self, flow: usize, now: SimTime, latency: f64) {
        let _ = (flow, now, latency);
    }

    /// Final buffer high-water mark for `node`, reported once at run end.
    fn on_high_water(&mut self, node: usize, high_water: u64) {
        let _ = (node, high_water);
    }

    /// A packet crossed a lifecycle boundary (created, enqueued,
    /// preempted, departed, dropped, or arrived at the sink). Fired for
    /// every packet on every hop, so implementations should be cheap; the
    /// [`crate::flight::FlightRecorder`] retains these in a bounded ring.
    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        let _ = (now, event);
    }

    /// Engine accounting reported once at run end: total events the
    /// engine delivered and the peak size of the future-event set.
    /// Deterministic — both are pure functions of the event sequence.
    fn on_engine_stats(&mut self, events: u64, peak_fes: u64) {
        let _ = (events, peak_fes);
    }

    /// Future-event-queue accounting reported once at run end: the final
    /// physical heap footprint (live entries plus uncollected
    /// cancellation tombstones) and the number of tombstone compaction
    /// passes. Deterministic — both are pure functions of the
    /// push/cancel history.
    fn on_queue_stats(&mut self, footprint: u64, compactions: u64) {
        let _ = (footprint, compactions);
    }

    /// The run ended at `end` (stop reason already resolved).
    fn on_run_end(&mut self, end: SimTime) {
        let _ = end;
    }
}

/// The do-nothing probe: every hook is the no-op default, so the
/// instrumentation cost of an unprobed run is a single predictable branch
/// per event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl SimProbe for NullProbe {}

/// A mutable reference to a probe is itself a probe, so long-lived
/// probes can be lent to a run (e.g. inside a pair) without moving
/// ownership.
impl<P: SimProbe + ?Sized> SimProbe for &mut P {
    fn on_occupancy(&mut self, node: usize, now: SimTime, depth: u64) {
        (**self).on_occupancy(node, now, depth);
    }

    fn on_preemption(&mut self, node: usize, now: SimTime) {
        (**self).on_preemption(node, now);
    }

    fn on_drop(&mut self, node: usize, now: SimTime) {
        (**self).on_drop(node, now);
    }

    fn on_flush(&mut self, node: usize, now: SimTime, batch: u64) {
        (**self).on_flush(node, now, batch);
    }

    fn on_arrival(&mut self, node: usize, now: SimTime) {
        (**self).on_arrival(node, now);
    }

    fn on_delivery(&mut self, flow: usize, now: SimTime, latency: f64) {
        (**self).on_delivery(flow, now, latency);
    }

    fn on_high_water(&mut self, node: usize, high_water: u64) {
        (**self).on_high_water(node, high_water);
    }

    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        (**self).on_packet(now, event);
    }

    fn on_engine_stats(&mut self, events: u64, peak_fes: u64) {
        (**self).on_engine_stats(events, peak_fes);
    }

    fn on_queue_stats(&mut self, footprint: u64, compactions: u64) {
        (**self).on_queue_stats(footprint, compactions);
    }

    fn on_run_end(&mut self, end: SimTime) {
        (**self).on_run_end(end);
    }
}

/// Fan-out: a pair of probes is itself a probe, with every hook forwarded
/// to both members in order. Lets a run collect aggregate metrics and a
/// packet-level flight recording in one pass, e.g.
/// `(RecordingProbe::new(n), FlightRecorder::new())`.
impl<A: SimProbe, B: SimProbe> SimProbe for (A, B) {
    fn on_occupancy(&mut self, node: usize, now: SimTime, depth: u64) {
        self.0.on_occupancy(node, now, depth);
        self.1.on_occupancy(node, now, depth);
    }

    fn on_preemption(&mut self, node: usize, now: SimTime) {
        self.0.on_preemption(node, now);
        self.1.on_preemption(node, now);
    }

    fn on_drop(&mut self, node: usize, now: SimTime) {
        self.0.on_drop(node, now);
        self.1.on_drop(node, now);
    }

    fn on_flush(&mut self, node: usize, now: SimTime, batch: u64) {
        self.0.on_flush(node, now, batch);
        self.1.on_flush(node, now, batch);
    }

    fn on_arrival(&mut self, node: usize, now: SimTime) {
        self.0.on_arrival(node, now);
        self.1.on_arrival(node, now);
    }

    fn on_delivery(&mut self, flow: usize, now: SimTime, latency: f64) {
        self.0.on_delivery(flow, now, latency);
        self.1.on_delivery(flow, now, latency);
    }

    fn on_high_water(&mut self, node: usize, high_water: u64) {
        self.0.on_high_water(node, high_water);
        self.1.on_high_water(node, high_water);
    }

    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        self.0.on_packet(now, event);
        self.1.on_packet(now, event);
    }

    fn on_engine_stats(&mut self, events: u64, peak_fes: u64) {
        self.0.on_engine_stats(events, peak_fes);
        self.1.on_engine_stats(events, peak_fes);
    }

    fn on_queue_stats(&mut self, footprint: u64, compactions: u64) {
        self.0.on_queue_stats(footprint, compactions);
        self.1.on_queue_stats(footprint, compactions);
    }

    fn on_run_end(&mut self, end: SimTime) {
        self.0.on_run_end(end);
        self.1.on_run_end(end);
    }
}

/// One event retained in the [`RecordingProbe`]'s bounded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// Occupancy at `node` changed to `depth`.
    Occupancy {
        /// Node index.
        node: usize,
        /// New buffer depth.
        depth: u64,
    },
    /// RCAD preemption at `node`.
    Preemption {
        /// Node index.
        node: usize,
    },
    /// Buffer drop at `node`.
    Drop {
        /// Node index.
        node: usize,
    },
    /// Mix flush of `batch` packets at `node`.
    Flush {
        /// Node index.
        node: usize,
        /// Packets flushed together.
        batch: u64,
    },
    /// Delivery of a packet from `flow`.
    Delivery {
        /// Flow index.
        flow: usize,
    },
}

/// A deterministic, bounded occupancy time series.
///
/// Keeps at most `cap` points. Every `stride`-th sample is kept; when the
/// buffer fills, every other retained point is discarded and the stride
/// doubles. The decimation depends only on the sample sequence, never on
/// wall-clock or randomness, so instrumented reruns produce identical
/// series.
#[derive(Debug, Clone)]
struct DecimatingSeries {
    cap: usize,
    stride: u64,
    seen: u64,
    points: Vec<(f64, u64)>,
}

impl DecimatingSeries {
    fn new(cap: usize) -> Self {
        DecimatingSeries {
            cap: cap.max(2),
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    fn push(&mut self, now: SimTime, value: u64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() >= self.cap {
                let kept: Vec<_> = self.points.iter().copied().step_by(2).collect();
                self.points = kept;
                self.stride *= 2;
            }
            self.points.push((now.as_units(), value));
        }
        self.seen += 1;
    }
}

/// Per-node accumulation state inside a [`RecordingProbe`].
#[derive(Debug, Clone)]
struct NodeState {
    dwell: StateDwell,
    series: DecimatingSeries,
    arrivals: u64,
    preemptions: u64,
    drops: u64,
    flushes: u64,
    flushed_packets: u64,
    high_water: u64,
    peak: u64,
}

impl NodeState {
    fn new(series_cap: usize) -> Self {
        NodeState {
            dwell: StateDwell::new(SimTime::from_ticks(0), 0),
            series: DecimatingSeries::new(series_cap),
            arrivals: 0,
            preemptions: 0,
            drops: 0,
            flushes: 0,
            flushed_packets: 0,
            high_water: 0,
            peak: 0,
        }
    }
}

/// A [`SimProbe`] that records everything the telemetry export needs.
///
/// Create one per run with [`RecordingProbe::new`], hand it to the
/// driver, then call [`RecordingProbe::finish`] to extract the
/// serializable [`SimTelemetry`]. Reuse across runs via
/// [`RecordingProbe::reset`], which also clears the bounded event trace.
#[derive(Debug)]
pub struct RecordingProbe {
    nodes: Vec<NodeState>,
    latency: OnlineStats,
    deliveries: u64,
    trace: Trace<ProbeEvent>,
    end: Option<SimTime>,
    engine_events: u64,
    peak_fes: u64,
    queue_footprint: u64,
    queue_compactions: u64,
}

/// Default capacity of the per-run bounded event trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Default cap on retained occupancy time-series points per node.
pub const DEFAULT_SERIES_CAPACITY: usize = 256;

impl RecordingProbe {
    /// A probe for a simulation with `n_nodes` nodes, using the default
    /// trace and series capacities.
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        Self::with_capacities(n_nodes, DEFAULT_TRACE_CAPACITY, DEFAULT_SERIES_CAPACITY)
    }

    /// A probe with explicit trace and per-node series capacities.
    ///
    /// # Panics
    ///
    /// Panics if `trace_cap == 0`.
    #[must_use]
    pub fn with_capacities(n_nodes: usize, trace_cap: usize, series_cap: usize) -> Self {
        RecordingProbe {
            nodes: (0..n_nodes).map(|_| NodeState::new(series_cap)).collect(),
            latency: OnlineStats::new(),
            deliveries: 0,
            trace: Trace::with_capacity(trace_cap),
            end: None,
            engine_events: 0,
            peak_fes: 0,
            queue_footprint: 0,
            queue_compactions: 0,
        }
    }

    /// Clears all accumulated state (including the event trace, via
    /// [`Trace::clear`]) so the probe can instrument another run.
    pub fn reset(&mut self) {
        let series_cap = self
            .nodes
            .first()
            .map_or(DEFAULT_SERIES_CAPACITY, |n| n.series.cap);
        for node in &mut self.nodes {
            *node = NodeState::new(series_cap);
        }
        self.latency = OnlineStats::new();
        self.deliveries = 0;
        self.trace.clear();
        self.end = None;
        self.engine_events = 0;
        self.peak_fes = 0;
        self.queue_footprint = 0;
        self.queue_compactions = 0;
    }

    /// The bounded trace of recent probe events.
    #[must_use]
    pub fn trace(&self) -> &Trace<ProbeEvent> {
        &self.trace
    }

    /// The end time reported through [`SimProbe::on_run_end`], if any.
    #[must_use]
    pub fn end_time(&self) -> Option<SimTime> {
        self.end
    }

    /// Extracts the accumulated state into a serializable summary.
    ///
    /// `end` is the simulation end time; occupancy dwell means and PMFs
    /// are integrated up to it. Use [`RecordingProbe::end_time`] for the
    /// value reported through [`SimProbe::on_run_end`].
    #[must_use]
    pub fn finish(&self, end: SimTime) -> SimTelemetry {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeTelemetry {
                node: i,
                mean_occupancy: n.dwell.mean(end),
                peak_occupancy: n.peak,
                high_water: n.high_water,
                occupancy_pmf: n.dwell.pmf(end),
                occupancy_series: n.series.points.clone(),
                arrivals: n.arrivals,
                preemptions: n.preemptions,
                drops: n.drops,
                flushes: n.flushes,
                flushed_packets: n.flushed_packets,
            })
            .collect();
        SimTelemetry {
            end_time: end.as_units(),
            deliveries: self.deliveries,
            mean_latency: self.latency.mean(),
            max_latency: self.latency.max().unwrap_or(0.0),
            nodes,
            trace_len: self.trace.len() as u64,
            trace_evicted: self.trace.dropped(),
            engine_events: self.engine_events,
            peak_fes: self.peak_fes,
            queue_footprint: self.queue_footprint,
            queue_compactions: self.queue_compactions,
        }
    }
}

impl SimProbe for RecordingProbe {
    fn on_occupancy(&mut self, node: usize, now: SimTime, depth: u64) {
        let n = &mut self.nodes[node];
        n.dwell.transition(now, depth);
        n.series.push(now, depth);
        n.peak = n.peak.max(depth);
        self.trace
            .record(now, ProbeEvent::Occupancy { node, depth });
    }

    fn on_preemption(&mut self, node: usize, now: SimTime) {
        self.nodes[node].preemptions += 1;
        self.trace.record(now, ProbeEvent::Preemption { node });
    }

    fn on_drop(&mut self, node: usize, now: SimTime) {
        self.nodes[node].drops += 1;
        self.trace.record(now, ProbeEvent::Drop { node });
    }

    fn on_flush(&mut self, node: usize, now: SimTime, batch: u64) {
        let n = &mut self.nodes[node];
        n.flushes += 1;
        n.flushed_packets += batch;
        self.trace.record(now, ProbeEvent::Flush { node, batch });
    }

    fn on_arrival(&mut self, node: usize, now: SimTime) {
        let _ = now;
        self.nodes[node].arrivals += 1;
    }

    fn on_delivery(&mut self, flow: usize, now: SimTime, latency: f64) {
        self.deliveries += 1;
        self.latency.record(latency);
        self.trace.record(now, ProbeEvent::Delivery { flow });
    }

    fn on_high_water(&mut self, node: usize, high_water: u64) {
        self.nodes[node].high_water = high_water;
    }

    fn on_engine_stats(&mut self, events: u64, peak_fes: u64) {
        self.engine_events = events;
        self.peak_fes = peak_fes;
    }

    fn on_queue_stats(&mut self, footprint: u64, compactions: u64) {
        self.queue_footprint = footprint;
        self.queue_compactions = compactions;
    }

    fn on_run_end(&mut self, end: SimTime) {
        self.end = Some(end);
    }
}

/// Serializable per-node telemetry extracted from a [`RecordingProbe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// Node index in the driver's dense node order.
    pub node: usize,
    /// Time-weighted mean buffer occupancy over the run.
    pub mean_occupancy: f64,
    /// Largest occupancy observed at an event boundary.
    pub peak_occupancy: u64,
    /// Buffer high-water mark reported by the buffer itself.
    pub high_water: u64,
    /// Time-weighted occupancy distribution: `(depth, fraction of time)`.
    pub occupancy_pmf: Vec<(u64, f64)>,
    /// Decimated occupancy time series: `(time, depth)` points.
    pub occupancy_series: Vec<(f64, u64)>,
    /// Packets that arrived at this node's buffer (before admission).
    pub arrivals: u64,
    /// RCAD preemptions performed here.
    pub preemptions: u64,
    /// Packets dropped by a full finite buffer here.
    pub drops: u64,
    /// Threshold-mix flush events here.
    pub flushes: u64,
    /// Total packets released by flush events here.
    pub flushed_packets: u64,
}

impl NodeTelemetry {
    /// Fraction of arrivals preempted (0 when nothing arrived).
    #[must_use]
    pub fn preemption_fraction(&self) -> f64 {
        fraction(self.preemptions, self.arrivals)
    }

    /// Fraction of arrivals dropped (0 when nothing arrived).
    #[must_use]
    pub fn drop_fraction(&self) -> f64 {
        fraction(self.drops, self.arrivals)
    }
}

fn fraction(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Serializable whole-run telemetry extracted from a [`RecordingProbe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTelemetry {
    /// Simulation end time in time units.
    pub end_time: f64,
    /// Packets delivered to the sink.
    pub deliveries: u64,
    /// Mean end-to-end delivery latency.
    pub mean_latency: f64,
    /// Maximum end-to-end delivery latency.
    pub max_latency: f64,
    /// Per-node telemetry, in the driver's dense node order.
    pub nodes: Vec<NodeTelemetry>,
    /// Probe-trace records retained at run end.
    pub trace_len: u64,
    /// Probe-trace records evicted by the bounded trace (the
    /// previously-unreadable [`Trace::dropped`] count).
    pub trace_evicted: u64,
    /// Total events the engine delivered (0 for blobs recorded before the
    /// counter existed).
    #[serde(default)]
    pub engine_events: u64,
    /// Peak size of the engine's future-event set (0 for older blobs).
    #[serde(default)]
    pub peak_fes: u64,
    /// Final physical footprint of the future-event heap, including
    /// uncollected cancellation tombstones (0 for older blobs).
    #[serde(default)]
    pub queue_footprint: u64,
    /// Tombstone compaction passes the future-event queue performed
    /// (0 for older blobs).
    #[serde(default)]
    pub queue_compactions: u64,
}

impl SimTelemetry {
    /// Sum of preemptions across nodes.
    #[must_use]
    pub fn total_preemptions(&self) -> u64 {
        self.nodes.iter().map(|n| n.preemptions).sum()
    }

    /// Sum of drops across nodes.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.drops).sum()
    }

    /// Sum of flush events across nodes.
    #[must_use]
    pub fn total_flushes(&self) -> u64 {
        self.nodes.iter().map(|n| n.flushes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn null_probe_is_inert() {
        let mut p = NullProbe;
        p.on_occupancy(0, t(1.0), 3);
        p.on_drop(0, t(2.0));
        p.on_run_end(t(3.0));
    }

    #[test]
    fn recording_probe_accumulates_dwell_mean() {
        let mut p = RecordingProbe::new(1);
        // Depth 0 on [0,10), 2 on [10,20), 1 on [20,40): mean = (0+20+20)/40.
        p.on_occupancy(0, t(10.0), 2);
        p.on_occupancy(0, t(20.0), 1);
        let telem = p.finish(t(40.0));
        assert!((telem.nodes[0].mean_occupancy - 1.0).abs() < 1e-9);
        assert_eq!(telem.nodes[0].peak_occupancy, 2);
        let pmf = &telem.nodes[0].occupancy_pmf;
        let p1 = pmf.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert!((p1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counters_and_fractions() {
        let mut p = RecordingProbe::new(2);
        for _ in 0..10 {
            p.on_arrival(1, t(1.0));
        }
        p.on_preemption(1, t(2.0));
        p.on_preemption(1, t(3.0));
        p.on_drop(1, t(4.0));
        p.on_flush(1, t(5.0), 4);
        p.on_delivery(0, t(6.0), 12.5);
        p.on_high_water(1, 7);
        let telem = p.finish(t(10.0));
        let n = &telem.nodes[1];
        assert_eq!(n.arrivals, 10);
        assert_eq!(n.preemptions, 2);
        assert_eq!(n.drops, 1);
        assert_eq!(n.flushes, 1);
        assert_eq!(n.flushed_packets, 4);
        assert_eq!(n.high_water, 7);
        assert!((n.preemption_fraction() - 0.2).abs() < 1e-12);
        assert!((n.drop_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(telem.deliveries, 1);
        assert!((telem.mean_latency - 12.5).abs() < 1e-12);
        assert_eq!(telem.total_preemptions(), 2);
    }

    #[test]
    fn series_decimation_is_bounded_and_deterministic() {
        let run = || {
            let mut s = DecimatingSeries::new(8);
            for i in 0..1000u64 {
                s.push(t(i as f64), i);
            }
            s.points.clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.len() <= 9, "series stays bounded, got {}", a.len());
        // Points remain in time order.
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn reset_clears_everything_including_trace() {
        let mut p = RecordingProbe::with_capacities(1, 2, 16);
        for i in 0..5 {
            p.on_occupancy(0, t(i as f64 + 1.0), i);
        }
        assert!(p.trace().dropped() > 0);
        p.reset();
        assert_eq!(p.trace().len(), 0);
        assert_eq!(p.trace().dropped(), 0, "Trace::clear resets eviction count");
        let telem = p.finish(t(1.0));
        assert_eq!(telem.nodes[0].peak_occupancy, 0);
        assert_eq!(telem.trace_evicted, 0);
    }

    #[test]
    fn telemetry_round_trips_through_json() {
        let mut p = RecordingProbe::new(1);
        p.on_arrival(0, t(0.5));
        p.on_occupancy(0, t(1.0), 1);
        p.on_delivery(0, t(2.0), 1.5);
        let telem = p.finish(t(4.0));
        let json = serde_json::to_string(&telem).unwrap();
        let back: SimTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, telem);
    }
}

//! Memory & allocation observatory: a counting [`GlobalAlloc`] wrapper
//! with phase-attributed scopes.
//!
//! The paper's whole trade-off lives on buffer-constrained sensor nodes
//! — buffer slots are the scarce resource that buys temporal privacy —
//! yet a reproduction that cannot see its own allocator has no business
//! claiming a "zero-alloc data plane" (ROADMAP item 2). This module
//! makes allocation observable without perturbing the simulation:
//!
//! * [`CountingAlloc`] wraps [`System`] and, when the global gate is
//!   enabled, counts allocs/deallocs/reallocs, cumulative allocated
//!   bytes, live bytes, and peak live bytes in relaxed atomics. With the
//!   gate off (the default) every hook is one relaxed load plus the
//!   delegated call — effectively free.
//! * Each counting thread additionally attributes its allocations to an
//!   *attribution slot*: the seven kernel [`Phase`]s plus the
//!   serve/job/scenario layers and an `unscoped` residual. The slot is a
//!   plain thread-local [`Cell`], switched by [`MemScopeTimer`] (driver
//!   phases) and [`AllocScope`] (pipeline layers).
//! * [`MemBreakdown`] is the serializable per-slot ledger, with a text
//!   table and Chrome `"ph":"C"` counter events that merge into the
//!   profiler's phase timeline.
//!
//! The allocator is a *library*: installing it is each binary's choice
//! (`#[global_allocator] static A: CountingAlloc = CountingAlloc;`).
//! When no binary installs it, every counter stays zero and all APIs
//! degrade gracefully. Counting is pure observation — it never touches
//! simulation state, RNG, or scheduling — so outcomes and digests are
//! byte-identical with the gate on or off.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};
use tempriv_sim::profile::{Phase, PhaseTimer, PHASE_COUNT};

use crate::profiler::PhaseBreakdown;
use crate::span::{json_escape, PHASE_PID};

/// Number of attribution slots: the seven kernel phases plus
/// serve/job/scenario layers and the `unscoped` residual.
pub const SLOT_COUNT: usize = PHASE_COUNT + 4;

const SLOT_SERVE: usize = PHASE_COUNT;
const SLOT_JOB: usize = PHASE_COUNT + 1;
const SLOT_SCENARIO: usize = PHASE_COUNT + 2;
const SLOT_UNSCOPED: usize = PHASE_COUNT + 3;

/// Stable display name of an attribution slot (phase names for
/// `0..PHASE_COUNT`, then `serve`/`job`/`scenario`/`unscoped`).
#[must_use]
pub fn slot_name(slot: usize) -> &'static str {
    if slot < PHASE_COUNT {
        Phase::ALL[slot].name()
    } else {
        match slot {
            SLOT_SERVE => "serve",
            SLOT_JOB => "job",
            SLOT_SCENARIO => "scenario",
            _ => "unscoped",
        }
    }
}

/// A pipeline layer an [`AllocScope`] attributes allocations to,
/// mirroring the span tracer's serve → job → scenario hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocLayer {
    /// The HTTP serve layer (request handling, admission, cache).
    Serve,
    /// One runtime job (a scenario batch on a worker thread).
    Job,
    /// One scenario: config build, simulation run, telemetry flush.
    Scenario,
}

impl AllocLayer {
    const fn slot(self) -> usize {
        match self {
            AllocLayer::Serve => SLOT_SERVE,
            AllocLayer::Job => SLOT_JOB,
            AllocLayer::Scenario => SLOT_SCENARIO,
        }
    }
}

// Global counters. Relaxed is enough: these are statistics, not
// synchronization, and every reader tolerates tearing between fields.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// Signed: enabling mid-program means frees of pre-gate allocations can
// drive the balance below zero; snapshots clamp at zero.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

struct MemTls {
    slot: Cell<usize>,
    allocs: [Cell<u64>; SLOT_COUNT],
    bytes: [Cell<u64>; SLOT_COUNT],
}

impl MemTls {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Cell<u64> = Cell::new(0);
        MemTls {
            slot: Cell::new(SLOT_UNSCOPED),
            allocs: [ZERO; SLOT_COUNT],
            bytes: [ZERO; SLOT_COUNT],
        }
    }
}

thread_local! {
    // Const-initialized so first access never allocates (the allocator
    // hook itself touches this), and `try_with` below tolerates access
    // during thread teardown after the TLS destructor ran.
    static MEM_TLS: MemTls = const { MemTls::new() };
}

#[inline]
fn record_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
    let _ = MEM_TLS.try_with(|t| {
        let slot = t.slot.get();
        t.allocs[slot].set(t.allocs[slot].get() + 1);
        t.bytes[slot].set(t.bytes[slot].get() + size as u64);
    });
}

#[inline]
fn record_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

/// A counting allocator delegating to [`System`].
///
/// Install it per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: tempriv_telemetry::CountingAlloc =
///     tempriv_telemetry::CountingAlloc;
/// ```
///
/// Counting is off until [`set_enabled`]`(true)`; until then each hook
/// costs one relaxed load on top of the system allocator call.
pub struct CountingAlloc;

// SAFETY: every method delegates the actual (de)allocation to `System`
// unchanged; the bookkeeping never dereferences the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Ordering::Relaxed) {
            record_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            // Account a realloc as free(old) + alloc(new) so live bytes
            // stay balanced and growth lands in the current slot.
            record_dealloc(layout.size());
            record_alloc(new_size);
            // record_alloc counted it as a fresh allocation; undo the
            // event count so allocs reflects distinct alloc calls.
            ALLOCS.fetch_sub(1, Ordering::Relaxed);
            DEALLOCS.fetch_sub(1, Ordering::Relaxed);
        }
        new_ptr
    }
}

/// Turns allocation counting on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Probes whether a [`CountingAlloc`] is installed as the global
/// allocator: enables the gate, performs a heap allocation, and checks
/// that the counter moved. Restores the previous gate state.
#[must_use]
pub fn installed() -> bool {
    let was = enabled();
    set_enabled(true);
    let before = ALLOCS.load(Ordering::Relaxed);
    let probe = vec![0u8; 64];
    std::hint::black_box(&probe);
    let moved = ALLOCS.load(Ordering::Relaxed) > before;
    drop(probe);
    set_enabled(was);
    moved
}

/// A point-in-time copy of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSnapshot {
    /// Allocation calls observed while counting was enabled.
    pub allocs: u64,
    /// Deallocation calls observed while counting was enabled.
    pub deallocs: u64,
    /// Reallocation calls observed while counting was enabled.
    pub reallocs: u64,
    /// Cumulative bytes requested by allocations (and realloc growth).
    pub alloc_bytes: u64,
    /// Currently live bytes (allocated minus freed, clamped at zero).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since counting began.
    pub peak_live_bytes: u64,
}

/// Rebases the peak-live high-water mark to the current live level, so
/// per-phase peaks can be measured without the largest earlier phase
/// masking everything after it. Racy against concurrent allocation in
/// the same way the counters themselves are: fine for benchmarks, which
/// measure on one thread.
pub fn reset_peak() {
    PEAK_LIVE.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Snapshots the process-wide counters.
#[must_use]
pub fn snapshot() -> MemSnapshot {
    MemSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_live_bytes: PEAK_LIVE.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// This thread's allocation totals (sum over all attribution slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadMemSnapshot {
    /// Allocation calls made by this thread while counting was enabled.
    pub allocs: u64,
    /// Bytes requested by this thread while counting was enabled.
    pub bytes: u64,
}

impl ThreadMemSnapshot {
    /// Counters accumulated since `earlier` (saturating).
    #[must_use]
    pub fn since(self, earlier: ThreadMemSnapshot) -> ThreadMemSnapshot {
        ThreadMemSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Snapshots the calling thread's allocation totals.
#[must_use]
pub fn thread_snapshot() -> ThreadMemSnapshot {
    MEM_TLS
        .try_with(|t| ThreadMemSnapshot {
            allocs: t.allocs.iter().map(Cell::get).sum(),
            bytes: t.bytes.iter().map(Cell::get).sum(),
        })
        .unwrap_or_default()
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`. `None` where procfs is unavailable
/// (non-Linux) or the line is missing.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// RAII guard attributing this thread's allocations to a pipeline
/// [`AllocLayer`] until dropped; restores the previous slot on drop.
#[derive(Debug)]
pub struct AllocScope {
    prev: usize,
}

impl AllocScope {
    /// Enters `layer`: subsequent allocations on this thread land in
    /// its slot. Construction itself does not allocate.
    #[must_use]
    pub fn enter(layer: AllocLayer) -> AllocScope {
        let prev = MEM_TLS
            .try_with(|t| {
                let prev = t.slot.get();
                t.slot.set(layer.slot());
                prev
            })
            .unwrap_or(SLOT_UNSCOPED);
        AllocScope { prev }
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        let _ = MEM_TLS.try_with(|t| t.slot.set(self.prev));
    }
}

/// Per-slot allocation counters for one [`MemBreakdown`] row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotMem {
    /// Slot display name (a phase name, or serve/job/scenario/unscoped).
    pub slot: String,
    /// Allocation calls attributed to this slot.
    pub allocs: u64,
    /// Bytes attributed to this slot.
    pub bytes: u64,
}

/// A serializable ledger of allocations attributed per slot, the memory
/// twin of [`PhaseBreakdown`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBreakdown {
    /// Per-slot rows, in slot-index order (all [`SLOT_COUNT`] slots).
    pub slots: Vec<SlotMem>,
    /// Total allocation calls across slots.
    pub total_allocs: u64,
    /// Total bytes across slots.
    pub total_bytes: u64,
}

impl MemBreakdown {
    /// An all-zero breakdown with every slot present.
    #[must_use]
    pub fn empty() -> MemBreakdown {
        MemBreakdown {
            slots: (0..SLOT_COUNT)
                .map(|i| SlotMem {
                    slot: slot_name(i).to_string(),
                    allocs: 0,
                    bytes: 0,
                })
                .collect(),
            total_allocs: 0,
            total_bytes: 0,
        }
    }

    /// Whether any slot recorded an allocation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_allocs == 0
    }

    /// Bytes attributed to the slot named `slot`, 0 if absent.
    #[must_use]
    pub fn bytes_for(&self, slot: &str) -> u64 {
        self.slots
            .iter()
            .find(|s| s.slot == slot)
            .map_or(0, |s| s.bytes)
    }

    /// Allocation calls attributed to the slot named `slot`, 0 if absent.
    #[must_use]
    pub fn allocs_for(&self, slot: &str) -> u64 {
        self.slots
            .iter()
            .find(|s| s.slot == slot)
            .map_or(0, |s| s.allocs)
    }

    /// Folds `other` into `self`, matching rows by slot name and
    /// appending unknown slots.
    pub fn merge(&mut self, other: &MemBreakdown) {
        for row in &other.slots {
            if let Some(mine) = self.slots.iter_mut().find(|s| s.slot == row.slot) {
                mine.allocs += row.allocs;
                mine.bytes += row.bytes;
            } else {
                self.slots.push(row.clone());
            }
        }
        self.total_allocs += other.total_allocs;
        self.total_bytes += other.total_bytes;
    }

    /// Renders the ledger as an aligned text table (zero rows skipped).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>14} {:>7}",
            "slot", "allocs", "bytes", "share"
        );
        for row in &self.slots {
            if row.allocs == 0 && row.bytes == 0 {
                continue;
            }
            let share = if self.total_bytes == 0 {
                0.0
            } else {
                100.0 * row.bytes as f64 / self.total_bytes as f64
            };
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>14} {:>6.1}%",
                row.slot, row.allocs, row.bytes, share
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>14} {:>6.1}%",
            "total", self.total_allocs, self.total_bytes, 100.0
        );
        out
    }

    /// Renders the ledger as Chrome `"ph":"C"` counter samples aligned
    /// with [`PhaseBreakdown::chrome_phase_events`]: one `alloc_bytes`
    /// sample per non-empty phase band, at the band's start cursor, on
    /// the engine-phases process ([`PHASE_PID`]).
    #[must_use]
    pub fn chrome_counter_events(
        &self,
        start_us: u64,
        tid: u64,
        timing: &PhaseBreakdown,
    ) -> Vec<String> {
        let mut parts = Vec::new();
        let mut cursor = start_us as f64;
        for stat in &timing.phases {
            let dur = stat.secs * 1e6;
            if dur <= 0.0 {
                continue;
            }
            let bytes = self.bytes_for(&stat.phase);
            parts.push(format!(
                "{{\"name\":\"alloc_bytes\",\"cat\":\"mem\",\"ph\":\"C\",\"ts\":{:.3},\
                 \"pid\":{PHASE_PID},\"tid\":{tid},\"args\":{{\"{}\":{}}}}}",
                cursor,
                json_escape(&stat.phase),
                bytes
            ));
            cursor += dur;
        }
        parts
    }
}

/// A [`PhaseTimer`] that redirects this thread's allocation attribution
/// to the active kernel phase, producing a per-phase [`MemBreakdown`].
///
/// Like the wall-clock [`crate::PhaseProfiler`] it is a pure observer:
/// switching slots writes one thread-local cell and cannot perturb the
/// simulation. Construction snapshots the thread's per-slot counters so
/// [`finish`](MemScopeTimer::finish) reports only this run's deltas.
#[derive(Debug)]
pub struct MemScopeTimer {
    base_allocs: [u64; SLOT_COUNT],
    base_bytes: [u64; SLOT_COUNT],
    outer_slot: usize,
    current: Phase,
}

impl MemScopeTimer {
    /// Starts attribution at [`Phase::EngineLoop`], baselining the
    /// thread's counters.
    #[must_use]
    pub fn new() -> MemScopeTimer {
        let mut base_allocs = [0u64; SLOT_COUNT];
        let mut base_bytes = [0u64; SLOT_COUNT];
        let outer_slot = MEM_TLS
            .try_with(|t| {
                for i in 0..SLOT_COUNT {
                    base_allocs[i] = t.allocs[i].get();
                    base_bytes[i] = t.bytes[i].get();
                }
                let prev = t.slot.get();
                t.slot.set(Phase::EngineLoop.index());
                prev
            })
            .unwrap_or(SLOT_UNSCOPED);
        MemScopeTimer {
            base_allocs,
            base_bytes,
            outer_slot,
            current: Phase::EngineLoop,
        }
    }

    /// Stops attribution (restoring the outer slot) and returns the
    /// per-slot allocation deltas since construction.
    #[must_use]
    pub fn finish(self) -> MemBreakdown {
        // Read the deltas into stack arrays and restore the outer slot
        // *before* allocating the breakdown, so the breakdown's own
        // allocations are not counted against this run.
        let mut d_allocs = [0u64; SLOT_COUNT];
        let mut d_bytes = [0u64; SLOT_COUNT];
        let _ = MEM_TLS.try_with(|t| {
            for i in 0..SLOT_COUNT {
                d_allocs[i] = t.allocs[i].get().saturating_sub(self.base_allocs[i]);
                d_bytes[i] = t.bytes[i].get().saturating_sub(self.base_bytes[i]);
            }
            t.slot.set(self.outer_slot);
        });
        let mut breakdown = MemBreakdown::empty();
        for (i, row) in breakdown.slots.iter_mut().enumerate() {
            row.allocs = d_allocs[i];
            row.bytes = d_bytes[i];
        }
        breakdown.total_allocs = d_allocs.iter().sum();
        breakdown.total_bytes = d_bytes.iter().sum();
        breakdown
    }
}

impl Default for MemScopeTimer {
    fn default() -> Self {
        MemScopeTimer::new()
    }
}

impl PhaseTimer for MemScopeTimer {
    #[inline]
    fn switch(&mut self, phase: Phase) -> Phase {
        let prev = self.current;
        self.current = phase;
        let _ = MEM_TLS.try_with(|t| t.slot.set(phase.index()));
        prev
    }
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    // The gate and the global counters are process-wide; tests that
    // need exact numbers read the *thread-local* slot counters, which
    // other test threads cannot touch.

    fn with_counting<T>(f: impl FnOnce() -> T) -> T {
        let was = enabled();
        set_enabled(true);
        let out = f();
        set_enabled(was);
        out
    }

    #[test]
    fn counting_allocator_is_installed_in_this_binary() {
        assert!(installed());
    }

    #[test]
    fn thread_slots_attribute_to_the_active_scope() {
        with_counting(|| {
            let before = thread_snapshot();
            let scenario_before = MEM_TLS.with(|t| t.bytes[SLOT_SCENARIO].get());
            let held;
            {
                let _scope = AllocScope::enter(AllocLayer::Scenario);
                held = vec![0u8; 4096];
            }
            std::hint::black_box(&held);
            let after = thread_snapshot();
            let scenario_after = MEM_TLS.with(|t| t.bytes[SLOT_SCENARIO].get());
            assert!(after.allocs > before.allocs);
            assert!(
                scenario_after >= scenario_before + 4096,
                "scenario slot grew by {} (< 4096)",
                scenario_after - scenario_before
            );
        });
    }

    #[test]
    fn alloc_scope_restores_the_previous_slot() {
        with_counting(|| {
            let outer = MEM_TLS.with(|t| t.slot.get());
            {
                let _a = AllocScope::enter(AllocLayer::Job);
                assert_eq!(MEM_TLS.with(|t| t.slot.get()), SLOT_JOB);
                {
                    let _b = AllocScope::enter(AllocLayer::Scenario);
                    assert_eq!(MEM_TLS.with(|t| t.slot.get()), SLOT_SCENARIO);
                }
                assert_eq!(MEM_TLS.with(|t| t.slot.get()), SLOT_JOB);
            }
            assert_eq!(MEM_TLS.with(|t| t.slot.get()), outer);
        });
    }

    #[test]
    fn scope_timer_attributes_per_phase_and_reports_deltas_only() {
        with_counting(|| {
            let mut timer = MemScopeTimer::new();
            let prev = timer.switch(Phase::VictimSelect);
            assert_eq!(prev, Phase::EngineLoop);
            let v = vec![0u64; 512]; // 4096 bytes in victim_select
            std::hint::black_box(&v);
            assert_eq!(timer.switch(Phase::Create), Phase::VictimSelect);
            let c = vec![0u8; 64];
            std::hint::black_box(&c);
            let breakdown = timer.finish();
            assert!(breakdown.bytes_for("victim_select") >= 4096);
            assert!(breakdown.allocs_for("create") >= 1);
            assert_eq!(
                breakdown.total_allocs,
                breakdown.slots.iter().map(|s| s.allocs).sum::<u64>()
            );
            // A fresh timer immediately finished sees (almost) nothing:
            // only its own bookkeeping, which allocates nothing.
            let empty = MemScopeTimer::new().finish();
            assert_eq!(empty.total_allocs, 0, "{:?}", empty);
        });
    }

    #[test]
    fn disabled_gate_counts_nothing() {
        set_enabled(false);
        let before = thread_snapshot();
        let v = vec![0u8; 8192];
        std::hint::black_box(&v);
        let after = thread_snapshot();
        assert_eq!(before, after);
    }

    #[test]
    fn global_snapshot_moves_and_peak_dominates_live() {
        with_counting(|| {
            let before = snapshot();
            let v = vec![0u8; 1 << 16];
            std::hint::black_box(&v);
            let during = snapshot();
            assert!(during.allocs > before.allocs);
            assert!(during.alloc_bytes >= before.alloc_bytes + (1 << 16));
            assert!(during.peak_live_bytes >= during.live_bytes.min(1 << 16));
            drop(v);
            let after = snapshot();
            assert!(after.deallocs > before.deallocs);
        });
    }

    #[test]
    fn realloc_keeps_event_and_byte_accounting_balanced() {
        with_counting(|| {
            let base = thread_snapshot();
            let mut v: Vec<u8> = vec![0; 64];
            for _ in 0..6 {
                let extra = v.len();
                v.extend(std::iter::repeat_n(1u8, extra));
            }
            std::hint::black_box(&v);
            let grown = thread_snapshot().since(base);
            assert!(grown.bytes >= v.capacity() as u64);
            assert!(grown.allocs >= 1);
        });
    }

    #[test]
    fn breakdown_merge_table_and_counters_round_trip() {
        let mut a = MemBreakdown::empty();
        a.slots[Phase::Arrive.index()].allocs = 3;
        a.slots[Phase::Arrive.index()].bytes = 300;
        a.total_allocs = 3;
        a.total_bytes = 300;
        let mut b = MemBreakdown::empty();
        b.slots[SLOT_SCENARIO].allocs = 2;
        b.slots[SLOT_SCENARIO].bytes = 200;
        b.total_allocs = 2;
        b.total_bytes = 200;
        a.merge(&b);
        assert_eq!(a.total_allocs, 5);
        assert_eq!(a.bytes_for("scenario"), 200);
        let table = a.table();
        assert!(table.contains("arrive"), "{table}");
        assert!(table.contains("scenario"), "{table}");
        assert!(table.contains("total"), "{table}");

        let json = serde_json::to_string(&a).unwrap();
        let back: MemBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);

        let timing = PhaseBreakdown {
            batch: 1,
            total_secs: 2e-6,
            phases: vec![
                crate::PhaseStat {
                    phase: "arrive".to_string(),
                    count: 1,
                    secs: 1e-6,
                },
                crate::PhaseStat {
                    phase: "create".to_string(),
                    count: 1,
                    secs: 1e-6,
                },
            ],
        };
        let counters = a.chrome_counter_events(0, 7, &timing);
        assert_eq!(counters.len(), 2, "{counters:?}");
        assert!(counters[0].contains("\"ph\":\"C\""));
        assert!(counters[0].contains("\"arrive\":300"));
        assert!(counters[1].contains("\"create\":0"));
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = rss.expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}

//! Observability for the temporal-privacy stack.
//!
//! The paper's queueing analysis (§4) predicts exactly what a healthy run
//! looks like: M/M/∞ node occupancy is Poisson(ρ = λ/μ), finite buffers
//! drop at the Erlang loss rate `E(ρ, k)`, and RCAD converts those drops
//! into preemptions. This crate makes those quantities observable:
//!
//! * [`registry`] — a dependency-free metrics registry (counters, gauges,
//!   fixed-bin histograms) with cheap index handles and snapshot export to
//!   canonical JSON and the Prometheus text exposition format;
//! * [`probe`] — the [`SimProbe`] trait the simulation driver calls at
//!   event boundaries, a zero-overhead [`NullProbe`] default, and a
//!   [`RecordingProbe`] that accumulates per-node occupancy dwell
//!   statistics, decimated occupancy time series, preemption/drop/flush
//!   counts, buffer high-water marks, and a bounded event trace;
//! * [`flight`] — a [`FlightRecorder`] ring buffer of per-packet
//!   lifecycle [`PacketEvent`]s with lineage reconstruction, latency
//!   spectra, and export to JSONL and Chrome `trace_event` JSON;
//! * [`privacy`] — the streaming privacy observatory: a [`PrivacyProbe`]
//!   estimating per-flow `I(X; Z)` and adversary MSE online, with
//!   journaled convergence snapshots and per-flow privacy gauges;
//! * [`profiler`] — the engine self-profiler: a [`PhaseProfiler`]
//!   attributing wall-time to kernel [`tempriv_sim::profile::Phase`]s
//!   with coarse batched timers (~1 clock read per 64 phase switches);
//! * [`theory`] — [`TheoryCheck`] comparisons of measured telemetry
//!   against the `crates/queueing` predictions, with configurable
//!   tolerances, collected into a [`TheoryReport`];
//! * [`span`] — wall-clock spans for timing pipeline stages, plus the
//!   cross-layer span tracer ([`TraceCtx`], [`SpanRecord`], [`SpanRing`])
//!   whose Chrome-trace export merges with the flight recorder's;
//! * [`memprof`] — the memory observatory: a counting
//!   [`CountingAlloc`] global-allocator wrapper with thread-local
//!   [`AllocScope`] attribution to kernel phases and pipeline layers,
//!   serializable [`MemBreakdown`] ledgers, and peak-RSS gauges;
//! * [`audit`] — the determinism observatory: a [`DigestProbe`] folding
//!   the packet event stream into windowed checkpoint digests and a
//!   Merkle-style run root, [`audit::diff`] naming the first divergent
//!   window between two runs, and the canonical [`audit::digest`]
//!   content-identity primitives shared by the runtime cache, serve
//!   keys, and outcome fingerprints.
//!
//! # Determinism contract
//!
//! Probes observe; they never act. A probe must not consume RNG draws,
//! schedule or cancel events, or otherwise perturb the simulation.
//! [`RecordingProbe`] honors this by construction (it only accumulates),
//! and the driver-side integration is verified by byte-identical-output
//! tests with probes on vs. off.

#![warn(missing_docs)]

pub mod audit;
pub mod flight;
pub mod memprof;
pub mod privacy;
pub mod probe;
pub mod profiler;
pub mod registry;
pub mod span;
pub mod theory;

pub use audit::{
    diff, first_divergent_event, fold_root, CapturedEvent, DiffReport, DigestProbe, Divergence,
    EventDivergence, RunDigest, WindowCapture, WindowDigest, DEFAULT_DIGEST_WINDOW,
};
pub use memprof::{
    AllocLayer, AllocScope, CountingAlloc, MemBreakdown, MemScopeTimer, MemSnapshot, SlotMem,
    ThreadMemSnapshot,
};

pub use flight::{
    FlightEvent, FlightLog, FlightRecorder, FlowAoi, HopResidence, LatencySpectra, LineageOutcome,
    PacketEvent, PacketEventKind, PacketLineage, DEFAULT_FLIGHT_CAPACITY,
};
pub use privacy::{
    BtqParams, FlowPrivacyConfig, FlowPrivacySummary, PrivacyPoint, PrivacyProbe, PrivacySeries,
    DEFAULT_PRIVACY_SERIES_CAPACITY,
};
pub use probe::{NodeTelemetry, NullProbe, ProbeEvent, RecordingProbe, SimProbe, SimTelemetry};
pub use profiler::{PhaseBreakdown, PhaseProfiler, PhaseStat, DEFAULT_PHASE_BATCH};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramSample, MetricsRegistry, TelemetrySnapshot,
};
pub use span::{
    chrome_span_events, json_escape, wrap_chrome_events, SpanRecord, SpanRing, SpanSet, TraceCtx,
};
pub use theory::{TheoryCheck, TheoryReport, TheoryTolerance};

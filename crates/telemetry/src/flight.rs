//! Per-packet flight recording: lifecycle events, lineage reconstruction,
//! and export to JSONL and the Chrome `trace_event` format.
//!
//! The simulation driver emits a [`PacketEvent`] at every packet
//! lifecycle boundary through [`SimProbe::on_packet`]. The
//! [`FlightRecorder`] retains those events in a bounded ring buffer
//! (overwrite-oldest, like [`Trace`], with the eviction count surfaced as
//! [`FlightLog::evicted`]); [`FlightRecorder::finish`] freezes the ring
//! into a serializable [`FlightLog`], from which per-packet
//! [`PacketLineage`]s — creation→arrival span, per-hop residence times,
//! preemption counts — are reconstructed. Lineages feed the per-hop and
//! end-to-end latency spectra ([`FlightLog::latency_spectra`]) and the
//! Exp(μ) residence [`crate::TheoryCheck`].
//!
//! Like every probe, the recorder observes and never acts: attaching one
//! changes no event ordering and consumes no RNG draws.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use tempriv_sim::time::SimTime;
use tempriv_sim::trace::Trace;

use crate::probe::SimProbe;
use crate::registry::HistogramSample;
use crate::span::{json_escape, wrap_chrome_events};

/// One packet lifecycle boundary, emitted by the simulation driver.
///
/// Identifiers are the driver's dense raw indices (`packet` is the
/// sequential packet id, `flow` and `node` dense indices), keeping this
/// crate independent of the network-layer id types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEvent {
    /// A source created the packet.
    Created {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Source node index.
        node: usize,
    },
    /// A delaying node (or threshold mix) buffered the packet.
    Enqueued {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Buffering node index.
        node: usize,
    },
    /// RCAD evicted the packet from a full buffer; it is transmitted
    /// immediately (a `Departed` event follows at the same instant).
    Preempted {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Preempting node index.
        node: usize,
        /// The victim-selection rule in force, e.g. `shortest_remaining`.
        victim_policy: &'static str,
    },
    /// The node transmitted the packet toward the next hop.
    Departed {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Transmitting node index.
        node: usize,
    },
    /// A full drop-tail buffer discarded the packet (terminal).
    Dropped {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Dropping node index.
        node: usize,
    },
    /// The packet reached the sink (terminal).
    ArrivedAtSink {
        /// Sequential packet id.
        packet: u64,
        /// Flow index.
        flow: usize,
        /// Sink node index.
        node: usize,
    },
}

impl PacketEvent {
    /// The packet id the event concerns.
    #[must_use]
    pub const fn packet(&self) -> u64 {
        match *self {
            PacketEvent::Created { packet, .. }
            | PacketEvent::Enqueued { packet, .. }
            | PacketEvent::Preempted { packet, .. }
            | PacketEvent::Departed { packet, .. }
            | PacketEvent::Dropped { packet, .. }
            | PacketEvent::ArrivedAtSink { packet, .. } => packet,
        }
    }

    /// The flow index the packet belongs to.
    #[must_use]
    pub const fn flow(&self) -> usize {
        match *self {
            PacketEvent::Created { flow, .. }
            | PacketEvent::Enqueued { flow, .. }
            | PacketEvent::Preempted { flow, .. }
            | PacketEvent::Departed { flow, .. }
            | PacketEvent::Dropped { flow, .. }
            | PacketEvent::ArrivedAtSink { flow, .. } => flow,
        }
    }

    /// The node index where the event happened.
    #[must_use]
    pub const fn node(&self) -> usize {
        match *self {
            PacketEvent::Created { node, .. }
            | PacketEvent::Enqueued { node, .. }
            | PacketEvent::Preempted { node, .. }
            | PacketEvent::Departed { node, .. }
            | PacketEvent::Dropped { node, .. }
            | PacketEvent::ArrivedAtSink { node, .. } => node,
        }
    }

    /// The event kind, without its payload.
    #[must_use]
    pub const fn kind(&self) -> PacketEventKind {
        match self {
            PacketEvent::Created { .. } => PacketEventKind::Created,
            PacketEvent::Enqueued { .. } => PacketEventKind::Enqueued,
            PacketEvent::Preempted { .. } => PacketEventKind::Preempted,
            PacketEvent::Departed { .. } => PacketEventKind::Departed,
            PacketEvent::Dropped { .. } => PacketEventKind::Dropped,
            PacketEvent::ArrivedAtSink { .. } => PacketEventKind::ArrivedAtSink,
        }
    }
}

/// The kind of a [`PacketEvent`], as stored in a [`FlightEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketEventKind {
    /// Source creation.
    Created,
    /// Buffered at a delaying node or mix.
    Enqueued,
    /// RCAD preemption (followed by an immediate departure).
    Preempted,
    /// Transmission toward the next hop.
    Departed,
    /// Discarded by a full drop-tail buffer.
    Dropped,
    /// Delivery at the sink.
    ArrivedAtSink,
}

impl PacketEventKind {
    /// Stable snake_case name used in the JSONL and Chrome exports.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            PacketEventKind::Created => "created",
            PacketEventKind::Enqueued => "enqueued",
            PacketEventKind::Preempted => "preempted",
            PacketEventKind::Departed => "departed",
            PacketEventKind::Dropped => "dropped",
            PacketEventKind::ArrivedAtSink => "arrived_at_sink",
        }
    }
}

/// One retained event in a [`FlightLog`]: a [`PacketEvent`] stamped with
/// its simulation time, in a serializable shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Event time in simulation time units.
    pub t: f64,
    /// What happened.
    pub kind: PacketEventKind,
    /// Sequential packet id.
    pub packet: u64,
    /// Flow index.
    pub flow: usize,
    /// Node index.
    pub node: usize,
    /// Victim-selection rule, for `Preempted` events only.
    pub victim_policy: Option<String>,
}

/// Default ring-buffer capacity of a [`FlightRecorder`] — enough for a
/// full four-flow Figure-1 run at the paper's packet counts.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 18;

/// A [`SimProbe`] that retains [`PacketEvent`]s in a bounded ring buffer.
///
/// When the ring is full the oldest event is overwritten and the eviction
/// counter advances (surfaced as [`FlightLog::evicted`], the same
/// semantics as [`Trace::dropped`]). Recording is O(1) per event and
/// allocation-free after the ring fills, which keeps tracing overhead
/// within the <10% budget the perf-baseline harness enforces.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Trace<PacketEvent>,
    end: Option<SimTime>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: Trace::with_capacity(capacity),
            end: None,
        }
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded (or everything was cleared).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.ring.dropped()
    }

    /// Clears the ring (and eviction count) for reuse across runs.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.end = None;
    }

    /// Freezes the ring into a serializable [`FlightLog`].
    ///
    /// `end` is the simulation end time ([`SimProbe::on_run_end`] records
    /// it on the probe too; the explicit argument mirrors
    /// [`crate::RecordingProbe::finish`]).
    #[must_use]
    pub fn finish(&self, end: SimTime) -> FlightLog {
        let events = self
            .ring
            .iter()
            .map(|&(t, ev)| FlightEvent {
                t: t.as_units(),
                kind: ev.kind(),
                packet: ev.packet(),
                flow: ev.flow(),
                node: ev.node(),
                victim_policy: match ev {
                    PacketEvent::Preempted { victim_policy, .. } => Some(victim_policy.to_string()),
                    _ => None,
                },
            })
            .collect();
        FlightLog {
            end_time: end.as_units(),
            capacity: self.ring.capacity() as u64,
            evicted: self.ring.dropped(),
            events,
        }
    }
}

impl SimProbe for FlightRecorder {
    #[inline]
    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        self.ring.record(now, event);
    }

    fn on_run_end(&mut self, end: SimTime) {
        self.end = Some(end);
    }
}

/// A frozen flight recording: the retained events plus ring metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightLog {
    /// Simulation end time in time units.
    pub end_time: f64,
    /// Ring capacity the recording ran with.
    pub capacity: u64,
    /// Events overwritten by the ring (oldest first); lineages of packets
    /// whose early events were evicted reconstruct partially.
    pub evicted: u64,
    /// Retained events in time order.
    pub events: Vec<FlightEvent>,
}

/// One hop's buffering interval in a [`PacketLineage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopResidence {
    /// The buffering node.
    pub node: usize,
    /// When the packet was enqueued (`None` for pass-through departures
    /// at non-delaying nodes, which never buffer).
    pub enqueued_at: Option<f64>,
    /// When the packet departed (`None` while still buffered at run end).
    pub departed_at: Option<f64>,
    /// `true` when an RCAD preemption cut this residence short.
    pub preempted: bool,
}

impl HopResidence {
    /// Buffering time at this hop, when both endpoints were recorded.
    #[must_use]
    pub fn residence(&self) -> Option<f64> {
        match (self.enqueued_at, self.departed_at) {
            (Some(enq), Some(dep)) => Some(dep - enq),
            _ => None,
        }
    }
}

/// Terminal state of a packet as far as the recording shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineageOutcome {
    /// Reached the sink.
    Delivered,
    /// Discarded by a full drop-tail buffer.
    Dropped,
    /// No terminal event recorded: still buffered at run end, lost on the
    /// radio, or its tail was evicted from the ring.
    InFlight,
}

/// A packet's reconstructed life: creation→arrival span, per-hop
/// residence intervals, and preemption count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketLineage {
    /// Sequential packet id.
    pub packet: u64,
    /// Flow index.
    pub flow: usize,
    /// Creation time (`None` when the event was evicted from the ring).
    pub created_at: Option<f64>,
    /// Sink arrival time, if delivered within the recording.
    pub arrived_at: Option<f64>,
    /// RCAD preemptions suffered along the path.
    pub preemptions: u32,
    /// Buffering intervals, in hop order.
    pub hops: Vec<HopResidence>,
    /// Terminal state as recorded.
    pub outcome: LineageOutcome,
}

impl PacketLineage {
    /// End-to-end creation→arrival span, when both ends were recorded.
    #[must_use]
    pub fn span(&self) -> Option<f64> {
        match (self.created_at, self.arrived_at) {
            (Some(c), Some(a)) => Some(a - c),
            _ => None,
        }
    }
}

/// Per-hop and end-to-end latency spectra derived from lineages, as
/// fixed-bin histogram samples (quantiles via
/// [`HistogramSample::percentile`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySpectra {
    /// Residence times of completed, non-preempted buffering hops.
    pub per_hop: HistogramSample,
    /// Creation→arrival spans of delivered packets.
    pub end_to_end: HistogramSample,
}

/// Bins `samples` into a [`HistogramSample`] over `[0, max)` so quantile
/// queries via [`HistogramSample::percentile`] work on it.
fn spectrum(name: &str, help: &str, samples: &[f64], bins: usize) -> HistogramSample {
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    // Nudge the top edge so the maximum sample lands inside the range.
    let hi = if max > 0.0 { max * (1.0 + 1e-9) } else { 1.0 };
    let width = hi / bins as f64;
    let mut counts = vec![0u64; bins];
    let mut sum = 0.0;
    for &x in samples {
        let i = ((x / width) as usize).min(bins - 1);
        counts[i] += 1;
        sum += x;
    }
    HistogramSample {
        name: name.to_string(),
        help: help.to_string(),
        lo: 0.0,
        width,
        counts,
        underflow: 0,
        overflow: 0,
        total: samples.len() as u64,
        sum,
    }
}

impl FlightLog {
    /// Reconstructs per-packet lineages from the retained events, in
    /// packet-id order. Packets whose early events were evicted from the
    /// ring reconstruct partially (e.g. `created_at: None`).
    #[must_use]
    pub fn lineages(&self) -> Vec<PacketLineage> {
        let mut by_packet: BTreeMap<u64, PacketLineage> = BTreeMap::new();
        for ev in &self.events {
            let lineage = by_packet.entry(ev.packet).or_insert_with(|| PacketLineage {
                packet: ev.packet,
                flow: ev.flow,
                created_at: None,
                arrived_at: None,
                preemptions: 0,
                hops: Vec::new(),
                outcome: LineageOutcome::InFlight,
            });
            match ev.kind {
                PacketEventKind::Created => lineage.created_at = Some(ev.t),
                PacketEventKind::Enqueued => lineage.hops.push(HopResidence {
                    node: ev.node,
                    enqueued_at: Some(ev.t),
                    departed_at: None,
                    preempted: false,
                }),
                PacketEventKind::Preempted => {
                    lineage.preemptions += 1;
                    if let Some(hop) = lineage
                        .hops
                        .iter_mut()
                        .rev()
                        .find(|h| h.node == ev.node && h.departed_at.is_none())
                    {
                        hop.preempted = true;
                    }
                }
                PacketEventKind::Departed => {
                    match lineage
                        .hops
                        .iter_mut()
                        .rev()
                        .find(|h| h.node == ev.node && h.departed_at.is_none())
                    {
                        Some(hop) => hop.departed_at = Some(ev.t),
                        // Pass-through at a non-delaying node: no matching
                        // Enqueued was ever emitted.
                        None => lineage.hops.push(HopResidence {
                            node: ev.node,
                            enqueued_at: None,
                            departed_at: Some(ev.t),
                            preempted: false,
                        }),
                    }
                }
                PacketEventKind::Dropped => lineage.outcome = LineageOutcome::Dropped,
                PacketEventKind::ArrivedAtSink => {
                    lineage.arrived_at = Some(ev.t);
                    lineage.outcome = LineageOutcome::Delivered;
                }
            }
        }
        by_packet.into_values().collect()
    }

    /// `(node, residence)` samples of completed, non-preempted buffering
    /// hops — the empirical per-hop delay distribution the §4 tandem
    /// analysis predicts to be Exp(μ).
    #[must_use]
    pub fn residence_samples(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for lineage in self.lineages() {
            for hop in &lineage.hops {
                if hop.preempted {
                    continue;
                }
                if let Some(r) = hop.residence() {
                    out.push((hop.node, r));
                }
            }
        }
        out
    }

    /// Completed non-preempted residence samples grouped by node, for
    /// per-node Exp(μ) theory checks.
    #[must_use]
    pub fn residence_by_node(&self) -> BTreeMap<usize, Vec<f64>> {
        let mut out: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (node, r) in self.residence_samples() {
            out.entry(node).or_default().push(r);
        }
        out
    }

    /// `(flow, span)` samples of delivered packets with a recorded
    /// creation — the end-to-end latency distribution per flow.
    #[must_use]
    pub fn end_to_end_samples(&self) -> Vec<(usize, f64)> {
        self.lineages()
            .iter()
            .filter_map(|l| l.span().map(|s| (l.flow, s)))
            .collect()
    }

    /// Per-hop and end-to-end latency spectra as fixed-bin histograms
    /// (`bins` bins each, range `[0, max sample)`).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn latency_spectra(&self, bins: usize) -> LatencySpectra {
        assert!(bins > 0, "latency spectra need at least one bin");
        let hop: Vec<f64> = self.residence_samples().iter().map(|&(_, r)| r).collect();
        let e2e: Vec<f64> = self.end_to_end_samples().iter().map(|&(_, s)| s).collect();
        LatencySpectra {
            per_hop: spectrum(
                "tempriv_trace_hop_residence",
                "per-hop buffering residence times",
                &hop,
                bins,
            ),
            end_to_end: spectrum(
                "tempriv_trace_end_to_end_latency",
                "creation to sink-arrival spans",
                &e2e,
                bins,
            ),
        }
    }

    /// Retains only events matching every given filter (`None` = match
    /// all). Ring metadata is kept so eviction remains visible.
    #[must_use]
    pub fn filtered(
        &self,
        flow: Option<usize>,
        node: Option<usize>,
        packet: Option<u64>,
    ) -> FlightLog {
        FlightLog {
            end_time: self.end_time,
            capacity: self.capacity,
            evicted: self.evicted,
            events: self
                .events
                .iter()
                .filter(|e| flow.is_none_or(|f| e.flow == f))
                .filter(|e| node.is_none_or(|n| e.node == n))
                .filter(|e| packet.is_none_or(|p| e.packet == p))
                .cloned()
                .collect(),
        }
    }

    /// One JSON object per line, one line per retained event — grep- and
    /// `jq`-friendly. Keys: `t`, `kind`, `packet`, `flow`, `node`, plus
    /// `victim_policy` on preemptions.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"t\":{},\"kind\":\"{}\",\"packet\":{},\"flow\":{},\"node\":{}",
                e.t,
                e.kind.as_str(),
                e.packet,
                e.flow,
                e.node
            );
            if let Some(vp) = &e.victim_policy {
                let _ = write!(out, ",\"victim_policy\":\"{}\"", json_escape(vp));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
    /// form), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Mapping: flows become processes (`pid`), nodes become threads
    /// (`tid`); each completed hop residence is a complete (`"X"`) event
    /// spanning enqueue→departure; creations, preemptions, drops, and
    /// sink arrivals are instant (`"i"`) events. One simulation time unit
    /// is rendered as one microsecond.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        wrap_chrome_events(&self.chrome_trace_events())
    }

    /// The individual Chrome `trace_event` objects of
    /// [`FlightLog::to_chrome_trace`], unwrapped — callers merge them
    /// with span and phase events into one timeline before wrapping with
    /// [`wrap_chrome_events`].
    #[must_use]
    pub fn chrome_trace_events(&self) -> Vec<String> {
        let mut parts: Vec<String> = Vec::new();
        let mut pids: BTreeSet<usize> = BTreeSet::new();
        let mut threads: BTreeSet<(usize, usize)> = BTreeSet::new();
        for e in &self.events {
            pids.insert(e.flow);
            threads.insert((e.flow, e.node));
        }
        for pid in &pids {
            parts.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"flow {pid}\"}}}}"
            ));
        }
        for (pid, tid) in &threads {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"node {tid}\"}}}}"
            ));
        }
        for lineage in self.lineages() {
            for hop in &lineage.hops {
                if let (Some(enq), Some(r)) = (hop.enqueued_at, hop.residence()) {
                    parts.push(format!(
                        "{{\"name\":\"buffered\",\"cat\":\"residence\",\"ph\":\"X\",\
                         \"ts\":{enq},\"dur\":{r},\"pid\":{},\"tid\":{},\
                         \"args\":{{\"packet\":{},\"preempted\":{}}}}}",
                        lineage.flow, hop.node, lineage.packet, hop.preempted
                    ));
                }
            }
        }
        for e in &self.events {
            let instant = matches!(
                e.kind,
                PacketEventKind::Created
                    | PacketEventKind::Preempted
                    | PacketEventKind::Dropped
                    | PacketEventKind::ArrivedAtSink
            );
            if instant {
                let policy = e.victim_policy.as_deref().map_or(String::new(), |vp| {
                    format!(",\"victim_policy\":\"{}\"", json_escape(vp))
                });
                parts.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"packet\":{}{policy}}}}}",
                    e.kind.as_str(),
                    e.t,
                    e.flow,
                    e.node,
                    e.packet
                ));
            }
        }
        parts
    }

    /// Per-flow Age-of-Information statistics from delivered packets.
    ///
    /// AoI is the classic sawtooth: right after a delivery at `a_i` of a
    /// packet created at `c_i`, the sink's information age resets to
    /// `a_i − c_i` and then grows linearly until the next delivery (or
    /// run end). The mean is the exact trapezoid integral of the
    /// sawtooth over the window from each flow's first delivery to
    /// [`FlightLog::end_time`], divided by the window; the peak is the
    /// largest age reached. Flows with no complete creation→arrival
    /// lineage produce no entry.
    #[must_use]
    pub fn aoi_by_flow(&self) -> Vec<FlowAoi> {
        let mut by_flow: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
        for lineage in self.lineages() {
            if let (Some(c), Some(a)) = (lineage.created_at, lineage.arrived_at) {
                by_flow.entry(lineage.flow).or_default().push((a, c));
            }
        }
        let mut out = Vec::new();
        for (flow, mut deliveries) in by_flow {
            deliveries.sort_by(|x, y| x.partial_cmp(y).expect("finite event times"));
            let last_arrival = deliveries.last().expect("non-empty").0;
            let end = self.end_time.max(last_arrival);
            let mut integral = 0.0;
            let mut window = 0.0;
            let mut peak = 0.0f64;
            for (i, &(a, c)) in deliveries.iter().enumerate() {
                let next = deliveries.get(i + 1).map_or(end, |d| d.0);
                let lo = a - c;
                let hi = next - c;
                integral += (lo + hi) / 2.0 * (next - a);
                window += next - a;
                peak = peak.max(lo).max(hi);
            }
            let mean = if window > 0.0 {
                integral / window
            } else {
                // Single delivery exactly at run end: the age observed.
                peak
            };
            out.push(FlowAoi {
                flow,
                mean,
                peak,
                deliveries: deliveries.len() as u64,
            });
        }
        out
    }
}

/// Per-flow Age-of-Information summary (see [`FlightLog::aoi_by_flow`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowAoi {
    /// Flow index.
    pub flow: usize,
    /// Time-averaged information age over the observation window.
    pub mean: f64,
    /// Largest information age reached.
    pub peak: f64,
    /// Delivered packets contributing to the sawtooth.
    pub deliveries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn ev(rec: &mut FlightRecorder, at: f64, event: PacketEvent) {
        rec.on_packet(t(at), event);
    }

    /// Packet 0, flow 0: created at node 1, buffered there, delivered at
    /// node 9. Packet 1 is dropped at node 2.
    fn demo_log() -> FlightLog {
        let mut rec = FlightRecorder::with_capacity(64);
        ev(
            &mut rec,
            0.0,
            PacketEvent::Created {
                packet: 0,
                flow: 0,
                node: 1,
            },
        );
        ev(
            &mut rec,
            0.0,
            PacketEvent::Enqueued {
                packet: 0,
                flow: 0,
                node: 1,
            },
        );
        ev(
            &mut rec,
            12.5,
            PacketEvent::Departed {
                packet: 0,
                flow: 0,
                node: 1,
            },
        );
        ev(
            &mut rec,
            13.5,
            PacketEvent::Enqueued {
                packet: 0,
                flow: 0,
                node: 2,
            },
        );
        ev(
            &mut rec,
            40.0,
            PacketEvent::Departed {
                packet: 0,
                flow: 0,
                node: 2,
            },
        );
        ev(
            &mut rec,
            41.0,
            PacketEvent::ArrivedAtSink {
                packet: 0,
                flow: 0,
                node: 9,
            },
        );
        ev(
            &mut rec,
            5.0,
            PacketEvent::Created {
                packet: 1,
                flow: 1,
                node: 3,
            },
        );
        ev(
            &mut rec,
            6.0,
            PacketEvent::Dropped {
                packet: 1,
                flow: 1,
                node: 2,
            },
        );
        rec.finish(t(50.0))
    }

    #[test]
    fn lineages_reconstruct_span_hops_and_outcomes() {
        let log = demo_log();
        let lineages = log.lineages();
        assert_eq!(lineages.len(), 2);
        let p0 = &lineages[0];
        assert_eq!(p0.outcome, LineageOutcome::Delivered);
        assert_eq!(p0.span(), Some(41.0));
        assert_eq!(p0.hops.len(), 2);
        assert_eq!(p0.hops[0].residence(), Some(12.5));
        assert_eq!(p0.hops[1].residence(), Some(26.5));
        assert_eq!(p0.preemptions, 0);
        let p1 = &lineages[1];
        assert_eq!(p1.outcome, LineageOutcome::Dropped);
        assert_eq!(p1.span(), None);
    }

    #[test]
    fn preemption_marks_the_open_hop_and_counts() {
        let mut rec = FlightRecorder::with_capacity(16);
        ev(
            &mut rec,
            0.0,
            PacketEvent::Created {
                packet: 7,
                flow: 2,
                node: 4,
            },
        );
        ev(
            &mut rec,
            1.0,
            PacketEvent::Enqueued {
                packet: 7,
                flow: 2,
                node: 4,
            },
        );
        ev(
            &mut rec,
            3.0,
            PacketEvent::Preempted {
                packet: 7,
                flow: 2,
                node: 4,
                victim_policy: "shortest_remaining",
            },
        );
        ev(
            &mut rec,
            3.0,
            PacketEvent::Departed {
                packet: 7,
                flow: 2,
                node: 4,
            },
        );
        let log = rec.finish(t(10.0));
        let lineage = &log.lineages()[0];
        assert_eq!(lineage.preemptions, 1);
        assert!(lineage.hops[0].preempted);
        assert_eq!(lineage.hops[0].residence(), Some(2.0));
        // Preempted hops are excluded from the residence spectrum.
        assert!(log.residence_samples().is_empty());
        assert_eq!(
            log.events[2].victim_policy.as_deref(),
            Some("shortest_remaining")
        );
    }

    #[test]
    fn pass_through_departure_becomes_a_zero_info_hop() {
        let mut rec = FlightRecorder::with_capacity(16);
        ev(
            &mut rec,
            2.0,
            PacketEvent::Departed {
                packet: 0,
                flow: 0,
                node: 6,
            },
        );
        let log = rec.finish(t(10.0));
        let lineage = &log.lineages()[0];
        assert_eq!(lineage.hops.len(), 1);
        assert_eq!(lineage.hops[0].enqueued_at, None);
        assert_eq!(lineage.hops[0].residence(), None);
        assert_eq!(lineage.outcome, LineageOutcome::InFlight);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_evictions() {
        let mut rec = FlightRecorder::with_capacity(2);
        for i in 0..5 {
            ev(
                &mut rec,
                i as f64,
                PacketEvent::Created {
                    packet: i,
                    flow: 0,
                    node: 0,
                },
            );
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        let log = rec.finish(t(5.0));
        assert_eq!(log.evicted, 3);
        assert_eq!(log.capacity, 2);
        // Oldest events are gone; the newest survive.
        assert_eq!(log.events[0].packet, 3);
        assert_eq!(log.events[1].packet, 4);
        rec.reset();
        assert!(rec.is_empty());
        assert_eq!(rec.evicted(), 0);
    }

    #[test]
    fn spectra_quantiles_come_from_the_percentile_helper() {
        let log = demo_log();
        let spectra = log.latency_spectra(40);
        assert_eq!(spectra.per_hop.total, 2);
        assert_eq!(spectra.end_to_end.total, 1);
        let p50 = spectra.per_hop.p50().unwrap();
        assert!(p50 > 12.0 && p50 < 27.0, "hop p50 {p50}");
        let e2e = spectra.end_to_end.p99().unwrap();
        assert!((e2e - 41.0).abs() < 1.1, "e2e p99 {e2e}");
    }

    #[test]
    fn filters_are_conjunctive() {
        let log = demo_log();
        assert_eq!(log.filtered(Some(1), None, None).events.len(), 2);
        assert_eq!(log.filtered(None, Some(2), None).events.len(), 3);
        assert_eq!(log.filtered(None, Some(2), Some(1)).events.len(), 1);
        assert_eq!(log.filtered(Some(0), Some(2), Some(1)).events.len(), 0);
    }

    #[test]
    fn jsonl_has_one_parsable_object_per_event() {
        let log = demo_log();
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), log.events.len());
        assert!(lines[0].contains("\"kind\":\"created\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let log = demo_log();
        let chrome = log.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        // Two completed hops -> two X events; metadata names both flows.
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), 2);
        assert!(chrome.contains("\"name\":\"flow 0\""));
        assert!(chrome.contains("\"name\":\"flow 1\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        // Balanced braces — the cheap well-formedness proxy without a
        // JSON parser in the test.
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }

    #[test]
    fn flight_log_round_trips_through_json() {
        let log = demo_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: FlightLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn exports_escape_victim_policy_strings() {
        let mut log = demo_log();
        log.events.push(FlightEvent {
            t: 45.0,
            kind: PacketEventKind::Preempted,
            packet: 0,
            flow: 0,
            node: 2,
            victim_policy: Some("evil\"policy\\name".to_string()),
        });
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("evil\\\"policy\\\\name"));
        let chrome = log.to_chrome_trace();
        assert!(chrome.contains("evil\\\"policy\\\\name"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }

    #[test]
    fn aoi_follows_the_sawtooth() {
        let mut rec = FlightRecorder::with_capacity(32);
        for (packet, created, arrived) in [(0u64, 0.0, 10.0), (1u64, 5.0, 20.0)] {
            ev(
                &mut rec,
                created,
                PacketEvent::Created {
                    packet,
                    flow: 0,
                    node: 1,
                },
            );
            ev(
                &mut rec,
                arrived,
                PacketEvent::ArrivedAtSink {
                    packet,
                    flow: 0,
                    node: 9,
                },
            );
        }
        let log = rec.finish(t(30.0));
        let aoi = log.aoi_by_flow();
        assert_eq!(aoi.len(), 1);
        let flow0 = &aoi[0];
        assert_eq!(flow0.flow, 0);
        assert_eq!(flow0.deliveries, 2);
        // Sawtooth: [10,20] ages 10→20, [20,30] ages 15→25.
        assert!((flow0.mean - 17.5).abs() < 1e-9, "mean {}", flow0.mean);
        assert!((flow0.peak - 25.0).abs() < 1e-9, "peak {}", flow0.peak);
    }

    #[test]
    fn aoi_skips_flows_without_deliveries() {
        let log = demo_log();
        let aoi = log.aoi_by_flow();
        // Flow 1's only packet was dropped: no AoI entry.
        assert_eq!(aoi.len(), 1);
        assert_eq!(aoi[0].flow, 0);
        // Flow 0: one delivery (created 0, arrived 41), window [41, 50].
        assert!((aoi[0].mean - 45.5).abs() < 1e-9, "mean {}", aoi[0].mean);
        assert!((aoi[0].peak - 50.0).abs() < 1e-9);
    }
}

//! A lightweight metrics registry.
//!
//! Three metric kinds — monotone counters, free-standing gauges, and
//! fixed-bin histograms (backed by [`tempriv_sim::stats::Histogram`]) —
//! registered by name and updated through cheap index handles. A
//! [`MetricsRegistry::snapshot`] freezes the current values into a
//! serializable [`TelemetrySnapshot`] exportable as canonical JSON or the
//! Prometheus text exposition format.
//!
//! Metric names may carry Prometheus-style labels inline, e.g.
//! `tempriv_node_occupancy_mean{node="3"}`; the exposition writer splits
//! the base name off at the first `{` when emitting `# TYPE` headers so a
//! labeled family is declared once.

use serde::{Deserialize, Serialize};
use tempriv_sim::stats::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

struct Counter {
    name: String,
    help: String,
    value: u64,
}

struct Gauge {
    name: String,
    help: String,
    value: f64,
}

struct HistogramMetric {
    name: String,
    help: String,
    hist: Histogram,
    sum: f64,
}

/// A registry of named metrics with cheap index handles.
///
/// Registration returns a typed id; updates go through the id so the hot
/// path never hashes a name. The registry is single-threaded by design —
/// each simulation job owns its own and snapshots are merged afterwards.
///
/// # Examples
///
/// ```
/// use tempriv_telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let drops = reg.counter("tempriv_drops_total", "packets dropped");
/// reg.inc(drops, 3);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters[0].value, 3);
/// assert!(snap.to_prometheus().contains("tempriv_drops_total 3"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<HistogramMetric>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a monotone counter starting at zero.
    pub fn counter(&mut self, name: impl Into<String>, help: impl Into<String>) -> CounterId {
        self.counters.push(Counter {
            name: name.into(),
            help: help.into(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge starting at zero.
    pub fn gauge(&mut self, name: impl Into<String>, help: impl Into<String>) -> GaugeId {
        self.gauges.push(Gauge {
            name: name.into(),
            help: help.into(),
            value: 0.0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a fixed-bin histogram over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or `bins == 0` (see
    /// [`Histogram::new`]).
    pub fn histogram(
        &mut self,
        name: impl Into<String>,
        help: impl Into<String>,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> HistogramId {
        self.histograms.push(HistogramMetric {
            name: name.into(),
            help: help.into(),
            hist: Histogram::new(lo, hi, bins),
            sum: 0.0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        let m = &mut self.histograms[id.0];
        m.hist.record(x);
        m.sum += x;
    }

    /// Current counter value.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Freezes the current values into a serializable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSample {
                    name: c.name.clone(),
                    help: c.help.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSample {
                    name: g.name.clone(),
                    help: g.help.clone(),
                    value: g.value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|m| {
                    let h = &m.hist;
                    let width = h.bin_width();
                    let lo = h.bin_center(0) - width / 2.0;
                    HistogramSample {
                        name: m.name.clone(),
                        help: m.help.clone(),
                        lo,
                        width,
                        counts: (0..h.bins()).map(|i| h.bin_count(i)).collect(),
                        underflow: h.underflow(),
                        overflow: h.overflow(),
                        total: h.total(),
                        sum: m.sum,
                    }
                })
                .collect(),
        }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name, possibly with inline `{label="value"}` pairs.
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name, possibly with inline `{label="value"}` pairs.
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (labels not supported on histograms).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Lower bound of the first bin.
    pub lo: f64,
    /// Width of each bin.
    pub width: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Observations below the range.
    pub underflow: u64,
    /// Observations at or above the range end.
    pub overflow: u64,
    /// Total observations, including out-of-range ones.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSample {
    /// Approximate quantile `q ∈ [0, 1]` by linear interpolation within
    /// the fixed bins, mirroring `tempriv_sim::stats::Histogram::quantile`
    /// so snapshots and live histograms agree. Underflow mass resolves to
    /// the range start and overflow mass saturates at the range end.
    /// Returns `None` while the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut cum = self.underflow as f64;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cum + count as f64;
            if next >= target {
                let frac = (target - cum) / count as f64;
                return Some(self.lo + (i as f64 + frac) * self.width);
            }
            cum = next;
        }
        // Remaining mass sits in the overflow bucket: saturate at the end.
        Some(self.lo + self.counts.len() as f64 * self.width)
    }

    /// Median ([`HistogramSample::percentile`] at 0.5).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.percentile(0.9)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }
}

/// A frozen, serializable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TelemetrySnapshot {
    /// Counter samples in registration order.
    pub counters: Vec<CounterSample>,
    /// Gauge samples in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples in registration order.
    pub histograms: Vec<HistogramSample>,
}

/// Splits `name{labels}` into `(base, Some("labels"))`, or `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(name[i + 1..].trim_end_matches('}'))),
        None => (name, None),
    }
}

impl TelemetrySnapshot {
    /// Canonical single-line JSON encoding (field order is fixed by the
    /// struct definitions, so equal snapshots produce equal bytes).
    ///
    /// # Panics
    ///
    /// Never in practice: the snapshot is a plain tree of serializable
    /// fields.
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric family,
    /// cumulative `_bucket{le=...}` series plus `_sum` / `_count` for
    /// histograms.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
            let (base, _) = split_labels(name);
            if !seen.iter().any(|s| s == base) {
                seen.push(base.to_string());
                out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} {kind}\n"));
            }
        };
        for c in &self.counters {
            header(&mut out, &c.name, &c.help, "counter");
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            header(&mut out, &g.name, &g.help, "gauge");
            out.push_str(&format!("{} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            header(&mut out, &h.name, &h.help, "histogram");
            let (base, labels) = split_labels(&h.name);
            let with = |le: &str| match labels {
                Some(l) => format!("{base}_bucket{{{l},le=\"{le}\"}}"),
                None => format!("{base}_bucket{{le=\"{le}\"}}"),
            };
            let mut cum = h.underflow;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                let le = h.lo + (i as f64 + 1.0) * h.width;
                out.push_str(&format!("{} {}\n", with(&format!("{le}")), cum));
            }
            out.push_str(&format!("{} {}\n", with("+Inf"), h.total));
            out.push_str(&format!("{base}_sum{} {}\n", label_suffix(labels), h.sum));
            out.push_str(&format!(
                "{base}_count{} {}\n",
                label_suffix(labels),
                h.total
            ));
        }
        out
    }
}

fn label_suffix(labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{{{l}}}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn handles_update_the_right_metric() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("a_total", "first");
        let b = reg.counter("b_total", "second");
        let g = reg.gauge("depth", "queue depth");
        reg.inc(a, 2);
        reg.inc(b, 5);
        reg.inc(a, 1);
        reg.set(g, 2.5);
        assert_eq!(reg.counter_value(a), 3);
        assert_eq!(reg.counter_value(b), 5);
        assert_eq!(reg.gauge_value(g), 2.5);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("tempriv_preemptions_total{node=\"0\"}", "rcad preemptions");
        let h = reg.histogram("latency_units", "delivery latency", 0.0, 100.0, 10);
        reg.inc(c, 7);
        reg.observe(h, 15.0);
        reg.observe(h, 205.0); // overflow
        let snap = reg.snapshot();
        let json = snap.to_canonical_json();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histograms[0].total, 2);
        assert_eq!(back.histograms[0].overflow, 1);
        assert_eq!(back.histograms[0].sum, 220.0);
    }

    #[test]
    fn canonical_json_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let g = reg.gauge("x", "a gauge");
            reg.set(g, 1.25);
            reg.snapshot().to_canonical_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn prometheus_text_format_shape() {
        let mut reg = MetricsRegistry::new();
        let c0 = reg.counter("drops_total{node=\"0\"}", "drops");
        let c1 = reg.counter("drops_total{node=\"1\"}", "drops");
        let h = reg.histogram("occ", "occupancy", 0.0, 4.0, 2);
        reg.inc(c0, 1);
        reg.inc(c1, 2);
        reg.observe(h, 1.0);
        reg.observe(h, 3.0);
        let text = reg.snapshot().to_prometheus();
        // A labeled family is declared exactly once.
        assert_eq!(text.matches("# TYPE drops_total counter").count(), 1);
        assert!(text.contains("drops_total{node=\"0\"} 1"));
        assert!(text.contains("drops_total{node=\"1\"} 2"));
        // Histogram buckets are cumulative and end with +Inf.
        assert!(text.contains("occ_bucket{le=\"2\"} 1"));
        assert!(text.contains("occ_bucket{le=\"4\"} 2"));
        assert!(text.contains("occ_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("occ_sum 4"));
        assert!(text.contains("occ_count 2"));
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("lat", "latency", 0.0, 100.0, 10);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].percentile(0.5), None);
        assert_eq!(snap.histograms[0].p99(), None);
    }

    #[test]
    fn percentile_interpolates_within_a_single_bin() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 0.0, 100.0, 10);
        // Four observations, all landing in bin [10, 20).
        for _ in 0..4 {
            reg.observe(h, 15.0);
        }
        let s = &reg.snapshot().histograms[0];
        // Linear-in-bin: p50 is halfway through the bin, p100 at its end.
        assert!((s.p50().unwrap() - 15.0).abs() < 1e-9);
        assert!((s.percentile(1.0).unwrap() - 20.0).abs() < 1e-9);
        // Every quantile stays inside the occupied bin.
        let p90 = s.p90().unwrap();
        assert!((10.0..=20.0).contains(&p90));
    }

    #[test]
    fn percentile_saturates_at_range_end_for_overflow_mass() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 0.0, 100.0, 10);
        reg.observe(h, 50.0);
        for _ in 0..9 {
            reg.observe(h, 500.0); // overflow
        }
        let s = &reg.snapshot().histograms[0];
        // 90% of the mass is beyond the range: high quantiles clamp to hi.
        assert!((s.p99().unwrap() - 100.0).abs() < 1e-9);
        // Low quantiles still resolve inside the range.
        assert!(s.percentile(0.05).unwrap() < 100.0);
    }

    #[test]
    fn percentile_resolves_underflow_to_range_start() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 10.0, 20.0, 5);
        reg.observe(h, 0.0); // underflow
        reg.observe(h, 15.0);
        let s = &reg.snapshot().histograms[0];
        assert_eq!(s.percentile(0.25), Some(10.0));
    }

    #[test]
    fn percentile_extremes_anchor_to_the_data_range() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 0.0, 50.0, 5);
        for x in [5.0, 15.0, 25.0, 35.0, 45.0] {
            reg.observe(h, x);
        }
        let s = &reg.snapshot().histograms[0];
        // q = 0: no mass below the first occupied bin, so the infimum of
        // the data is the range start.
        assert_eq!(s.percentile(0.0), Some(0.0));
        // q = 1: all mass is inside the range; the supremum is the end of
        // the last occupied bin, not beyond it.
        assert!((s.percentile(1.0).unwrap() - 50.0).abs() < 1e-9);
        // And q = 0/1 on an *empty* histogram are still None, not a
        // made-up range endpoint.
        reg.histogram("lat2", "latency", 0.0, 50.0, 5);
        let empty = &reg.snapshot().histograms[1];
        assert_eq!(empty.percentile(0.0), None);
        assert_eq!(empty.percentile(1.0), None);
    }

    #[test]
    fn single_bin_histogram_percentiles_interpolate_linearly() {
        // The degenerate bins == 1 histogram: every in-range observation
        // lands in the one cell, and quantiles sweep it linearly.
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 0.0, 10.0, 1);
        for _ in 0..10 {
            reg.observe(h, 3.0);
        }
        let s = &reg.snapshot().histograms[0];
        assert_eq!(s.counts.len(), 1);
        assert_eq!(s.percentile(0.0), Some(0.0));
        assert!((s.p50().unwrap() - 5.0).abs() < 1e-9);
        assert!((s.percentile(1.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_out_of_range_quantiles() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", 0.0, 10.0, 2);
        reg.observe(h, 1.0);
        let _ = reg.snapshot().histograms[0].percentile(1.5);
    }

    #[test]
    fn snapshot_deserializes_from_struct_shape() {
        // Guards the field names the CLI smoke test greps for.
        #[derive(Serialize, Deserialize)]
        struct Probe {
            gauges: Vec<GaugeSample>,
        }
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("tempriv_node_occupancy_mean{node=\"0\"}", "mean occupancy");
        reg.set(g, 14.7);
        let json = reg.snapshot().to_canonical_json();
        let p: Probe = serde_json::from_str(&json).unwrap();
        assert_eq!(p.gauges[0].name, "tempriv_node_occupancy_mean{node=\"0\"}");
    }
}

//! The streaming privacy observatory: a [`SimProbe`] that watches the
//! paper's central metric — temporal leakage `I(X; Z)` — accumulate live.
//!
//! [`PrivacyProbe`] feeds every sink delivery into the O(1)-per-sample
//! estimators of [`tempriv_infotheory::streaming`]: a per-flow
//! [`StreamingMi`] over (creation, arrival) pairs and a per-flow
//! [`StreamingMse`] tracking the error of the paper's baseline adversary
//! (`x̂ = z − offset`, the constant-offset estimator of §2.1/§5.1). At a
//! configurable delivery interval it freezes [`FlowPrivacySummary`]
//! snapshots into a bounded, decimated time series, so a finished run
//! yields replayable convergence curves; [`PrivacySeries::publish_gauges`]
//! exposes the final state as `tempriv_privacy_*{flow="i"}` gauges.
//!
//! Like every probe it only observes: it consumes no RNG draws and
//! mutates no simulation state, so outcomes are byte-identical with the
//! probe on or off. Non-finite samples are counted and skipped rather
//! than panicking (see [`PrivacySeries::rejected`]).

use crate::probe::SimProbe;
use crate::registry::MetricsRegistry;
use serde::{Deserialize, Serialize};
use tempriv_infotheory::bounds::btq_stream_bound_nats;
use tempriv_infotheory::streaming::{StreamingMi, StreamingMse};
use tempriv_sim::time::SimTime;

/// The traffic/delay parameters behind the eq. 4 bits-through-queues
/// envelope for one flow, when they are known (stochastic workloads with
/// advertised delay means). Trace-driven schedules have no rate, so the
/// probe degrades to MI-only gauges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BtqParams {
    /// Per-hop delay rate μ (1 / mean buffering delay).
    pub mu: f64,
    /// Packet creation rate λ of the flow's source.
    pub lambda: f64,
}

/// Per-flow configuration handed to [`PrivacyProbe::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowPrivacyConfig {
    /// The baseline adversary's constant creation-time offset for this
    /// flow: `x̂ = z − offset` (hops·τ plus the advertised path delay
    /// mean, per §2.1).
    pub adversary_offset: f64,
    /// Parameters of the eq. 4 envelope, or `None` when unknown.
    pub btq: Option<BtqParams>,
}

/// One flow's privacy state at a snapshot instant.
///
/// Fields that can be undefined early in a run (or for configs without a
/// known envelope) are `Option`s rather than NaN so the summary survives
/// a JSON round trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowPrivacySummary {
    /// Flow index (the simulator's source ordering).
    pub flow: usize,
    /// Packets from this flow delivered so far.
    pub packets: u64,
    /// Streaming plug-in estimate of `I(X; Z)` in nats.
    pub mi_nats: f64,
    /// The baseline adversary's running mean square error.
    pub mse: Option<f64>,
    /// The MI lower bound implied by that MSE via Guo–Shamai–Verdú.
    pub mi_from_mse_nats: Option<f64>,
    /// Mean per-packet eq. 4 upper bound,
    /// `btq_stream_bound_nats(n, μ, λ) / n`.
    pub btq_mean_bound_nats: Option<f64>,
    /// Privacy margin: analytic bound − empirical MI (negative means the
    /// stream leaks more than the envelope the operator tuned for).
    pub margin_nats: Option<f64>,
}

/// One instant of the journaled convergence series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyPoint {
    /// Total deliveries (all flows) when the snapshot was taken.
    pub deliveries: u64,
    /// Simulation time of the snapshot.
    pub time: f64,
    /// Per-flow summaries at that instant.
    pub flows: Vec<FlowPrivacySummary>,
}

/// Everything the probe learned over a run, frozen for journaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacySeries {
    /// Deliveries between snapshots (the `--privacy-interval` setting).
    pub interval: u64,
    /// Simulation end time.
    pub end_time: f64,
    /// Total deliveries across all flows.
    pub deliveries: u64,
    /// Finite-buffer drops observed.
    pub drops: u64,
    /// RCAD preemptions observed.
    pub preemptions: u64,
    /// Non-finite samples skipped by the estimators (should be zero; a
    /// positive value flags a simulator bug without killing the run).
    pub rejected: u64,
    /// Decimated convergence series, oldest first; the final snapshot
    /// (taken at run end) is always the last element.
    pub points: Vec<PrivacyPoint>,
    /// Final per-flow summaries — same data as `points.last()`, kept
    /// separately so consumers need not care about decimation.
    pub summary: Vec<FlowPrivacySummary>,
}

impl PrivacySeries {
    /// Publishes the final per-flow state as
    /// `tempriv_privacy_mi_nats{flow="i"}`,
    /// `tempriv_privacy_margin_nats{flow="i"}`, and
    /// `tempriv_privacy_adversary_mse{flow="i"}` gauges. Unknown values
    /// (no envelope, too few packets) are skipped, not published as 0.
    pub fn publish_gauges(&self, registry: &mut MetricsRegistry) {
        for s in &self.summary {
            let flow = s.flow;
            let id = registry.gauge(
                format!("tempriv_privacy_mi_nats{{flow=\"{flow}\"}}"),
                "streaming estimate of I(X;Z) between creation and arrival times",
            );
            registry.set(id, s.mi_nats);
            if let Some(margin) = s.margin_nats {
                let id = registry.gauge(
                    format!("tempriv_privacy_margin_nats{{flow=\"{flow}\"}}"),
                    "eq. 4 mean per-packet bound minus the empirical streaming MI",
                );
                registry.set(id, margin);
            }
            if let Some(mse) = s.mse {
                let id = registry.gauge(
                    format!("tempriv_privacy_adversary_mse{{flow=\"{flow}\"}}"),
                    "running mean square error of the baseline creation-time adversary",
                );
                registry.set(id, mse);
            }
        }
    }
}

/// Default number of retained snapshots; older points are decimated with
/// a doubling stride, exactly like the occupancy series in
/// [`crate::probe::RecordingProbe`].
pub const DEFAULT_PRIVACY_SERIES_CAPACITY: usize = 256;

struct FlowState {
    config: FlowPrivacyConfig,
    mi: StreamingMi,
    mse: StreamingMse,
    packets: u64,
}

/// The streaming privacy probe (see the [module docs](self)).
///
/// Composes with other probes through the `(A, B)` pair impl; all hooks
/// are O(1) amortized, so it is safe to leave enabled on large sweeps
/// (the bench baseline budget is ≤10% overhead, like the flight
/// recorder).
pub struct PrivacyProbe {
    flows: Vec<FlowState>,
    interval: u64,
    cap: usize,
    stride: u64,
    snapshots_seen: u64,
    deliveries: u64,
    drops: u64,
    preemptions: u64,
    last_time: f64,
    points: Vec<PrivacyPoint>,
}

impl PrivacyProbe {
    /// A probe for `flows.len()` flows, snapshotting every `interval`
    /// deliveries (`interval == 0` keeps only the final summary) with
    /// [`StreamingMi::with_default_bins`]-sized histograms.
    #[must_use]
    pub fn new(flows: Vec<FlowPrivacyConfig>, interval: u64) -> Self {
        Self::with_bins(
            flows,
            interval,
            tempriv_infotheory::streaming::DEFAULT_STREAMING_BINS,
        )
    }

    /// As [`PrivacyProbe::new`] with an explicit per-axis histogram bin
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` (configuration error; data never panics).
    #[must_use]
    pub fn with_bins(flows: Vec<FlowPrivacyConfig>, interval: u64, bins: usize) -> Self {
        PrivacyProbe {
            flows: flows
                .into_iter()
                .map(|config| FlowState {
                    config,
                    mi: StreamingMi::new(bins),
                    mse: StreamingMse::new(),
                    packets: 0,
                })
                .collect(),
            interval,
            cap: DEFAULT_PRIVACY_SERIES_CAPACITY.max(2),
            stride: 1,
            snapshots_seen: 0,
            deliveries: 0,
            drops: 0,
            preemptions: 0,
            last_time: 0.0,
            points: Vec::new(),
        }
    }

    /// Flows being tracked.
    #[must_use]
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total deliveries seen so far (all flows).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Drops seen so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Current per-flow summaries — the live view a watcher renders.
    #[must_use]
    pub fn summary(&self) -> Vec<FlowPrivacySummary> {
        self.flows
            .iter()
            .enumerate()
            .map(|(flow, state)| {
                let mi_nats = state.mi.mi_nats();
                let mse = state.mse.mse();
                let btq_mean_bound_nats = state.config.btq.and_then(|b| {
                    if state.packets == 0 {
                        None
                    } else {
                        Some(
                            btq_stream_bound_nats(state.packets, b.mu, b.lambda)
                                / state.packets as f64,
                        )
                    }
                });
                FlowPrivacySummary {
                    flow,
                    packets: state.packets,
                    mi_nats,
                    mse,
                    mi_from_mse_nats: state.mse.mi_lower_bound_nats(),
                    btq_mean_bound_nats,
                    margin_nats: btq_mean_bound_nats.map(|b| b - mi_nats),
                }
            })
            .collect()
    }

    /// Direct access to one flow's streaming MI estimator (tests compare
    /// it against the batch estimator on the same run).
    #[must_use]
    pub fn flow_mi(&self, flow: usize) -> &StreamingMi {
        &self.flows[flow].mi
    }

    fn snapshot(&mut self, time: f64) {
        // Same doubling-stride decimation as `DecimatingSeries`: keep
        // every `stride`-th snapshot; on overflow drop every other
        // retained point and double the stride.
        if !self.snapshots_seen.is_multiple_of(self.stride) {
            self.snapshots_seen += 1;
            return;
        }
        self.snapshots_seen += 1;
        if self.points.len() == self.cap {
            let mut keep = 0;
            self.points.retain(|_| {
                keep += 1;
                (keep - 1) % 2 == 0
            });
            self.stride *= 2;
        }
        self.points.push(PrivacyPoint {
            deliveries: self.deliveries,
            time,
            flows: self.summary(),
        });
    }

    /// Freezes the run into a journalable [`PrivacySeries`], appending a
    /// final snapshot at `end`.
    #[must_use]
    pub fn finish(mut self, end: SimTime) -> PrivacySeries {
        let time = end.as_units().max(self.last_time);
        self.points.push(PrivacyPoint {
            deliveries: self.deliveries,
            time,
            flows: self.summary(),
        });
        let rejected = self
            .flows
            .iter()
            .map(|f| f.mi.rejected() + f.mse.rejected())
            .sum();
        PrivacySeries {
            interval: self.interval,
            end_time: time,
            deliveries: self.deliveries,
            drops: self.drops,
            preemptions: self.preemptions,
            rejected,
            points: std::mem::take(&mut self.points),
            summary: self.summary(),
        }
    }
}

impl SimProbe for PrivacyProbe {
    fn on_preemption(&mut self, _node: usize, now: SimTime) {
        self.preemptions += 1;
        self.last_time = now.as_units();
    }

    fn on_drop(&mut self, _node: usize, now: SimTime) {
        self.drops += 1;
        self.last_time = now.as_units();
    }

    fn on_delivery(&mut self, flow: usize, now: SimTime, latency: f64) {
        let z = now.as_units();
        let x = z - latency;
        self.last_time = z;
        if let Some(state) = self.flows.get_mut(flow) {
            state.mi.push(x, z);
            state.mse.push(x, z - state.config.adversary_offset);
            state.packets += 1;
        }
        self.deliveries += 1;
        if self.interval > 0 && self.deliveries.is_multiple_of(self.interval) {
            self.snapshot(z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with(flows: usize, interval: u64) -> PrivacyProbe {
        let configs = (0..flows)
            .map(|_| FlowPrivacyConfig {
                adversary_offset: 10.0,
                btq: Some(BtqParams {
                    mu: 1.0 / 30.0,
                    lambda: 0.5,
                }),
            })
            .collect();
        PrivacyProbe::new(configs, interval)
    }

    fn drive(probe: &mut PrivacyProbe, deliveries: u64) {
        for i in 0..deliveries {
            let x = i as f64 * 2.0;
            let latency = 10.0 + (i % 7) as f64;
            probe.on_delivery((i % 2) as usize, SimTime::from_units(x + latency), latency);
        }
    }

    #[test]
    fn summaries_track_per_flow_deliveries_and_bounds() {
        let mut probe = probe_with(2, 0);
        drive(&mut probe, 100);
        let summary = probe.summary();
        assert_eq!(summary.len(), 2);
        for s in &summary {
            assert_eq!(s.packets, 50);
            assert!(s.mi_nats >= 0.0);
            let bound = s.btq_mean_bound_nats.unwrap();
            assert!(bound > 0.0);
            assert!((s.margin_nats.unwrap() - (bound - s.mi_nats)).abs() < 1e-12);
            assert!(s.mse.unwrap() > 0.0, "offset 10 vs true delays 10..=16");
        }
    }

    #[test]
    fn snapshots_fire_on_the_interval_and_finish_appends_the_end() {
        let mut probe = probe_with(1, 25);
        for i in 0..100u64 {
            probe.on_delivery(0, SimTime::from_units(i as f64 + 5.0), 5.0);
        }
        let series = probe.finish(SimTime::from_units(1_000.0));
        // 4 interval snapshots plus the final one.
        assert_eq!(series.points.len(), 5);
        assert_eq!(series.points[0].deliveries, 25);
        assert_eq!(series.points.last().unwrap().deliveries, 100);
        assert_eq!(series.end_time, 1_000.0);
        assert_eq!(series.summary, series.points.last().unwrap().flows);
        assert_eq!(series.rejected, 0);
    }

    #[test]
    fn series_is_bounded_by_decimation() {
        let mut probe = probe_with(1, 1);
        probe.cap = 4;
        for i in 0..1_000u64 {
            probe.on_delivery(0, SimTime::from_units(i as f64), 0.5);
        }
        assert!(probe.points.len() <= 4);
        let strides: Vec<u64> = probe.points.iter().map(|p| p.deliveries).collect();
        assert!(strides.windows(2).all(|w| w[0] < w[1]), "{strides:?}");
    }

    #[test]
    fn unknown_flows_and_missing_envelopes_degrade_gracefully() {
        let mut probe = PrivacyProbe::new(
            vec![FlowPrivacyConfig {
                adversary_offset: 0.0,
                btq: None,
            }],
            0,
        );
        // Flow index beyond the config list: counted, not panicking.
        probe.on_delivery(7, SimTime::from_units(1.0), 0.5);
        probe.on_delivery(0, SimTime::from_units(2.0), 0.5);
        assert_eq!(probe.deliveries(), 2);
        let series = probe.finish(SimTime::from_units(2.0));
        assert_eq!(series.summary[0].packets, 1);
        assert_eq!(series.summary[0].btq_mean_bound_nats, None);
        assert_eq!(series.summary[0].margin_nats, None);
    }

    #[test]
    fn gauges_publish_only_known_values() {
        let mut probe = probe_with(2, 0);
        drive(&mut probe, 60);
        let series = probe.finish(SimTime::from_units(200.0));
        let mut registry = MetricsRegistry::new();
        series.publish_gauges(&mut registry);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|g| g.name.as_str()).collect();
        assert!(
            names.contains(&"tempriv_privacy_mi_nats{flow=\"0\"}"),
            "{names:?}"
        );
        assert!(names.contains(&"tempriv_privacy_margin_nats{flow=\"1\"}"));
        assert!(names.contains(&"tempriv_privacy_adversary_mse{flow=\"0\"}"));

        // A flow with no envelope publishes MI but no margin.
        let mut bare = PrivacyProbe::new(
            vec![FlowPrivacyConfig {
                adversary_offset: 0.0,
                btq: None,
            }],
            0,
        );
        bare.on_delivery(0, SimTime::from_units(1.0), 0.5);
        bare.on_delivery(0, SimTime::from_units(3.0), 0.5);
        let mut registry = MetricsRegistry::new();
        bare.finish(SimTime::from_units(3.0))
            .publish_gauges(&mut registry);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|g| g.name.as_str()).collect();
        assert!(names.contains(&"tempriv_privacy_mi_nats{flow=\"0\"}"));
        assert!(!names.iter().any(|n| n.contains("margin")), "{names:?}");
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut probe = probe_with(2, 10);
        drive(&mut probe, 40);
        probe.on_drop(3, SimTime::from_units(90.0));
        probe.on_preemption(2, SimTime::from_units(91.0));
        let series = probe.finish(SimTime::from_units(100.0));
        let json = serde_json::to_string(&series).unwrap();
        let back: PrivacySeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
        assert_eq!(back.drops, 1);
        assert_eq!(back.preemptions, 1);
    }
}

//! Determinism auditing: windowed run digests, divergence diffing, and
//! window re-capture for bisection.
//!
//! Every guarantee the reproduction makes rests on runs being
//! byte-identical given a spec and seed. This module turns that from a
//! one-off test assertion into an observable signal:
//!
//! * [`digest`] — the canonical content-identity primitives (64-bit
//!   FNV-1a over bytes, splitmix64 chaining over words) shared by the
//!   runtime result cache, the serve cache keys, and `SimOutcome`
//!   fingerprints, so the three can never drift apart;
//! * [`DigestProbe`] — a [`SimProbe`] that folds the driver's packet
//!   event stream into a [`WindowDigest`] checkpoint every N events and
//!   a Merkle-style run root over the checkpoints, captured in a
//!   serializable [`RunDigest`];
//! * [`diff`] — compares two checkpoint streams and names the first
//!   divergent window;
//! * [`WindowCapture`] — re-runs confined to one window: retains the
//!   full `(seq, time, kind, node, packet)` tuple for every event inside
//!   the window so [`first_divergent_event`] can pinpoint exactly where
//!   two runs part ways.
//!
//! Like every probe, [`DigestProbe`] and [`WindowCapture`] observe and
//! never act: they consume no RNG draws and perturb no event ordering,
//! so the instrumented run is byte-identical to the bare one.

use serde::{Deserialize, Serialize};
use tempriv_sim::time::SimTime;

use crate::flight::{PacketEvent, PacketEventKind};
use crate::probe::SimProbe;

pub mod digest {
    //! Canonical content-identity primitives.
    //!
    //! One digest family for the whole stack: the runtime result cache,
    //! the serve job keys, `SimOutcome::digest`, and the audit
    //! checkpoint chain all build on these two functions. Byte streams
    //! hash with 64-bit FNV-1a ([`fnv64`] / the streaming [`Fnv64`]);
    //! word streams chain with the splitmix64 finalizer ([`chain`]).

    use tempriv_sim::rng::splitmix64;

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// 64-bit FNV-1a hash of `bytes`.
    #[must_use]
    pub fn fnv64(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.update(bytes);
        h.finish()
    }

    /// Streaming 64-bit FNV-1a hasher, for callers that fold many
    /// fields without materializing one buffer.
    #[derive(Debug, Clone)]
    pub struct Fnv64 {
        state: u64,
    }

    impl Default for Fnv64 {
        fn default() -> Self {
            Fnv64::new()
        }
    }

    impl Fnv64 {
        /// A hasher at the FNV-1a offset basis.
        #[must_use]
        pub const fn new() -> Self {
            Fnv64 { state: FNV_OFFSET }
        }

        /// Folds `bytes` into the running hash.
        pub fn update(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.state ^= u64::from(b);
                self.state = self.state.wrapping_mul(FNV_PRIME);
            }
        }

        /// The current hash value.
        #[must_use]
        pub const fn finish(&self) -> u64 {
            self.state
        }
    }

    /// Renders a 64-bit digest as fixed-width lowercase hex — the wire
    /// form used by cache keys, manifests, and the ledger.
    #[must_use]
    pub fn hex64(value: u64) -> String {
        format!("{value:016x}")
    }

    /// Parses the [`hex64`] wire form back to the raw digest.
    #[must_use]
    pub fn parse_hex64(text: &str) -> Option<u64> {
        if text.len() == 16 {
            u64::from_str_radix(text, 16).ok()
        } else {
            None
        }
    }

    /// A 64-bit FNV-1a digest of arbitrary bytes rendered as fixed-width
    /// hex: the one content-identity function shared by the runtime
    /// result cache, the serve job keys, and outcome fingerprints.
    #[must_use]
    pub fn content_digest(bytes: &[u8]) -> String {
        hex64(fnv64(bytes))
    }

    /// Chains one 64-bit word onto a digest state via the splitmix64
    /// finalizer. Order-sensitive: `chain(chain(s, a), b)` differs from
    /// `chain(chain(s, b), a)`.
    #[must_use]
    pub fn chain(state: u64, value: u64) -> u64 {
        splitmix64(state ^ value)
    }
}

/// Default checkpoint window: one digest every 4096 packet events.
pub const DEFAULT_DIGEST_WINDOW: usize = 1 << 12;

/// Chain seed for the Merkle-style run root.
const ROOT_SEED: u64 = 0x7465_6d70_7269_7601; // "tempriv\x01"

/// Chain seed each checkpoint window starts from (combined with the
/// window index, so identical event runs in different windows digest
/// differently).
const WINDOW_SEED: u64 = 0x7465_6d70_7269_7602; // "tempriv\x02"

/// Stable numeric code for a [`PacketEventKind`], folded into digests.
#[must_use]
const fn kind_code(kind: PacketEventKind) -> u64 {
    match kind {
        PacketEventKind::Created => 0,
        PacketEventKind::Enqueued => 1,
        PacketEventKind::Preempted => 2,
        PacketEventKind::Departed => 3,
        PacketEventKind::Dropped => 4,
        PacketEventKind::ArrivedAtSink => 5,
    }
}

/// One checkpoint: the digest of a contiguous window of packet events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowDigest {
    /// Window index (0-based, in stream order).
    pub index: u64,
    /// Global sequence number of the first event in the window.
    pub start_seq: u64,
    /// Events folded into this window (equal to the configured window
    /// size except for a partial terminal window).
    pub events: u64,
    /// The window digest in [`digest::hex64`] wire form.
    pub digest: String,
}

/// A full run's checkpoint stream plus its Merkle-style root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDigest {
    /// Configured checkpoint window size, in events.
    pub window: u64,
    /// Total packet events folded.
    pub events: u64,
    /// Simulation end time in time units (0 when the probe never saw
    /// [`SimProbe::on_run_end`]).
    pub end_time: f64,
    /// Checkpoint digests in stream order (the last may be partial).
    pub checkpoints: Vec<WindowDigest>,
    /// The run root: [`fold_root`] over `checkpoints`, in
    /// [`digest::hex64`] wire form.
    pub root: String,
}

/// Recomputes a run root by folding checkpoint digests in order — the
/// prefix-consistency contract: [`RunDigest::root`] always equals
/// `fold_root(&run.checkpoints)`.
#[must_use]
pub fn fold_root(checkpoints: &[WindowDigest]) -> String {
    let mut root = ROOT_SEED;
    for cp in checkpoints {
        let w = digest::parse_hex64(&cp.digest).unwrap_or(0);
        root = digest::chain(root, w);
    }
    digest::hex64(root)
}

/// A [`SimProbe`] that folds the packet event stream into windowed
/// checkpoint digests and a run root.
///
/// Every event folds its `(time, seq, kind, node, packet)` tuple into
/// one word (an FNV-prime multiply-xor fold, order-sensitive) which is then
/// splitmix64-chained into the current window state; every `window`
/// events the state is sealed into a [`WindowDigest`] and chained into
/// the running root. [`DigestProbe::finish`] seals the partial terminal
/// window and returns the serializable [`RunDigest`].
#[derive(Debug, Clone)]
pub struct DigestProbe {
    window: usize,
    seq: u64,
    window_start: u64,
    window_state: u64,
    checkpoints: Vec<WindowDigest>,
    root: u64,
    end: Option<SimTime>,
}

impl DigestProbe {
    /// A probe sealing a checkpoint every `window` events.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "digest window must be positive");
        DigestProbe {
            window,
            seq: 0,
            window_start: 0,
            window_state: digest::chain(WINDOW_SEED, 0),
            checkpoints: Vec::new(),
            root: ROOT_SEED,
            end: None,
        }
    }

    /// A probe with the [`DEFAULT_DIGEST_WINDOW`].
    #[must_use]
    pub fn with_default_window() -> Self {
        Self::new(DEFAULT_DIGEST_WINDOW)
    }

    /// Clears all accumulated state so the probe can fold another run.
    pub fn reset(&mut self) {
        *self = DigestProbe::new(self.window);
    }

    /// Total packet events folded so far.
    #[must_use]
    pub const fn events(&self) -> u64 {
        self.seq
    }

    fn seal_window(&mut self) {
        let index = self.checkpoints.len() as u64;
        self.checkpoints.push(WindowDigest {
            index,
            start_seq: self.window_start,
            events: self.seq - self.window_start,
            digest: digest::hex64(self.window_state),
        });
        self.root = digest::chain(self.root, self.window_state);
        self.window_start = self.seq;
        self.window_state = digest::chain(WINDOW_SEED, index + 1);
    }

    /// Seals the partial terminal window (if any) and extracts the
    /// serializable [`RunDigest`]. The probe itself is left untouched,
    /// so `finish` can be called mid-run for an interim snapshot.
    #[must_use]
    pub fn finish(&self) -> RunDigest {
        let mut sealed = self.clone();
        if sealed.seq > sealed.window_start {
            sealed.seal_window();
        }
        RunDigest {
            window: sealed.window as u64,
            events: sealed.seq,
            end_time: sealed.end.map_or(0.0, SimTime::as_units),
            root: digest::hex64(sealed.root),
            checkpoints: sealed.checkpoints,
        }
    }
}

/// FNV-style multiply-xor fold of one tuple field. Order-sensitive and
/// cheap (one multiply per field); the full splitmix64 avalanche is
/// applied once per event by [`digest::chain`], not once per field —
/// the hot-path economy that keeps the probe's overhead in the low
/// single digits.
#[inline]
const fn fold_field(acc: u64, value: u64) -> u64 {
    (acc ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

impl SimProbe for DigestProbe {
    #[inline]
    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        let mut word = now.ticks();
        word = fold_field(word, self.seq);
        word = fold_field(word, kind_code(event.kind()));
        word = fold_field(word, event.node() as u64);
        word = fold_field(word, event.packet());
        self.window_state = digest::chain(self.window_state, word);
        self.seq += 1;
        if self.seq - self.window_start == self.window as u64 {
            self.seal_window();
        }
    }

    fn on_run_end(&mut self, end: SimTime) {
        self.end = Some(end);
    }
}

/// The first point where two checkpoint streams part ways.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the first divergent window.
    pub window: u64,
    /// Global sequence number of the first event in that window.
    pub start_seq: u64,
    /// Events the window spans (the larger of the two sides, so a
    /// bisect re-capture is guaranteed to cover the divergence).
    pub events: u64,
    /// The left stream's window digest (`"-"` when the left stream
    /// ended before this window).
    pub left: String,
    /// The right stream's window digest (`"-"` when the right stream
    /// ended before this window).
    pub right: String,
}

/// Outcome of [`diff`]: either the streams match or the first divergent
/// window is named.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffReport {
    /// `true` when roots, event counts, and every checkpoint agree.
    pub identical: bool,
    /// The first divergent window, when not identical.
    pub divergence: Option<Divergence>,
}

/// Compares two checkpoint streams and reports the first divergent
/// window.
///
/// # Errors
///
/// Returns a message when the streams were recorded with different
/// window sizes — their checkpoints are not comparable.
pub fn diff(left: &RunDigest, right: &RunDigest) -> Result<DiffReport, String> {
    if left.window != right.window {
        return Err(format!(
            "digest streams are incomparable: window {} vs {}",
            left.window, right.window
        ));
    }
    let n = left.checkpoints.len().max(right.checkpoints.len());
    for i in 0..n {
        let l = left.checkpoints.get(i);
        let r = right.checkpoints.get(i);
        let same = match (l, r) {
            (Some(a), Some(b)) => a.digest == b.digest && a.events == b.events,
            _ => false,
        };
        if !same {
            let start_seq = l.or(r).map_or(0, |c| c.start_seq);
            let events = l.map_or(0, |c| c.events).max(r.map_or(0, |c| c.events));
            return Ok(DiffReport {
                identical: false,
                divergence: Some(Divergence {
                    window: i as u64,
                    start_seq,
                    events,
                    left: l.map_or_else(|| "-".to_string(), |c| c.digest.clone()),
                    right: r.map_or_else(|| "-".to_string(), |c| c.digest.clone()),
                }),
            });
        }
    }
    // Every checkpoint agrees; roots must too (prefix consistency).
    debug_assert_eq!(left.root, right.root);
    Ok(DiffReport {
        identical: left.root == right.root && left.events == right.events,
        divergence: None,
    })
}

/// One event retained by a [`WindowCapture`]: the full tuple the digest
/// folds, so two captures can be compared element-wise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedEvent {
    /// Global sequence number in the run's packet event stream.
    pub seq: u64,
    /// Event time in simulation time units.
    pub t: f64,
    /// What happened.
    pub kind: PacketEventKind,
    /// Sequential packet id.
    pub packet: u64,
    /// Flow index.
    pub flow: usize,
    /// Node index.
    pub node: usize,
}

/// A [`SimProbe`] retaining the full event tuple for one sequence
/// window `[lo, hi)` — the bisect re-run: after [`diff`] names the
/// first divergent window, re-running each side with a `WindowCapture`
/// over that window and calling [`first_divergent_event`] pinpoints the
/// exact first differing event.
#[derive(Debug, Clone)]
pub struct WindowCapture {
    lo: u64,
    hi: u64,
    seq: u64,
    events: Vec<CapturedEvent>,
}

impl WindowCapture {
    /// Captures events whose global sequence number falls in `[lo, hi)`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        WindowCapture {
            lo,
            hi,
            seq: 0,
            events: Vec::new(),
        }
    }

    /// The retained events, in stream order.
    #[must_use]
    pub fn events(&self) -> &[CapturedEvent] {
        &self.events
    }

    /// Consumes the capture, yielding the retained events.
    #[must_use]
    pub fn into_events(self) -> Vec<CapturedEvent> {
        self.events
    }
}

impl SimProbe for WindowCapture {
    #[inline]
    fn on_packet(&mut self, now: SimTime, event: PacketEvent) {
        if self.seq >= self.lo && self.seq < self.hi {
            self.events.push(CapturedEvent {
                seq: self.seq,
                t: now.as_units(),
                kind: event.kind(),
                packet: event.packet(),
                flow: event.flow(),
                node: event.node(),
            });
        }
        self.seq += 1;
    }
}

/// The first element-wise mismatch between two captured windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventDivergence {
    /// Position within the captures where the sides first differ.
    pub position: u64,
    /// The left side's event (`None` when its capture ended first).
    pub left: Option<CapturedEvent>,
    /// The right side's event (`None` when its capture ended first).
    pub right: Option<CapturedEvent>,
}

/// Compares two captured windows element-wise and returns the first
/// mismatch, or `None` when the windows agree exactly.
#[must_use]
pub fn first_divergent_event(
    left: &[CapturedEvent],
    right: &[CapturedEvent],
) -> Option<EventDivergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let l = left.get(i);
        let r = right.get(i);
        if l != r {
            return Some(EventDivergence {
                position: i as u64,
                left: l.cloned(),
                right: r.cloned(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn ev(packet: u64, node: usize) -> PacketEvent {
        PacketEvent::Enqueued {
            packet,
            flow: 0,
            node,
        }
    }

    fn fold_events(window: usize, events: &[(f64, u64, usize)]) -> RunDigest {
        let mut probe = DigestProbe::new(window);
        for &(at, packet, node) in events {
            probe.on_packet(t(at), ev(packet, node));
        }
        probe.on_run_end(t(1000.0));
        probe.finish()
    }

    #[test]
    fn identical_streams_share_root_and_checkpoints() {
        let events: Vec<_> = (0..25u64)
            .map(|i| (i as f64, i, (i % 5) as usize))
            .collect();
        let a = fold_events(8, &events);
        let b = fold_events(8, &events);
        assert_eq!(a, b);
        assert_eq!(a.checkpoints.len(), 4, "3 full windows + 1 partial");
        assert_eq!(a.events, 25);
        assert_eq!(a.checkpoints[3].events, 1);
    }

    #[test]
    fn root_folds_from_checkpoints() {
        let events: Vec<_> = (0..100u64).map(|i| (i as f64, i, 1)).collect();
        let run = fold_events(16, &events);
        assert_eq!(run.root, fold_root(&run.checkpoints));
    }

    #[test]
    fn every_field_of_the_tuple_is_digested() {
        let base = fold_events(8, &[(1.0, 7, 3)]);
        assert_ne!(base, fold_events(8, &[(2.0, 7, 3)]), "time");
        assert_ne!(base, fold_events(8, &[(1.0, 8, 3)]), "packet");
        assert_ne!(base, fold_events(8, &[(1.0, 7, 4)]), "node");
        let mut kind = DigestProbe::new(8);
        kind.on_packet(
            t(1.0),
            PacketEvent::Departed {
                packet: 7,
                flow: 0,
                node: 3,
            },
        );
        assert_ne!(base.root, kind.finish().root, "kind");
    }

    #[test]
    fn diff_names_the_exact_first_divergent_window() {
        // 64 events, window 8: sides agree through window 4, then event
        // 37 (window 4 spans seqs 32..40) differs.
        let mut left: Vec<_> = (0..64u64).map(|i| (i as f64, i, 1)).collect();
        let mut right = left.clone();
        right[37].2 = 2;
        left[59].0 = 99.0; // a later divergence must not mask the first
        right[59].0 = 98.0;
        let a = fold_events(8, &left);
        let b = fold_events(8, &right);
        let report = diff(&a, &b).unwrap();
        assert!(!report.identical);
        let d = report.divergence.unwrap();
        assert_eq!(d.window, 4);
        assert_eq!(d.start_seq, 32);
        assert_eq!(d.events, 8);
        assert_ne!(d.left, d.right);
    }

    #[test]
    fn diff_flags_a_truncated_stream() {
        let events: Vec<_> = (0..40u64).map(|i| (i as f64, i, 1)).collect();
        let a = fold_events(8, &events);
        let b = fold_events(8, &events[..24]);
        let report = diff(&a, &b).unwrap();
        let d = report.divergence.unwrap();
        assert_eq!(d.window, 3);
        assert_eq!(d.right, "-");
    }

    #[test]
    fn diff_rejects_mismatched_window_sizes() {
        let events: Vec<_> = (0..10u64).map(|i| (i as f64, i, 1)).collect();
        let a = fold_events(8, &events);
        let b = fold_events(4, &events);
        assert!(diff(&a, &b).unwrap_err().contains("incomparable"));
    }

    #[test]
    fn identical_runs_diff_as_identical() {
        let events: Vec<_> = (0..30u64).map(|i| (i as f64, i, 1)).collect();
        let a = fold_events(8, &events);
        let b = fold_events(8, &events);
        let report = diff(&a, &b).unwrap();
        assert!(report.identical);
        assert!(report.divergence.is_none());
    }

    #[test]
    fn window_capture_retains_only_its_window() {
        let mut cap = WindowCapture::new(8, 16);
        for i in 0..32u64 {
            cap.on_packet(t(i as f64), ev(i, 1));
        }
        let events = cap.events();
        assert_eq!(events.len(), 8);
        assert_eq!(events[0].seq, 8);
        assert_eq!(events[7].seq, 15);
        assert_eq!(events[0].packet, 8);
    }

    #[test]
    fn first_divergent_event_pinpoints_the_mismatch() {
        let run = |tweak: bool| {
            let mut cap = WindowCapture::new(0, 16);
            for i in 0..16u64 {
                let node = if tweak && i == 11 { 9 } else { 1 };
                cap.on_packet(t(i as f64), ev(i, node));
            }
            cap.into_events()
        };
        let a = run(false);
        let b = run(true);
        let d = first_divergent_event(&a, &b).unwrap();
        assert_eq!(d.position, 11);
        assert_eq!(d.left.unwrap().node, 1);
        assert_eq!(d.right.unwrap().node, 9);
        assert!(first_divergent_event(&a, &a).is_none());
    }

    #[test]
    fn first_divergent_event_handles_length_mismatch() {
        let mut cap = WindowCapture::new(0, 4);
        for i in 0..4u64 {
            cap.on_packet(t(i as f64), ev(i, 1));
        }
        let a = cap.into_events();
        let d = first_divergent_event(&a, &a[..3]).unwrap();
        assert_eq!(d.position, 3);
        assert!(d.right.is_none());
    }

    #[test]
    fn reset_restores_a_fresh_probe() {
        let mut probe = DigestProbe::new(4);
        for i in 0..10u64 {
            probe.on_packet(t(i as f64), ev(i, 1));
        }
        probe.reset();
        assert_eq!(probe.events(), 0);
        let fresh = probe.finish();
        assert!(fresh.checkpoints.is_empty());
        assert_eq!(fresh.root, fold_root(&[]));
    }

    #[test]
    fn run_digest_round_trips_through_json() {
        let events: Vec<_> = (0..20u64).map(|i| (i as f64, i, 1)).collect();
        let run = fold_events(8, &events);
        let json = serde_json::to_string(&run).unwrap();
        let back: RunDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, run);
    }

    #[test]
    fn content_digest_matches_the_legacy_wire_form() {
        // The exact byte-for-byte behavior the runtime cache shipped
        // with: 16 lowercase hex chars of FNV-1a.
        let d = digest::content_digest(b"fig2:config:seed=7");
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(d, digest::content_digest(b"fig2:config:seed=7"));
        assert_ne!(d, digest::content_digest(b"fig2:config:seed=8"));
        assert_eq!(
            digest::parse_hex64(&d),
            Some(digest::fnv64(b"fig2:config:seed=7"))
        );
    }

    #[test]
    fn streaming_fnv_agrees_with_one_shot() {
        let mut h = digest::Fnv64::new();
        h.update(b"tempo");
        h.update(b"ral privacy");
        assert_eq!(h.finish(), digest::fnv64(b"temporal privacy"));
    }

    proptest! {
        /// Prefix consistency: for any event stream and window size,
        /// folding the checkpoint digests reproduces the run root.
        #[test]
        fn window_digests_are_prefix_consistent(
            n in 0usize..200,
            window in 1usize..32,
            seed in 0u64..1000,
        ) {
            let events: Vec<_> = (0..n as u64)
                .map(|i| {
                    let v = tempriv_sim::rng::splitmix64(seed.wrapping_add(i));
                    ((v % 1000) as f64, v % 50, (v % 7) as usize)
                })
                .collect();
            let run = fold_events(window, &events);
            prop_assert_eq!(run.root.clone(), fold_root(&run.checkpoints));
            prop_assert_eq!(run.events, n as u64);
            // Checkpoint bookkeeping: windows tile the stream exactly.
            let total: u64 = run.checkpoints.iter().map(|c| c.events).sum();
            prop_assert_eq!(total, n as u64);
            for (i, cp) in run.checkpoints.iter().enumerate() {
                prop_assert_eq!(cp.index, i as u64);
                prop_assert_eq!(cp.start_seq, (i * window) as u64);
            }
        }

        /// A single perturbed event always changes its window digest and
        /// the run root, and diff finds exactly that window.
        #[test]
        fn any_single_perturbation_is_located(
            n in 1usize..150,
            window in 1usize..16,
            flip in 0usize..150,
        ) {
            let flip = flip % n;
            let base: Vec<_> = (0..n as u64).map(|i| (i as f64, i, 1usize)).collect();
            let mut tweaked = base.clone();
            tweaked[flip].2 = 2;
            let a = fold_events(window, &base);
            let b = fold_events(window, &tweaked);
            prop_assert_ne!(a.root.clone(), b.root.clone());
            let report = diff(&a, &b).unwrap();
            let d = report.divergence.unwrap();
            prop_assert_eq!(d.window, (flip / window) as u64);
        }
    }
}
